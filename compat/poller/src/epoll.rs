//! The Linux `epoll` backend: kernel-side interest list, level
//! triggered, with an `eventfd` as the user-space wake handle.
//!
//! A small user-space registry shadows the kernel set for one reason:
//! epoll always reports `EPOLLERR`/`EPOLLHUP`, even on a registration
//! with an empty interest mask — so a *parked* source with a hung-up
//! peer would storm every `wait`. Parked sources are therefore kept
//! out of the kernel set entirely (exactly how the `poll(2)` backend
//! skips them), and the registry supplies the add/modify/delete error
//! semantics the kernel can no longer see.

use std::collections::HashMap;
use std::io;
use std::sync::Mutex;
use std::time::Duration;

use crate::sys::{self, OwnedFd};
use crate::{timeout_ms, Event, RawSource, WAKE_KEY};

pub struct EpollPoller {
    epfd: OwnedFd,
    wake: OwnedFd,
    /// Every registered source and its current interest; sources whose
    /// interest is `(false, false)` exist only here, not in the kernel.
    registry: Mutex<HashMap<RawSource, Event>>,
}

fn epoll_mask(interest: Event) -> u32 {
    let mut mask = 0;
    if interest.readable {
        mask |= sys::EPOLLIN;
    }
    if interest.writable {
        mask |= sys::EPOLLOUT;
    }
    mask
}

fn parked(interest: Event) -> bool {
    !interest.readable && !interest.writable
}

impl EpollPoller {
    pub fn new() -> io::Result<EpollPoller> {
        let epfd = sys::epoll_create()?;
        let wake = sys::eventfd_create()?;
        sys::epoll_control(
            epfd.0,
            sys::EPOLL_CTL_ADD,
            wake.0,
            sys::EPOLLIN,
            WAKE_KEY as u64,
        )?;
        Ok(EpollPoller {
            epfd,
            wake,
            registry: Mutex::new(HashMap::new()),
        })
    }

    pub fn add(&self, source: RawSource, interest: Event) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        if registry.contains_key(&source) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "source already registered",
            ));
        }
        if !parked(interest) {
            sys::epoll_control(
                self.epfd.0,
                sys::EPOLL_CTL_ADD,
                source,
                epoll_mask(interest),
                interest.key as u64,
            )?;
        }
        registry.insert(source, interest);
        Ok(())
    }

    pub fn modify(&self, source: RawSource, interest: Event) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        let Some(current) = registry.get(&source).copied() else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            ));
        };
        match (parked(current), parked(interest)) {
            // Entering or leaving the parked state moves the source out
            // of / back into the kernel set.
            (false, true) => sys::epoll_control(self.epfd.0, sys::EPOLL_CTL_DEL, source, 0, 0)?,
            (true, false) => sys::epoll_control(
                self.epfd.0,
                sys::EPOLL_CTL_ADD,
                source,
                epoll_mask(interest),
                interest.key as u64,
            )?,
            (false, false) => sys::epoll_control(
                self.epfd.0,
                sys::EPOLL_CTL_MOD,
                source,
                epoll_mask(interest),
                interest.key as u64,
            )?,
            (true, true) => {} // Parked either way: registry-only update.
        }
        registry.insert(source, interest);
        Ok(())
    }

    pub fn delete(&self, source: RawSource) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        let Some(current) = registry.remove(&source) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            ));
        };
        if !parked(current) {
            sys::epoll_control(self.epfd.0, sys::EPOLL_CTL_DEL, source, 0, 0)?;
        }
        Ok(())
    }

    /// Waits for readiness; returns `(had events appended, wake rang)`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        let mut buf = [sys::epoll_event { events: 0, data: 0 }; 256];
        let n = loop {
            match sys::epoll_wait_fd(self.epfd.0, &mut buf, timeout_ms(timeout)) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    // Retry with the full timeout: callers treat the
                    // cap as housekeeping cadence, not a deadline.
                }
                Err(e) => return Err(e),
            }
        };
        let mut woke = false;
        for ev in &buf[..n] {
            let key = { ev.data } as usize;
            if key == WAKE_KEY {
                // Drain the eventfd counter so the level-triggered
                // registration goes quiet until the next notify.
                let mut scratch = [0u8; 8];
                let _ = sys::read_fd(self.wake.0, &mut scratch);
                woke = true;
                continue;
            }
            let mask = { ev.events };
            // ERR/HUP surface as both directions so a consumer that
            // only registered one interest still observes the socket
            // dying through its next read/write.
            let fault = mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            events.push(Event {
                key,
                readable: mask & sys::EPOLLIN != 0 || fault,
                writable: mask & sys::EPOLLOUT != 0 || fault,
            });
        }
        Ok(woke)
    }

    /// Rings the wake handle: adds to the eventfd counter. `EAGAIN`
    /// (counter saturated) already implies a pending wake.
    pub fn notify(&self) -> io::Result<()> {
        match sys::write_fd(self.wake.0, &1u64.to_ne_bytes()) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}
