//! The portable `poll(2)` backend: the interest list lives in user
//! space, a non-blocking self-pipe is the wake handle. O(n) per wait,
//! which is the price of portability — the Linux build prefers epoll.

use std::io;
use std::sync::Mutex;
use std::time::Duration;

use crate::sys::{self, OwnedFd};
use crate::{timeout_ms, Event, RawSource};

struct Registration {
    fd: sys::RawFd,
    interest: Event,
}

pub struct PollPoller {
    /// Registered sources. A `Mutex` (not lock-free) is fine: only the
    /// owning event loop mutates it; `notify` never touches it.
    registry: Mutex<Vec<Registration>>,
    pipe_read: OwnedFd,
    pipe_write: OwnedFd,
}

impl PollPoller {
    pub fn new() -> io::Result<PollPoller> {
        let (pipe_read, pipe_write) = sys::nonblocking_pipe()?;
        Ok(PollPoller {
            registry: Mutex::new(Vec::new()),
            pipe_read,
            pipe_write,
        })
    }

    pub fn add(&self, source: RawSource, interest: Event) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        if registry.iter().any(|r| r.fd == source) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "source already registered",
            ));
        }
        registry.push(Registration {
            fd: source,
            interest,
        });
        Ok(())
    }

    pub fn modify(&self, source: RawSource, interest: Event) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        match registry.iter_mut().find(|r| r.fd == source) {
            Some(reg) => {
                reg.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            )),
        }
    }

    pub fn delete(&self, source: RawSource) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        let before = registry.len();
        registry.retain(|r| r.fd != source);
        if registry.len() == before {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            ));
        }
        Ok(())
    }

    /// Waits for readiness; returns `(had events appended, wake rang)`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        // Snapshot the registry into the pollfd array: slot 0 is the
        // self-pipe, the rest are sources with a live interest (a
        // parked source — interest in neither direction — is left out
        // entirely, so a hung-up peer cannot spin the loop).
        let mut fds = vec![sys::pollfd {
            fd: self.pipe_read.0,
            events: sys::POLLIN,
            revents: 0,
        }];
        let mut keys = vec![0usize];
        {
            let registry = self.registry.lock().expect("poller registry");
            for reg in registry.iter() {
                let mut mask = 0i16;
                if reg.interest.readable {
                    mask |= sys::POLLIN;
                }
                if reg.interest.writable {
                    mask |= sys::POLLOUT;
                }
                if mask == 0 {
                    continue;
                }
                fds.push(sys::pollfd {
                    fd: reg.fd,
                    events: mask,
                    revents: 0,
                });
                keys.push(reg.interest.key);
            }
        }
        loop {
            match sys::poll_fds(&mut fds, timeout_ms(timeout)) {
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let mut woke = false;
        for (slot, fd) in fds.iter().enumerate() {
            if fd.revents == 0 {
                continue;
            }
            if slot == 0 {
                // Drain the self-pipe so it goes quiet until the next
                // notify; one read of a small buffer empties the byte
                // (or few) a notify burst wrote.
                let mut scratch = [0u8; 64];
                while matches!(sys::read_fd(self.pipe_read.0, &mut scratch), Ok(n) if n > 0) {}
                woke = true;
                continue;
            }
            let fault = fd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            events.push(Event {
                key: keys[slot],
                readable: fd.revents & sys::POLLIN != 0 || fault,
                writable: fd.revents & sys::POLLOUT != 0 || fault,
            });
        }
        Ok(woke)
    }

    /// Rings the wake handle: one byte down the self-pipe. A full pipe
    /// (`EAGAIN`) already implies a pending wake.
    pub fn notify(&self) -> io::Result<()> {
        match sys::write_fd(self.pipe_write.0, &[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}
