//! Raw syscall bindings for the unix backends.
//!
//! The workspace builds with no registry access, so the usual `libc`
//! crate is unavailable; `std` already links the platform C library,
//! which makes these `extern "C"` declarations resolve at link time
//! without any external dependency. This module is the crate's entire
//! unsafe surface — everything above it speaks owned fds and
//! `io::Result`.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::{c_int, c_void};

pub type RawFd = c_int;

extern "C" {
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    // fcntl(2) is variadic and must be declared so: on ABIs where
    // variadic and fixed arguments travel differently (aarch64 Darwin
    // passes variadics on the stack), a fixed three-argument
    // declaration would hand the callee a garbage flag word.
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
}

/// `poll(2)`'s fd-count type: `unsigned long` on Linux, `unsigned int`
/// on the BSD family.
#[cfg(target_os = "linux")]
type nfds_t = usize;
#[cfg(not(target_os = "linux"))]
type nfds_t = u32;

#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;
pub const POLLNVAL: i16 = 0x020;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const F_SETFD: c_int = 2;
const FD_CLOEXEC: c_int = 1;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4;

/// The kernel's `epoll_event` is packed on x86_64 (and only there), a
/// quirk the binding must mirror or the kernel scribbles past field
/// boundaries.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_os = "linux")]
pub const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_MOD: c_int = 3;
#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
pub const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
pub const EPOLLHUP: u32 = 0x010;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0o2000000;
#[cfg(target_os = "linux")]
const EFD_CLOEXEC: c_int = 0o2000000;
#[cfg(target_os = "linux")]
const EFD_NONBLOCK: c_int = 0o4000;

/// Converts a C return value into an `io::Result`, reading `errno`
/// through `std` on failure.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned file descriptor that closes on drop.
#[derive(Debug)]
pub struct OwnedFd(pub RawFd);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this handle and closed exactly once.
        unsafe {
            let _ = close(self.0);
        }
    }
}

/// Reads into `buf`, mapping the C convention into `io::Result`.
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a valid writable region of its own length.
    let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Writes `buf`, mapping the C convention into `io::Result`.
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a valid readable region of its own length.
    let n = unsafe { write(fd, buf.as_ptr().cast(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Creates a non-blocking close-on-exec pipe: `(read end, write end)`.
pub fn nonblocking_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
    let mut fds = [0 as c_int; 2];
    // SAFETY: `fds` is a valid two-slot output buffer.
    cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
    let (r, w) = (OwnedFd(fds[0]), OwnedFd(fds[1]));
    for fd in [r.0, w.0] {
        // SAFETY: plain fcntl flag manipulation on fds we own.
        unsafe {
            let flags = cvt(fcntl(fd, F_GETFL, 0))?;
            cvt(fcntl(fd, F_SETFL, flags | O_NONBLOCK))?;
            cvt(fcntl(fd, F_SETFD, FD_CLOEXEC))?;
        }
    }
    Ok((r, w))
}

/// `poll(2)` over `fds` with a millisecond timeout (`-1` blocks).
pub fn poll_fds(fds: &mut [pollfd], timeout_ms: c_int) -> io::Result<usize> {
    // SAFETY: `fds` is a valid mutable pollfd array of its own length.
    let n = cvt(unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout_ms) })?;
    Ok(n as usize)
}

/// A fresh close-on-exec epoll instance.
#[cfg(target_os = "linux")]
pub fn epoll_create() -> io::Result<OwnedFd> {
    // SAFETY: epoll_create1 allocates a new fd; no pointers involved.
    Ok(OwnedFd(cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?))
}

/// One `epoll_ctl` operation; `events`/`data` ignored for `DEL`.
#[cfg(target_os = "linux")]
pub fn epoll_control(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = epoll_event { events, data };
    // SAFETY: `ev` outlives the call; the kernel copies it.
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
    Ok(())
}

/// Blocks in `epoll_wait` for up to `timeout_ms` (`-1` blocks), filling
/// `events`; returns the ready count.
#[cfg(target_os = "linux")]
pub fn epoll_wait_fd(
    epfd: RawFd,
    events: &mut [epoll_event],
    timeout_ms: c_int,
) -> io::Result<usize> {
    // SAFETY: `events` is a valid output buffer of its own length.
    let n =
        cvt(unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) })?;
    Ok(n as usize)
}

/// A non-blocking close-on-exec eventfd (the epoll backend's wake
/// handle).
#[cfg(target_os = "linux")]
pub fn eventfd_create() -> io::Result<OwnedFd> {
    // SAFETY: eventfd allocates a new fd; no pointers involved.
    Ok(OwnedFd(cvt(unsafe {
        eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)
    })?))
}
