//! The pure-`std` fallback backend: no readiness source at all, just a
//! condvar the wake handle rings. `wait` reports every registered
//! source as ready in its registered directions (assume-ready), so a
//! consumer degrades to exactly the readiness-*polling* loop this crate
//! exists to replace — but the wake handle still cuts idle waits short,
//! which is what kills the lost-wakeup race. Keeps the crate buildable
//! (and the server correct) on targets with neither epoll nor poll.

use std::io;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::{Event, RawSource};

struct State {
    registered: Vec<(RawSource, Event)>,
    notified: bool,
}

pub struct TimeoutPoller {
    state: Mutex<State>,
    wake: Condvar,
}

impl TimeoutPoller {
    pub fn new() -> TimeoutPoller {
        TimeoutPoller {
            state: Mutex::new(State {
                registered: Vec::new(),
                notified: false,
            }),
            wake: Condvar::new(),
        }
    }

    pub fn add(&self, source: RawSource, interest: Event) -> io::Result<()> {
        let mut state = self.state.lock().expect("poller registry");
        if state.registered.iter().any(|(fd, _)| *fd == source) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "source already registered",
            ));
        }
        state.registered.push((source, interest));
        Ok(())
    }

    pub fn modify(&self, source: RawSource, interest: Event) -> io::Result<()> {
        let mut state = self.state.lock().expect("poller registry");
        match state.registered.iter_mut().find(|(fd, _)| *fd == source) {
            Some((_, slot)) => {
                *slot = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            )),
        }
    }

    pub fn delete(&self, source: RawSource) -> io::Result<()> {
        let mut state = self.state.lock().expect("poller registry");
        let before = state.registered.len();
        state.registered.retain(|(fd, _)| *fd != source);
        if state.registered.len() == before {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            ));
        }
        Ok(())
    }

    /// Sleeps until notified or `timeout`, then reports every parked
    /// interest as ready. Returns whether the wake handle rang.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        let mut state = self.state.lock().expect("poller registry");
        if !state.notified {
            state = match timeout {
                Some(t) => {
                    let (guard, _) = self
                        .wake
                        .wait_timeout_while(state, t, |s| !s.notified)
                        .expect("poller wait");
                    guard
                }
                None => self
                    .wake
                    .wait_while(state, |s| !s.notified)
                    .expect("poller wait"),
            };
        }
        let woke = std::mem::replace(&mut state.notified, false);
        for (_, interest) in &state.registered {
            if interest.readable || interest.writable {
                events.push(*interest);
            }
        }
        Ok(woke)
    }

    pub fn notify(&self) -> io::Result<()> {
        let mut state = self.state.lock().expect("poller registry");
        state.notified = true;
        self.wake.notify_all();
        Ok(())
    }
}
