//! Offline stand-in for a readiness-notification poller.
//!
//! The workspace builds in environments without a crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible
//! subsets; this crate is that subset for an event poller (in the
//! spirit of the `polling` crate): register sockets for readability /
//! writability, block in [`Poller::wait`] until something is actually
//! ready, and ring a user-space wake handle ([`Poller::notify`]) from
//! any thread to cut a wait short.
//!
//! Three backends, selected automatically (or forced through the
//! `WIDX_POLLER` environment variable / [`Poller::with_backend`]):
//!
//! * **`epoll`** (Linux, the default there) — kernel interest list,
//!   level-triggered, an `eventfd` as the wake handle;
//! * **`poll`** (any unix) — a user-space interest list swept by
//!   `poll(2)`, a non-blocking self-pipe as the wake handle;
//! * **`timeout`** (everywhere, the non-unix default) — no readiness
//!   source at all: `wait` sleeps on a condvar until notified or timed
//!   out, then reports every registered source as ready. Consumers
//!   degrade to readiness *polling*, but the wake handle still works —
//!   which is the property the `widx-net` event loop's correctness
//!   argument actually rests on (see `docs/poller.md`).
//!
//! # Semantics
//!
//! Level-triggered: a source that stays ready is reported by every
//! `wait`. Interest in *neither* direction parks the registration (the
//! source stays registered but is never reported — and never spins the
//! loop on a hung-up peer). The wake handle is edge-like and coalescing:
//! any number of `notify` calls between two waits produce exactly one
//! early return, and a notify that lands *before* `wait` is observed by
//! it — there is no window in which a wake can be lost.
//!
//! `unsafe` is confined to `sys.rs` (raw syscalls the platform libc
//! already links); everything above it is safe code.

#![warn(missing_docs)]

#[cfg(unix)]
mod sys;

#[cfg(target_os = "linux")]
mod epoll;
#[cfg(unix)]
mod poll;
mod timeout;

use std::io;
use std::time::Duration;

/// The raw OS handle a [`Source`] exposes: a file descriptor on unix,
/// an opaque integer elsewhere (the `timeout` backend never reads it).
#[cfg(unix)]
pub type RawSource = std::os::unix::io::RawFd;
/// The raw OS handle a [`Source`] exposes.
#[cfg(not(unix))]
pub type RawSource = u64;

/// Anything registrable with a [`Poller`]. Blanket-implemented for all
/// `AsRawFd` types on unix (sockets, listeners, pipes), so `TcpStream`
/// and `TcpListener` register directly.
pub trait Source {
    /// The raw OS handle to register.
    fn raw(&self) -> RawSource;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> Source for T {
    fn raw(&self) -> RawSource {
        self.as_raw_fd()
    }
}

#[cfg(windows)]
impl<T: std::os::windows::io::AsRawSocket> Source for T {
    fn raw(&self) -> RawSource {
        self.as_raw_socket()
    }
}

/// Reserved internally for the wake handle; user keys must be smaller.
pub(crate) const WAKE_KEY: usize = usize::MAX;

/// A readiness interest or report: which source (by caller-chosen
/// `key`) and which directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier carried back by [`Poller::wait`]
    /// (anything below `usize::MAX`).
    pub key: usize,
    /// Interest in / readiness for reading (accept counts as a read).
    pub readable: bool,
    /// Interest in / readiness for writing.
    pub writable: bool,
}

impl Event {
    /// Read interest only.
    #[must_use]
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write interest only.
    #[must_use]
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    #[must_use]
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest: parks the registration (never reported, never
    /// spins on ERR/HUP) without deregistering it.
    #[must_use]
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollPoller),
    #[cfg(unix)]
    Poll(poll::PollPoller),
    Timeout(timeout::TimeoutPoller),
}

/// Converts an optional wait bound into poll/epoll's millisecond
/// convention: `None` blocks (`-1`), sub-millisecond bounds round *up*
/// so a 100µs cap cannot degenerate into a hot zero-timeout spin.
pub(crate) fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            if ms == 0 && !t.is_zero() {
                1
            } else {
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        }
    }
}

/// A readiness poller with a user-space wake handle. See the crate
/// docs for backend selection and semantics.
///
/// `notify` rings the backend's wake source unconditionally — no
/// user-space "already notified" flag. Such a flag can be cleared by a
/// `wait` in the same instant a racing `notify` decides to skip the
/// ring, silently swallowing the wake; always ringing makes "no lost
/// wake" true by construction, and bursts still coalesce *at the wake
/// source* (an eventfd accumulates a counter, a pipe accumulates
/// bytes, the condvar backend a flag under its lock — each drained by
/// one wait).
pub struct Poller {
    backend: Backend,
    name: &'static str,
}

impl Poller {
    /// Creates a poller on the platform's best backend, honouring a
    /// `WIDX_POLLER` environment override (`epoll` / `poll` /
    /// `timeout`).
    ///
    /// # Errors
    ///
    /// Backend setup failure (fd exhaustion), an override naming an
    /// unknown backend, or one unavailable on this platform.
    pub fn new() -> io::Result<Poller> {
        match std::env::var("WIDX_POLLER") {
            Ok(name) => Poller::with_backend(&name),
            Err(_) => Poller::with_backend(DEFAULT_BACKEND),
        }
    }

    /// Creates a poller on a named backend: `"epoll"`, `"poll"`, or
    /// `"timeout"`.
    ///
    /// # Errors
    ///
    /// Backend setup failure, an unknown name, or a backend unavailable
    /// on this platform.
    pub fn with_backend(name: &str) -> io::Result<Poller> {
        let backend = match name {
            #[cfg(target_os = "linux")]
            "epoll" => Backend::Epoll(epoll::EpollPoller::new()?),
            #[cfg(unix)]
            "poll" => Backend::Poll(poll::PollPoller::new()?),
            "timeout" => Backend::Timeout(timeout::TimeoutPoller::new()),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown or unavailable poller backend {other:?}"),
                ))
            }
        };
        let name = backend_name(&backend);
        Ok(Poller { backend, name })
    }

    /// The active backend's name (`"epoll"`, `"poll"`, or `"timeout"`).
    #[must_use]
    pub fn backend(&self) -> &'static str {
        self.name
    }

    /// Whether `wait` observes *actual* socket readiness (`epoll`,
    /// `poll`) rather than assuming it on every return (`timeout`).
    /// Consumers on an assume-ready backend should keep their wait
    /// timeouts at polling cadence — the timeout is their only way to
    /// notice socket activity.
    #[must_use]
    pub fn has_readiness_source(&self) -> bool {
        !matches!(self.backend, Backend::Timeout(_))
    }

    /// Registers `source` with an initial `interest`. The interest's
    /// `key` identifies the source in [`wait`](Poller::wait) reports.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` if the source is registered, or OS-level failure.
    pub fn add(&self, source: &impl Source, interest: Event) -> io::Result<()> {
        debug_assert!(interest.key != WAKE_KEY, "key usize::MAX is reserved");
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.add(source.raw(), interest),
            #[cfg(unix)]
            Backend::Poll(b) => b.add(source.raw(), interest),
            Backend::Timeout(b) => b.add(source.raw(), interest),
        }
    }

    /// Replaces a registered source's interest (including its key).
    ///
    /// # Errors
    ///
    /// `NotFound` if the source is not registered, or OS-level failure.
    pub fn modify(&self, source: &impl Source, interest: Event) -> io::Result<()> {
        debug_assert!(interest.key != WAKE_KEY, "key usize::MAX is reserved");
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.modify(source.raw(), interest),
            #[cfg(unix)]
            Backend::Poll(b) => b.modify(source.raw(), interest),
            Backend::Timeout(b) => b.modify(source.raw(), interest),
        }
    }

    /// Deregisters `source`.
    ///
    /// # Errors
    ///
    /// `NotFound` if the source is not registered, or OS-level failure.
    pub fn delete(&self, source: &impl Source) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.delete(source.raw()),
            #[cfg(unix)]
            Backend::Poll(b) => b.delete(source.raw()),
            Backend::Timeout(b) => b.delete(source.raw()),
        }
    }

    /// Blocks until a registered source is ready, the wake handle
    /// rings, or `timeout` passes (`None` blocks indefinitely). Clears
    /// and fills `events`; returns how many were reported. A return of
    /// zero events means timeout or wake — both are normal.
    ///
    /// # Errors
    ///
    /// OS-level failure (`EINTR` is retried internally).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let _woke = match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.wait(events, timeout)?,
            #[cfg(unix)]
            Backend::Poll(b) => b.wait(events, timeout)?,
            Backend::Timeout(b) => b.wait(events, timeout)?,
        };
        Ok(events.len())
    }

    /// Rings the wake handle from any thread: a concurrent or
    /// subsequent [`wait`](Poller::wait) returns early (a burst of
    /// notifies between two waits coalesces into one early return at
    /// the wake source). State published before `notify` is visible to
    /// the woken thread after its `wait` returns.
    ///
    /// # Errors
    ///
    /// OS-level failure writing the wake fd (never errors on `timeout`).
    pub fn notify(&self) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.notify(),
            #[cfg(unix)]
            Backend::Poll(b) => b.notify(),
            Backend::Timeout(b) => b.notify(),
        }
    }
}

fn backend_name(backend: &Backend) -> &'static str {
    match backend {
        #[cfg(target_os = "linux")]
        Backend::Epoll(_) => "epoll",
        #[cfg(unix)]
        Backend::Poll(_) => "poll",
        Backend::Timeout(_) => "timeout",
    }
}

/// The platform's preferred backend.
#[cfg(target_os = "linux")]
pub const DEFAULT_BACKEND: &str = "epoll";
/// The platform's preferred backend.
#[cfg(all(unix, not(target_os = "linux")))]
pub const DEFAULT_BACKEND: &str = "poll";
/// The platform's preferred backend.
#[cfg(not(unix))]
pub const DEFAULT_BACKEND: &str = "timeout";

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// Every backend constructible on this platform.
    fn all_backends() -> Vec<Poller> {
        let mut pollers = Vec::new();
        for name in ["epoll", "poll", "timeout"] {
            if let Ok(p) = Poller::with_backend(name) {
                assert_eq!(p.backend(), name);
                pollers.push(p);
            }
        }
        assert!(!pollers.is_empty());
        pollers
    }

    /// Backends with a real readiness source (accurate, not
    /// assume-ready) — the ones socket-accuracy assertions hold for.
    fn real_backends() -> Vec<Poller> {
        all_backends()
            .into_iter()
            .filter(|p| p.backend() != "timeout")
            .collect()
    }

    #[test]
    fn default_backend_constructs() {
        let poller = Poller::new().expect("default backend");
        assert!(["epoll", "poll", "timeout"].contains(&poller.backend()));
        assert!(Poller::with_backend("no-such-backend").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn registration_lifecycle_add_modify_delete() {
        for poller in all_backends() {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            poller.add(&listener, Event::readable(3)).unwrap();
            assert_eq!(
                poller
                    .add(&listener, Event::readable(3))
                    .expect_err("double add")
                    .kind(),
                io::ErrorKind::AlreadyExists,
                "{}",
                poller.backend()
            );
            poller.modify(&listener, Event::all(4)).unwrap();
            poller.modify(&listener, Event::none(4)).unwrap();
            poller.delete(&listener).unwrap();
            assert!(poller.delete(&listener).is_err(), "{}", poller.backend());
            assert!(
                poller.modify(&listener, Event::readable(3)).is_err(),
                "{}",
                poller.backend()
            );
            // Deleted sources can be re-registered.
            poller.add(&listener, Event::readable(5)).unwrap();
        }
    }

    #[cfg(unix)]
    #[test]
    fn listener_readability_tracks_pending_connections() {
        for poller in real_backends() {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poller.add(&listener, Event::readable(7)).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(25)))
                .unwrap();
            assert!(events.is_empty(), "{}: nothing pending", poller.backend());

            let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 7 && e.readable),
                "{}: pending accept is readable, got {events:?}",
                poller.backend()
            );
        }
    }

    #[cfg(unix)]
    #[test]
    fn interest_toggle_parks_and_revives_a_source() {
        for poller in real_backends() {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            stream.set_nonblocking(true).unwrap();
            poller.add(&stream, Event::writable(1)).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 1 && e.writable),
                "{}: an idle connected socket is writable",
                poller.backend()
            );
            // Parked: still writable underneath, but never reported.
            poller.modify(&stream, Event::none(1)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(25)))
                .unwrap();
            assert!(events.is_empty(), "{}: parked", poller.backend());
            poller.modify(&stream, Event::writable(2)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 2 && e.writable),
                "{}: revived under the new key",
                poller.backend()
            );
        }
    }

    #[cfg(unix)]
    #[test]
    fn parked_source_with_hung_up_peer_stays_silent() {
        use std::io::Write as _;
        // Regression: epoll always reports ERR/HUP, even for an empty
        // interest mask — a parked fd with a dead peer must not storm
        // `wait` (the backend keeps parked fds out of the kernel set).
        for poller in real_backends() {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (served, _) = listener.accept().unwrap();
            poller.add(&served, Event::readable(5)).unwrap();
            poller.modify(&served, Event::none(5)).unwrap();
            // Unread data at hangup elicits an RST — the loudest form
            // of peer death (ERR and HUP both set).
            client.write_all(b"unread").unwrap();
            drop(client);
            std::thread::sleep(Duration::from_millis(30));
            let mut events = Vec::new();
            for _ in 0..3 {
                poller
                    .wait(&mut events, Some(Duration::from_millis(40)))
                    .unwrap();
                assert!(
                    events.is_empty(),
                    "{}: parked fd surfaced {events:?}",
                    poller.backend()
                );
            }
            // Reviving the interest surfaces the pending death again.
            poller.modify(&served, Event::all(6)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 6),
                "{}: revived fd must report readiness",
                poller.backend()
            );
        }
    }

    #[test]
    fn wake_rung_before_wait_is_not_lost() {
        for poller in all_backends() {
            poller.notify().unwrap();
            let started = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(2),
                "{}: a pre-rung wake must cut the wait short (took {:?})",
                poller.backend(),
                started.elapsed()
            );
        }
    }

    #[test]
    fn wake_is_consumed_once_and_coalesced() {
        for poller in all_backends() {
            for _ in 0..5 {
                poller.notify().unwrap();
            }
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            // The burst coalesced into that one early return: the next
            // wait runs its full timeout.
            let started = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_millis(60)))
                .unwrap();
            assert!(
                started.elapsed() >= Duration::from_millis(40),
                "{}: no stale wake may linger (returned after {:?})",
                poller.backend(),
                started.elapsed()
            );
            // And the handle still works after the coalesced cycle.
            poller.notify().unwrap();
            let started = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(started.elapsed() < Duration::from_secs(2));
        }
    }

    #[test]
    fn wake_from_another_thread_cuts_a_blocked_wait_short() {
        for poller in all_backends() {
            let poller = std::sync::Arc::new(poller);
            let ringer = std::sync::Arc::clone(&poller);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                ringer.notify().unwrap();
            });
            let started = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "{}: cross-thread wake must interrupt the wait",
                poller.backend()
            );
            handle.join().unwrap();
        }
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
