//! Offline stand-in for the `rand` crate.
//!
//! The workspace is built in environments without access to a crates.io
//! mirror, so external dependencies are vendored as minimal
//! API-compatible subsets. This crate covers exactly what
//! `widx-workloads` (and future users) need:
//!
//! * [`rngs::StdRng`] — a seeded, deterministic generator
//!   (xoshiro256++ seeded via SplitMix64; *not* the upstream ChaCha12,
//!   so streams differ from upstream `rand`, but every consumer in this
//!   workspace only relies on determinism per seed, not on specific
//!   values);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for `f64`/`u64`/`u32`/`bool` and [`Rng::gen_range`]
//!   over half-open integer ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Statistical quality: xoshiro256++ passes BigCrush; more than adequate
//! for workload generation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)`. Uses Lemire-style rejection-free modulo;
/// the slight modulo bias (< 2⁻⁶⁴ · span) is irrelevant at workload scale.
fn below<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u128::from(u64::MAX) {
        u128::from(rng.next_u64()) % span
    } else {
        let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        wide % span
    }
}

/// The core random-number-generator interface.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it into the
    /// full internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations to slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(0..64);
            assert!(v < 64);
            let w: i16 = r.gen_range(-5i16..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = StdRng::seed_from_u64(2);
        let mut below_half = 0usize;
        let n = 50_000;
        for _ in 0..n {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        let frac = below_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction below 0.5: {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn takes_impl(r: &mut impl Rng) -> u64 {
            r.gen_range(0..10u64)
        }
        let mut r = StdRng::seed_from_u64(4);
        assert!(takes_impl(&mut r) < 10);
    }
}
