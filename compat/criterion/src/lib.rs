//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without a crates.io mirror, so external
//! dependencies are vendored as minimal API-compatible subsets. This one
//! keeps the workspace's `benches/` compiling and producing useful
//! numbers: it implements groups, `bench_function` /
//! `bench_with_input`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros over a simple
//! measure-and-report harness (median of `sample_size` timed samples,
//! with a short warm-up). There are no plots, no statistical regression
//! analysis, and no saved baselines — just honest wall-clock medians.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque wrapper preventing the optimizer from deleting a benchmark's
/// work (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `payload`, running it enough times to smooth noise.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(payload());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work amount for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; we print as we
    /// go, so this only exists for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibration pass: find an iteration count that runs ≥ ~20 ms
        // so Instant resolution is negligible.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / median * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{}/{label}: {median:.0} ns/iter{rate}", self.name);
    }
}

/// Declares a benchmark group entry point, in either the positional or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("amac", 4).to_string(), "amac/4");
        assert_eq!(
            BenchmarkId::from_parameter("robust64").to_string(),
            "robust64"
        );
    }

    #[test]
    fn bencher_times_payload() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        group.finish();
        assert!(runs > 0);
    }
}
