//! The env-denied syscall path, asserted (not skipped): `WIDX_PROF_DENY`
//! makes the hardware open behave exactly like a kernel refusal, so
//! `CounterGroup::new()` must degrade to the soft backend with a
//! recorded reason, and a *forced* hardware backend must error.
//!
//! This lives in its own integration-test binary because it mutates
//! process environment: integration tests run as separate processes,
//! so the override cannot leak into the unit tests' backend selection.

use perf_event::{CounterGroup, DEFAULT_BACKEND};

#[test]
fn denied_hardware_open_falls_back_to_soft() {
    std::env::set_var("WIDX_PROF_DENY", "1");
    std::env::remove_var("WIDX_PROF");

    let mut group = CounterGroup::new();
    assert_eq!(group.backend(), "soft");
    assert!(!group.has_hw_counters());

    if DEFAULT_BACKEND == "linux" {
        // On hardware-capable platforms the degradation must be real —
        // a refusal that was observed and recorded, not a skip.
        let reason = group.fallback_reason().expect("fallback reason recorded");
        assert!(
            reason.contains("linux"),
            "reason names the backend: {reason}"
        );
        let denied = match CounterGroup::with_backend("linux") {
            Err(err) => err,
            Ok(_) => panic!("forced hw must error"),
        };
        assert_eq!(denied.kind(), std::io::ErrorKind::PermissionDenied);
    }

    // The degraded group still works end to end.
    group.enable().expect("soft enable");
    std::thread::sleep(std::time::Duration::from_millis(2));
    let snap = group.read().expect("soft read");
    assert!(snap.time_enabled_ns > 0);
    assert_eq!(snap.cycles, 0);
    group.disable().expect("soft disable");
}
