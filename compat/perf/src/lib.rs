//! Offline stand-in for hardware performance-counter access.
//!
//! The workspace builds in environments without a crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible
//! subsets; this crate is that subset for per-thread hardware counters
//! (in the spirit of the `perf-event` crate): open a counter group on
//! the calling thread, enable it around a region of interest, and read
//! back cycles / instructions / LLC misses / dTLB misses plus the
//! enabled and running times needed to scale multiplexed counts.
//!
//! Two backends, selected automatically (or forced through the
//! `WIDX_PROF` environment variable / [`CounterGroup::with_backend`]):
//!
//! * **`linux`** (Linux on x86_64/aarch64, the default there) — a real
//!   `perf_event_open(2)` counter group scoped to the calling thread,
//!   user-space only (`exclude_kernel`/`exclude_hv`), so it works at
//!   `perf_event_paranoid = 2`;
//! * **`soft`** (everywhere, the non-Linux default) — no kernel
//!   counters at all: hardware fields read zero and only the
//!   enabled/running wall-times advance. Consumers detect this via
//!   [`CounterGroup::has_hw_counters`] and fall back to software
//!   counters (e.g. walker `WalkCounters`) for their derived metrics.
//!
//! [`CounterGroup::new`] never fails: when the kernel refuses the
//! syscall (`perf_event_paranoid`, seccomp, a container profile — or
//! the `WIDX_PROF_DENY` test override), it degrades to `soft` and
//! records the reason in [`CounterGroup::fallback_reason`]. Forcing a
//! backend with `with_backend` stays strict and surfaces the error.
//!
//! `unsafe` is confined to `sys.rs` (raw syscalls the platform libc
//! already links); everything above it is safe code.

#![warn(missing_docs)]

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys;

use std::io;
use std::time::{Duration, Instant};

/// The hardware events a [`CounterGroup`] counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterKind {
    /// Core cycles (`PERF_COUNT_HW_CPU_CYCLES`).
    Cycles,
    /// Retired instructions (`PERF_COUNT_HW_INSTRUCTIONS`).
    Instructions,
    /// Last-level cache misses (`PERF_COUNT_HW_CACHE_MISSES`).
    LlcMisses,
    /// dTLB read misses (`PERF_TYPE_HW_CACHE`).
    DtlbMisses,
}

impl CounterKind {
    /// Every kind, in the order the hardware group opens them.
    pub const ALL: [CounterKind; 4] = [
        CounterKind::Cycles,
        CounterKind::Instructions,
        CounterKind::LlcMisses,
        CounterKind::DtlbMisses,
    ];

    /// Stable lower-snake name used in JSON and Prometheus output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::Cycles => "cycles",
            CounterKind::Instructions => "instructions",
            CounterKind::LlcMisses => "llc_misses",
            CounterKind::DtlbMisses => "dtlb_misses",
        }
    }
}

/// One point-in-time reading of a counter group. Hardware fields are
/// multiplex-scaled (`value × enabled ÷ running`) so concurrent perf
/// users don't silently shrink the counts; on the `soft` backend they
/// are all zero and only the times advance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Core cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Last-level cache misses.
    pub llc_misses: u64,
    /// dTLB read misses.
    pub dtlb_misses: u64,
    /// Nanoseconds the group has been enabled.
    pub time_enabled_ns: u64,
    /// Nanoseconds the group was actually on hardware (less than
    /// enabled time when the PMU multiplexes).
    pub time_running_ns: u64,
}

impl CounterSnapshot {
    /// Field-wise saturating difference: this snapshot minus an
    /// `earlier` one. The saturation matters because multiplex scaling
    /// rounds each absolute reading independently.
    #[must_use]
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            llc_misses: self.llc_misses.saturating_sub(earlier.llc_misses),
            dtlb_misses: self.dtlb_misses.saturating_sub(earlier.dtlb_misses),
            time_enabled_ns: self.time_enabled_ns.saturating_sub(earlier.time_enabled_ns),
            time_running_ns: self.time_running_ns.saturating_sub(earlier.time_running_ns),
        }
    }

    /// The value counted for `kind`.
    #[must_use]
    pub fn get(&self, kind: CounterKind) -> u64 {
        match kind {
            CounterKind::Cycles => self.cycles,
            CounterKind::Instructions => self.instructions,
            CounterKind::LlcMisses => self.llc_misses,
            CounterKind::DtlbMisses => self.dtlb_misses,
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
struct HwGroup {
    /// `fds[0]` is the leader (cycles); `members` names each fd's
    /// event in kernel read order. A follower the PMU cannot count
    /// (some machines lack the dTLB event) is simply absent and its
    /// snapshot field stays zero.
    fds: Vec<sys::OwnedFd>,
    members: Vec<CounterKind>,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl HwGroup {
    fn open() -> io::Result<HwGroup> {
        if std::env::var_os("WIDX_PROF_DENY").is_some() {
            // Test hook: behave exactly as a kernel refusal would, so
            // the fallback path can be exercised deterministically.
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "hardware counters denied by WIDX_PROF_DENY",
            ));
        }
        let leader_attr =
            sys::counting_attr(sys::PERF_TYPE_HARDWARE, sys::PERF_COUNT_HW_CPU_CYCLES, true);
        let leader = sys::perf_event_open(&leader_attr, -1)?;
        let mut fds = vec![leader];
        let mut members = vec![CounterKind::Cycles];
        let followers = [
            (
                CounterKind::Instructions,
                sys::PERF_TYPE_HARDWARE,
                sys::PERF_COUNT_HW_INSTRUCTIONS,
            ),
            (
                CounterKind::LlcMisses,
                sys::PERF_TYPE_HARDWARE,
                sys::PERF_COUNT_HW_CACHE_MISSES,
            ),
            (
                CounterKind::DtlbMisses,
                sys::PERF_TYPE_HW_CACHE,
                sys::PERF_HW_CACHE_DTLB_READ_MISS,
            ),
        ];
        for (kind, type_, config) in followers {
            let attr = sys::counting_attr(type_, config, false);
            if let Ok(fd) = sys::perf_event_open(&attr, fds[0].0) {
                fds.push(fd);
                members.push(kind);
            }
        }
        Ok(HwGroup { fds, members })
    }

    fn leader(&self) -> sys::RawFd {
        self.fds[0].0
    }

    fn read(&self) -> io::Result<CounterSnapshot> {
        // {nr, time_enabled, time_running, value[0..nr]}.
        let mut buf = [0u64; 3 + CounterKind::ALL.len()];
        let words = sys::read_group(self.leader(), &mut buf)?;
        if words < 3 + self.members.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short perf group read",
            ));
        }
        let (enabled, running) = (buf[1], buf[2]);
        let scale = |value: u64| -> u64 {
            if running == 0 || running >= enabled {
                value
            } else {
                u64::try_from(u128::from(value) * u128::from(enabled) / u128::from(running))
                    .unwrap_or(u64::MAX)
            }
        };
        let mut snap = CounterSnapshot {
            time_enabled_ns: enabled,
            time_running_ns: running,
            ..CounterSnapshot::default()
        };
        for (slot, kind) in self.members.iter().enumerate() {
            let value = scale(buf[3 + slot]);
            match kind {
                CounterKind::Cycles => snap.cycles = value,
                CounterKind::Instructions => snap.instructions = value,
                CounterKind::LlcMisses => snap.llc_misses = value,
                CounterKind::DtlbMisses => snap.dtlb_misses = value,
            }
        }
        Ok(snap)
    }
}

/// The software fallback: no kernel counters, just enabled-time
/// bookkeeping so windowed attribution still sees wall time.
struct SoftGroup {
    accumulated: Duration,
    running_since: Option<Instant>,
}

impl SoftGroup {
    fn new() -> SoftGroup {
        SoftGroup {
            accumulated: Duration::ZERO,
            running_since: None,
        }
    }

    fn enabled_time(&self) -> Duration {
        self.accumulated
            + self
                .running_since
                .map_or(Duration::ZERO, |since| since.elapsed())
    }
}

enum Backend {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Linux(HwGroup),
    Soft(SoftGroup),
}

/// A per-thread counter group. See the crate docs for backend
/// selection and degradation semantics.
///
/// The group is scoped to the thread that opened it (pid 0, any cpu),
/// so counts attribute cleanly to one worker — and a thread blocked in
/// the kernel accrues almost nothing, which is what makes coarse
/// enable/read windows around queue waits honest.
pub struct CounterGroup {
    backend: Backend,
    name: &'static str,
    fallback: Option<String>,
}

/// The platform's preferred backend.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub const DEFAULT_BACKEND: &str = "linux";
/// The platform's preferred backend.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub const DEFAULT_BACKEND: &str = "soft";

impl CounterGroup {
    /// Opens a counter group on the platform's best backend, honouring
    /// a `WIDX_PROF` environment override (`linux` / `soft`). Never
    /// fails: a refused or unavailable hardware backend degrades to
    /// `soft`, with the reason kept in
    /// [`fallback_reason`](CounterGroup::fallback_reason).
    #[must_use]
    pub fn new() -> CounterGroup {
        let requested = std::env::var("WIDX_PROF").unwrap_or_else(|_| DEFAULT_BACKEND.to_string());
        match CounterGroup::with_backend(&requested) {
            Ok(group) => group,
            Err(err) => CounterGroup {
                backend: Backend::Soft(SoftGroup::new()),
                name: "soft",
                fallback: Some(format!("{requested}: {err}")),
            },
        }
    }

    /// Opens a counter group on a named backend: `"linux"` or
    /// `"soft"`. Unlike [`new`](CounterGroup::new), this is strict —
    /// a denied syscall or unknown name is an error, which is what the
    /// forced-fallback tests assert on.
    ///
    /// # Errors
    ///
    /// The kernel refusing `perf_event_open` (paranoid level, seccomp),
    /// an unknown name, or a backend unavailable on this platform.
    pub fn with_backend(name: &str) -> io::Result<CounterGroup> {
        match name {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            "linux" => Ok(CounterGroup {
                backend: Backend::Linux(HwGroup::open()?),
                name: "linux",
                fallback: None,
            }),
            "soft" => Ok(CounterGroup {
                backend: Backend::Soft(SoftGroup::new()),
                name: "soft",
                fallback: None,
            }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown or unavailable prof backend {other:?}"),
            )),
        }
    }

    /// The active backend's name (`"linux"` or `"soft"`).
    #[must_use]
    pub fn backend(&self) -> &'static str {
        self.name
    }

    /// Whether reads carry real hardware counts. On `soft` the
    /// hardware fields are always zero and consumers should derive
    /// their metrics from software counters instead.
    #[must_use]
    pub fn has_hw_counters(&self) -> bool {
        !matches!(self.backend, Backend::Soft(_))
    }

    /// Why [`new`](CounterGroup::new) fell back to `soft`, if it did.
    #[must_use]
    pub fn fallback_reason(&self) -> Option<&str> {
        self.fallback.as_deref()
    }

    /// Starts counting (idempotent).
    ///
    /// # Errors
    ///
    /// OS-level ioctl failure (never errors on `soft`).
    pub fn enable(&mut self) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Linux(group) => sys::group_enable(group.leader()),
            Backend::Soft(group) => {
                if group.running_since.is_none() {
                    group.running_since = Some(Instant::now());
                }
                Ok(())
            }
        }
    }

    /// Stops counting; counts and times freeze until re-enabled.
    ///
    /// # Errors
    ///
    /// OS-level ioctl failure (never errors on `soft`).
    pub fn disable(&mut self) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Linux(group) => sys::group_disable(group.leader()),
            Backend::Soft(group) => {
                if let Some(since) = group.running_since.take() {
                    group.accumulated += since.elapsed();
                }
                Ok(())
            }
        }
    }

    /// Zeroes the counter values. The kernel does not rewind
    /// `time_enabled`/`time_running`, so windowed consumers should
    /// difference [`CounterSnapshot::since`] rather than reset.
    ///
    /// # Errors
    ///
    /// OS-level ioctl failure (never errors on `soft`).
    pub fn reset(&mut self) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Linux(group) => sys::group_reset(group.leader()),
            Backend::Soft(group) => {
                group.accumulated = Duration::ZERO;
                if group.running_since.is_some() {
                    group.running_since = Some(Instant::now());
                }
                Ok(())
            }
        }
    }

    /// Reads the group: one coherent, multiplex-scaled snapshot.
    ///
    /// # Errors
    ///
    /// OS-level read failure (never errors on `soft`).
    pub fn read(&mut self) -> io::Result<CounterSnapshot> {
        match &self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Linux(group) => group.read(),
            Backend::Soft(group) => {
                let enabled = u64::try_from(group.enabled_time().as_nanos()).unwrap_or(u64::MAX);
                Ok(CounterSnapshot {
                    time_enabled_ns: enabled,
                    time_running_ns: enabled,
                    ..CounterSnapshot::default()
                })
            }
        }
    }
}

impl Default for CounterGroup {
    fn default() -> CounterGroup {
        CounterGroup::new()
    }
}

impl std::fmt::Debug for CounterGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterGroup")
            .field("backend", &self.name)
            .field("fallback", &self.fallback)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every backend constructible in this environment. `linux` may be
    /// legitimately absent (non-Linux hosts, denied syscall) — the
    /// forced-fallback integration test pins the denial path instead.
    fn all_backends() -> Vec<CounterGroup> {
        let mut groups = Vec::new();
        for name in ["linux", "soft"] {
            if let Ok(group) = CounterGroup::with_backend(name) {
                assert_eq!(group.backend(), name);
                groups.push(group);
            }
        }
        assert!(!groups.is_empty());
        groups
    }

    fn spin() -> u64 {
        let mut x = 1u64;
        for i in 0..200_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x)
    }

    #[test]
    fn default_backend_never_fails_to_construct() {
        let group = CounterGroup::new();
        assert!(["linux", "soft"].contains(&group.backend()));
        // `new()` honors WIDX_PROF, so judge against what was actually
        // requested: serving the requested backend is not a fallback.
        let requested = std::env::var("WIDX_PROF").unwrap_or_else(|_| DEFAULT_BACKEND.to_string());
        if group.backend() == requested {
            assert!(group.fallback_reason().is_none());
        } else {
            // Degraded: the reason must say what was refused.
            assert!(group.fallback_reason().is_some());
        }
        assert_eq!(
            CounterGroup::with_backend("no-such-backend")
                .expect_err("unknown backend")
                .kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn enable_read_disable_cycle_counts_work() {
        for mut group in all_backends() {
            group.enable().unwrap();
            let _ = spin();
            let snap = group.read().unwrap();
            assert!(
                snap.time_enabled_ns > 0,
                "{}: enabled time must advance",
                group.backend()
            );
            if group.has_hw_counters() {
                assert!(snap.cycles > 0, "hw cycles must tick");
                assert!(snap.instructions > 0, "hw instructions must tick");
            } else {
                assert_eq!(snap.cycles, 0, "soft backend counts no hardware");
                assert_eq!(snap.time_enabled_ns, snap.time_running_ns);
            }
            group.disable().unwrap();
            let frozen = group.read().unwrap();
            let _ = spin();
            let again = group.read().unwrap();
            assert_eq!(
                frozen,
                again,
                "{}: a disabled group must freeze",
                group.backend()
            );
        }
    }

    #[test]
    fn windows_difference_cleanly_with_since() {
        for mut group in all_backends() {
            group.enable().unwrap();
            let _ = spin();
            let first = group.read().unwrap();
            let _ = spin();
            let second = group.read().unwrap();
            let delta = second.since(&first);
            assert!(delta.time_enabled_ns > 0, "{}", group.backend());
            assert!(delta.time_enabled_ns <= second.time_enabled_ns);
            if group.has_hw_counters() {
                assert!(delta.instructions > 0, "spin retires instructions");
            }
            // Differencing against a later snapshot saturates to zero
            // rather than wrapping.
            assert_eq!(first.since(&second).cycles, 0);
            assert_eq!(first.since(&second).time_enabled_ns, 0);
        }
    }

    #[test]
    fn reset_zeroes_counts() {
        for mut group in all_backends() {
            group.enable().unwrap();
            let _ = spin();
            group.disable().unwrap();
            let before = group.read().unwrap();
            group.reset().unwrap();
            let after = group.read().unwrap();
            assert!(
                after.cycles <= before.cycles,
                "{}: reset must not grow counts",
                group.backend()
            );
            if group.has_hw_counters() {
                assert_eq!(after.cycles, 0, "a disabled, reset counter reads zero");
                assert_eq!(after.instructions, 0);
            }
        }
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = CounterKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["cycles", "instructions", "llc_misses", "dtlb_misses"]
        );
        let snap = CounterSnapshot {
            cycles: 1,
            instructions: 2,
            llc_misses: 3,
            dtlb_misses: 4,
            ..CounterSnapshot::default()
        };
        for (i, kind) in CounterKind::ALL.into_iter().enumerate() {
            assert_eq!(snap.get(kind), i as u64 + 1);
        }
    }
}
