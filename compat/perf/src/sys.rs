//! Raw `perf_event_open(2)` bindings for the Linux backend.
//!
//! The workspace builds with no registry access, so the usual `libc`
//! crate is unavailable; `std` already links the platform C library,
//! which makes these `extern "C"` declarations resolve at link time
//! without any external dependency. `perf_event_open` has no libc
//! wrapper at all — it is reached through `syscall(2)`, whose number
//! is architecture-specific, so this module is compiled only on the
//! (os, arch) pairs whose numbers are declared below. It is the
//! crate's entire unsafe surface — everything above it speaks owned
//! fds and `io::Result`.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::{c_int, c_long, c_ulong, c_void};

pub type RawFd = c_int;

extern "C" {
    // syscall(2) and ioctl(2) are variadic and must be declared so: on
    // ABIs where variadic and fixed arguments travel differently, a
    // fixed declaration would hand the kernel garbage argument words.
    fn syscall(num: c_long, ...) -> c_long;
    fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

#[cfg(target_arch = "x86_64")]
const SYS_PERF_EVENT_OPEN: c_long = 298;
#[cfg(target_arch = "aarch64")]
const SYS_PERF_EVENT_OPEN: c_long = 241;

pub const PERF_TYPE_HARDWARE: u32 = 0;
pub const PERF_TYPE_HW_CACHE: u32 = 3;

pub const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
pub const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
pub const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;

/// dTLB read misses: cache id `DTLB` (3), op `READ` (0 << 8), result
/// `MISS` (1 << 16).
pub const PERF_HW_CACHE_DTLB_READ_MISS: u64 = 3 | (1 << 16);

const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
const PERF_FORMAT_GROUP: u64 = 1 << 3;

// Bits of the `flags` bitfield word in `perf_event_attr`.
const ATTR_DISABLED: u64 = 1 << 0;
const ATTR_EXCLUDE_KERNEL: u64 = 1 << 5;
const ATTR_EXCLUDE_HV: u64 = 1 << 6;

const PERF_FLAG_FD_CLOEXEC: c_ulong = 1 << 3;

const PERF_EVENT_IOC_ENABLE: c_ulong = 0x2400;
const PERF_EVENT_IOC_DISABLE: c_ulong = 0x2401;
const PERF_EVENT_IOC_RESET: c_ulong = 0x2403;
const PERF_IOC_FLAG_GROUP: c_ulong = 1;

/// `PERF_ATTR_SIZE_VER5`: the attr layout below, 112 bytes. The kernel
/// accepts any size it knows about, so pinning VER5 keeps the struct
/// independent of whatever headers the build host carries.
const PERF_ATTR_SIZE_VER5: u32 = 112;

/// The kernel's `perf_event_attr`, laid out to `PERF_ATTR_SIZE_VER5`.
/// All fields after `flags` exist only to make the size honest — the
/// counting-mode events this crate opens leave them zero.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct perf_event_attr {
    pub type_: u32,
    pub size: u32,
    pub config: u64,
    pub sample_period: u64,
    pub sample_type: u64,
    pub read_format: u64,
    pub flags: u64,
    pub wakeup_events: u32,
    pub bp_type: u32,
    pub config1: u64,
    pub config2: u64,
    pub branch_sample_type: u64,
    pub sample_regs_user: u64,
    pub sample_stack_user: u32,
    pub clockid: i32,
    pub sample_regs_intr: u64,
    pub aux_watermark: u32,
    pub sample_max_stack: u16,
    pub __reserved_2: u16,
}

/// A counting-mode attr: excluded from kernel and hypervisor so it
/// works at `perf_event_paranoid = 2`, started disabled when it leads
/// a group (followers inherit the leader's enable state), and — for
/// the leader — read back as one group buffer with the enabled/running
/// times needed for multiplex scaling.
pub fn counting_attr(type_: u32, config: u64, leader: bool) -> perf_event_attr {
    perf_event_attr {
        type_,
        size: PERF_ATTR_SIZE_VER5,
        config,
        sample_period: 0,
        sample_type: 0,
        read_format: if leader {
            PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING
        } else {
            0
        },
        flags: ATTR_EXCLUDE_KERNEL | ATTR_EXCLUDE_HV | if leader { ATTR_DISABLED } else { 0 },
        wakeup_events: 0,
        bp_type: 0,
        config1: 0,
        config2: 0,
        branch_sample_type: 0,
        sample_regs_user: 0,
        sample_stack_user: 0,
        clockid: 0,
        sample_regs_intr: 0,
        aux_watermark: 0,
        sample_max_stack: 0,
        __reserved_2: 0,
    }
}

/// Converts a C return value into an `io::Result`, reading `errno`
/// through `std` on failure.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned perf event fd that closes on drop.
#[derive(Debug)]
pub struct OwnedFd(pub RawFd);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this handle and closed exactly once.
        unsafe {
            let _ = close(self.0);
        }
    }
}

/// Opens one counter on the calling thread (pid 0, any cpu), joining
/// `group_fd`'s counter group (`-1` starts a new group).
pub fn perf_event_open(attr: &perf_event_attr, group_fd: RawFd) -> io::Result<OwnedFd> {
    // SAFETY: `attr` outlives the call and carries its own `size`, which
    // the kernel validates before reading past it; the remaining
    // arguments are plain integers.
    let fd = unsafe {
        syscall(
            SYS_PERF_EVENT_OPEN,
            attr as *const perf_event_attr,
            0_i32,  // pid: the calling thread
            -1_i32, // cpu: wherever the thread runs
            group_fd,
            PERF_FLAG_FD_CLOEXEC,
        )
    };
    if fd < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(OwnedFd(fd as RawFd))
    }
}

/// Starts every counter in `leader`'s group.
pub fn group_enable(leader: RawFd) -> io::Result<()> {
    // SAFETY: plain ioctl on an fd we own; the flag argument is an integer.
    cvt(unsafe { ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) })?;
    Ok(())
}

/// Stops every counter in `leader`'s group (counts and enabled/running
/// times freeze until re-enabled).
pub fn group_disable(leader: RawFd) -> io::Result<()> {
    // SAFETY: plain ioctl on an fd we own; the flag argument is an integer.
    cvt(unsafe { ioctl(leader, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP) })?;
    Ok(())
}

/// Zeroes every counter value in `leader`'s group. Note the kernel does
/// *not* reset `time_enabled`/`time_running` — callers that need
/// windowed times must difference snapshots instead.
pub fn group_reset(leader: RawFd) -> io::Result<()> {
    // SAFETY: plain ioctl on an fd we own; the flag argument is an integer.
    cvt(unsafe { ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) })?;
    Ok(())
}

/// Reads the leader's `PERF_FORMAT_GROUP` buffer into `out` as u64
/// words — `{nr, time_enabled, time_running, value[0..nr]}` — and
/// returns how many words the kernel filled.
pub fn read_group(leader: RawFd, out: &mut [u64]) -> io::Result<usize> {
    // SAFETY: `out` is a valid writable region of its own byte length.
    let n = unsafe { read(leader, out.as_mut_ptr().cast(), std::mem::size_of_val(out)) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize / std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_layout_is_ver5_sized() {
        assert_eq!(
            std::mem::size_of::<perf_event_attr>(),
            PERF_ATTR_SIZE_VER5 as usize
        );
        let attr = counting_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, true);
        assert_eq!(attr.size, PERF_ATTR_SIZE_VER5);
        assert_eq!(attr.flags & ATTR_DISABLED, ATTR_DISABLED);
        let follower = counting_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, false);
        assert_eq!(follower.flags & ATTR_DISABLED, 0);
        assert_eq!(follower.read_format, 0);
    }
}
