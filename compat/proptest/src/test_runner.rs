//! Test execution support: per-test deterministic RNG and run
//! configuration.

/// Per-test configuration consumed by the [`proptest!`](crate::proptest)
/// macro.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep the cycle-accurate
    /// simulation property tests fast, while still exploring widely.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving strategies: xoshiro256++ seeded from
/// the FNV-1a hash of the test name, so every run of a given test
/// explores the same cases (reproducible CI) while distinct tests get
/// distinct streams.
///
/// Setting the `PROPTEST_SEED` environment variable (a `u64`) mixes an
/// explicit seed into every per-test stream: CI tiers pin it to make a
/// run reproducible by command line alone, and changing it explores a
/// different deterministic slice of the input space without touching
/// the tests.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for the named test (mixed with `PROPTEST_SEED` when set).
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        TestRng::for_test_seeded(name, env_seed)
    }

    /// RNG for the named test with an explicit exploration-seed
    /// override — the pure form `for_test` feeds from `PROPTEST_SEED`
    /// (`None` reproduces the name-only stream).
    #[must_use]
    pub fn for_test_seeded(name: &str, seed: Option<u64>) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Some(seed) = seed {
            h ^= seed.rotate_left(31).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        TestRng::seed_from_u64(h)
    }

    /// RNG from an explicit seed (SplitMix64 state expansion).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, span)` (`span` ≤ 2⁶⁴ fits every integer
    /// range the strategies support).
    pub(crate) fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span <= u128::from(u64::MAX) {
            u128::from(self.next_u64()) % span
        } else {
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_differ() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn default_config_is_modest() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
    }

    #[test]
    fn explicit_seed_mixes_into_the_stream() {
        // Exercises the pure mixing path `PROPTEST_SEED` feeds — no env
        // mutation here, since concurrent tests read the variable.
        let name = "explicit_seed_mixes_into_the_stream";
        let base = TestRng::for_test_seeded(name, None).next_u64();
        let a = TestRng::for_test_seeded(name, Some(12345)).next_u64();
        let b = TestRng::for_test_seeded(name, Some(54321)).next_u64();
        assert_ne!(a, b, "different seeds, different streams");
        assert_ne!(a, base, "a pinned seed changes the stream");
        assert_eq!(
            TestRng::for_test_seeded(name, None).next_u64(),
            base,
            "no seed reproduces the name-only stream"
        );
    }
}
