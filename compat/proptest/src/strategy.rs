//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG stream to values. Unlike
//! upstream proptest there is no shrinking: `generate` returns the value
//! directly rather than a value tree.

use std::marker::PhantomData;

use crate::test_runner::TestRng;

/// How many times filtering combinators re-draw before giving up.
const FILTER_RETRIES: usize = 1024;

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps each generated value to a *new strategy* and draws from it —
    /// the way to generate dependent tuples such as ordered `(lo, hi)`
    /// range pairs: `(0u64..100).prop_flat_map(|lo| (Just(lo),
    /// lo..100))`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, re-drawing otherwise.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps values through `f`, re-drawing whenever it returns `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted {FILTER_RETRIES} draws: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map exhausted {FILTER_RETRIES} draws: {}",
            self.reason
        );
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Uniform strategy over a primitive's entire domain (see
/// [`any`](crate::arbitrary::any)).
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T> {
    _marker: PhantomData<T>,
}

impl<T> AnyPrimitive<T> {
    pub(crate) fn new() -> AnyPrimitive<T> {
        AnyPrimitive {
            _marker: PhantomData,
        }
    }
}

macro_rules! impl_any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}
