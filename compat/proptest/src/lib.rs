//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments without a crates.io mirror, so
//! external dependencies are vendored as minimal API-compatible subsets.
//! This crate implements the slice of proptest the workspace's property
//! tests actually use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//!   `prop_filter` / `prop_filter_map` / `boxed`, implemented for
//!   integer ranges, tuples (up to 8), [`strategy::Just`], and boxed
//!   strategies;
//! * [`arbitrary::any`] for the primitive integers and `bool`;
//! * [`collection::vec`] for variable-length vectors;
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header) plus
//!   [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_assume!`].
//!
//! Differences from upstream, deliberately accepted for a hermetic
//! build: cases are generated from a deterministic per-test seed (the
//! FNV-1a hash of the test's name, optionally mixed with the
//! `PROPTEST_SEED` environment variable — CI pins it per tier), there
//! is **no shrinking** (a failing case panics with the generated inputs
//! printed by the assertion itself), and `prop_assume!` skips the
//! current case rather than tracking a rejection quota.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner;

/// `Arbitrary` — canonical strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::{AnyPrimitive, Strategy};

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive::new()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// The canonical strategy for `T`: uniform over the whole domain.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// `proptest::collection` — strategies for containers.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from a range and
    /// elements drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: length uniform in `len`, elements from
    /// `element`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `len` is empty.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` path alias used by `prop::collection::vec` call sites.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Everything a property-test file needs, in one glob import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test (panics on failure, which
/// fails the test with the offending inputs in the panic message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when its precondition does not hold.
/// Must appear directly inside a [`proptest!`] test body (it expands to
/// `continue` targeting the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i16..=5, n in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        /// The dependent-pair pattern range-scan tests rely on.
        #[test]
        fn flat_map_builds_ordered_pairs(
            pair in (0u64..100).prop_flat_map(|lo| (Just(lo), lo..100)),
        ) {
            prop_assert!(pair.0 <= pair.1 && pair.1 < 100);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments before the attribute must parse.
        #[test]
        fn config_header_accepted(t in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a, b))) {
            prop_assert!(t.0 < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = prop::collection::vec(0u64..1000, 1..20);
        let mut r1 = TestRng::for_test("deterministic_across_runs");
        let mut r2 = TestRng::for_test("deterministic_across_runs");
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    fn filter_map_retries_until_some() {
        let strat =
            (0u64..100).prop_filter_map(
                "even halves",
                |x| {
                    if x % 2 == 0 {
                        Some(x / 2)
                    } else {
                        None
                    }
                },
            );
        let mut rng = TestRng::for_test("filter_map_retries_until_some");
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 50);
        }
    }

    #[test]
    fn union_is_roughly_uniform() {
        let strat = prop_oneof![Just(0usize), Just(1), Just(2)];
        let mut rng = TestRng::for_test("union_is_roughly_uniform");
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[strat.generate(&mut rng)] += 1;
        }
        for c in counts {
            assert!(c > 700, "arm starved: {counts:?}");
        }
    }
}
