//! Live telemetry end to end: build a service with per-request tracing
//! armed and hardware profiling on, put the `widx-net` server in
//! front, drive background load, and scrape the `Stats` wire opcode
//! mid-run from a second connection — then pull a sampled trace off
//! the `Trace` opcode's flight-recorder document, scrape the `Profile`
//! opcode's per-stage counter breakdown, and render the final snapshot
//! as Prometheus text exposition.
//!
//! Run with: `cargo run --release --example stats_scrape`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use widx_repro::db::hash::HashRecipe;
use widx_repro::net::{NetConfig, WidxClient, WidxServer};
use widx_repro::obs::json;
use widx_repro::serve::{ProbeService, ServeConfig};
use widx_repro::workloads::datagen;

fn main() {
    let entries = 1 << 16;
    let pairs: Vec<(u64, u64)> = datagen::unique_shuffled_keys(7, entries)
        .into_iter()
        .enumerate()
        .map(|(row, key)| (key, row as u64))
        .collect();
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs,
        // Head-sample one request in 64 into the flight recorder; any
        // request over 5 ms is tail-recorded (and slow-logged) even if
        // sampling skips it.
        &ServeConfig::default()
            .with_shards(4)
            .with_inflight(8)
            .with_trace_sample(64)
            .with_slow_threshold(Some(Duration::from_millis(5)))
            // Per-worker perf_event counter windows over the stage seam
            // (software clock backend on hosts without a PMU).
            .with_profile(true),
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // One connection drives a skewed mixed workload in the background…
    let stop = AtomicBool::new(false);
    let stop = &stop;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut client = WidxClient::connect(addr).expect("load connect");
            let hot = datagen::zipf_keys(11, 4_096, entries as u64, 0.99);
            while !stop.load(Ordering::Relaxed) {
                for chunk in hot.chunks(64) {
                    for key in chunk {
                        let _ = client.lookup(*key).expect("lookup");
                    }
                    let _ = client
                        .range_scan(chunk[0], chunk[0] + 128, 128)
                        .expect("scan");
                }
            }
        });

        // …while a second connection scrapes the Stats opcode. The
        // reply is one JSON document; `widx_obs::json` pulls fields
        // out without a parser dependency.
        let mut scraper = WidxClient::connect(addr).expect("scraper connect");
        for tick in 1..=5 {
            std::thread::sleep(Duration::from_millis(20));
            let doc = scraper.stats_json().expect("stats scrape");
            println!(
                "scrape {tick}: {} keys probed, {} requests timed, p99 {} ns, \
                 {} frames in, {} open connection(s)",
                json::find_u64(&doc, "total_keys").unwrap_or(0),
                json::find_u64(&doc, "count").unwrap_or(0),
                json::find_u64(&doc, "p99_ns").unwrap_or(0),
                json::find_u64(&doc, "frames_in").unwrap_or(0),
                json::find_u64(&doc, "open_connections").unwrap_or(0),
            );
        }
        // The Trace opcode returns the flight recorder as one JSON
        // document: ring gauges plus the recorded traces, newest first,
        // each with its span timeline and walker counters.
        let doc = scraper.traces_json().expect("trace scrape");
        println!(
            "flight recorder: {} traces recorded ({} slow), depth {}",
            json::find_u64(&doc, "recorded").unwrap_or(0),
            json::find_u64(&doc, "slow").unwrap_or(0),
            json::find_u64(&doc, "depth").unwrap_or(0),
        );
        if let Some(at) = doc.find("\"traces\":[{") {
            let trace = &doc[at..];
            println!(
                "newest trace: kind {:?}, {} ns end to end, {} nodes walked \
                 (chain max {}), {} prefetches",
                json::find_str(trace, "kind").unwrap_or_default(),
                json::find_u64(trace, "total_ns").unwrap_or(0),
                json::find_u64(trace, "nodes").unwrap_or(0),
                json::find_u64(trace, "max_chain").unwrap_or(0),
                json::find_u64(trace, "prefetches").unwrap_or(0),
            );
        }
        // The Profile opcode returns the merged hardware-counter
        // snapshot: backend in use, per-stage windows, and the
        // walkers' software MLP cross-check. An unprofiled server
        // would answer {"enabled": false} instead.
        let doc = scraper.profile_json().expect("profile scrape");
        println!(
            "profile: backend {:?} (hw counters: {}), {} windows, \
             {} nodes walked at soft MLP {:.2}",
            json::find_str(&doc, "backend").unwrap_or_default(),
            doc.contains("\"hw\":true"),
            doc.find("\"total\":")
                .and_then(|at| json::find_u64(&doc[at..], "windows"))
                .unwrap_or(0),
            doc.find("\"walk\":")
                .and_then(|at| json::find_u64(&doc[at..], "nodes"))
                .unwrap_or(0),
            json::find_f64(&doc, "soft_mlp").unwrap_or(0.0),
        );
        stop.store(true, Ordering::Relaxed);
    });

    // The same snapshot the wire serves, rendered for a Prometheus
    // scrape endpoint. Stage quantiles show where request time went.
    let live = service.live_stats().with_net(server.stats());
    let prom = live.render_prometheus();
    for line in prom
        .lines()
        .filter(|l| l.contains("widx_stage_ns{") || l.starts_with("widx_net_frames"))
    {
        println!("{line}");
    }

    let _ = server.shutdown();
    let stats = Arc::try_unwrap(service)
        .ok()
        .expect("server released its handle")
        .shutdown();
    println!(
        "\nfinal: {} keys, p50 {:.1} µs / p99 {:.1} µs over {} requests",
        stats.total_keys(),
        stats.latency.p50_ns as f64 / 1e3,
        stats.latency.p99_ns as f64 / 1e3,
        stats.latency.count,
    );
}
