//! Software walkers on your actual CPU: measure scalar vs group-prefetch
//! vs AMAC probing of a DRAM-resident hash index — the paper's inter-key
//! parallelism insight applied in software.
//!
//! ```text
//! cargo run --release --example software_walkers
//! ```

use std::time::Instant;

use widx_repro::db::hash::HashRecipe;
use widx_repro::db::index::HashIndex;
use widx_repro::soft::{probe_amac, probe_group_prefetch, probe_scalar};
use widx_repro::workloads::datagen;

fn main() {
    let entries = 1 << 21; // ~96 MB materialized: DRAM-resident
    let probe_count = 1 << 16;
    println!("building a {entries}-entry index (~96 MB)...");
    let keys = datagen::unique_shuffled_keys(1, entries);
    let index = HashIndex::build(
        HashRecipe::robust64(),
        entries / 2,
        keys.iter().enumerate().map(|(r, k)| (*k, r as u64)),
    );
    let probes = datagen::uniform_keys(2, probe_count, entries as u64);

    type ProbeFn<'a> = &'a dyn Fn(&mut Vec<(u64, u64)>);
    let time = |name: &str, f: ProbeFn<'_>| {
        // Warm once, then measure the best of 3.
        let mut out = Vec::with_capacity(probe_count * 2);
        f(&mut out);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            out.clear();
            let t0 = Instant::now();
            f(&mut out);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let mps = probe_count as f64 / best / 1e6;
        println!("{name:<22} {mps:>7.1} M probes/s  ({} matches)", out.len());
        mps
    };

    let scalar = time("scalar (Listing 1)", &|out| {
        probe_scalar(&index, &probes, out);
    });
    let gp = time("group prefetch (G=8)", &|out| {
        probe_group_prefetch(&index, &probes, 8, out);
    });
    let amac = time("AMAC (8 in flight)", &|out| {
        probe_amac(&index, &probes, 8, out);
    });

    println!(
        "\ninter-key parallelism speedup on this host: GP {:.2}x, AMAC {:.2}x \
         (the software shadow of the paper's parallel walkers)",
        gp / scalar,
        amac / scalar
    );
}
