//! Probe a B+-tree with Widx — the paper's Section 7 "other index
//! structures" extension in action.
//!
//! ```text
//! cargo run --release --example btree_index
//! ```

use widx_repro::accel::btree::{offload_btree_probe, run_btree};
use widx_repro::accel::config::WidxConfig;
use widx_repro::db::index::BTreeIndex;
use widx_repro::workloads::datagen;

fn main() {
    let entries = 100_000u64;
    let fanout = 8;
    println!("building a fanout-{fanout} B+-tree over {entries} entries...");
    let keys = datagen::unique_shuffled_keys(5, entries as usize);
    let tree = BTreeIndex::build(fanout, keys.iter().enumerate().map(|(r, k)| (*k, r as u64)));
    println!(
        "height {} ({} inner levels + leaf)",
        tree.height(),
        tree.height() - 1
    );

    let probes = datagen::uniform_keys(6, 2048, entries * 2); // ~50% hit rate
    for walkers in [1usize, 2, 4] {
        let (result, image) = run_btree(&tree, &probes, &WidxConfig::with_walkers(walkers));
        let per = result.stats.walker_cycles_per_tuple();
        println!(
            "Widx {walkers}w: {:>7.1} cycles/tuple, {} matches  \
             [comp {:.1} | mem {:.1} | tlb {:.1} | idle {:.1}]  tree {} KB",
            result.stats.cycles_per_tuple(),
            result.stats.matches,
            per.comp,
            per.mem,
            per.tlb,
            per.idle,
            image.tree_bytes / 1024,
        );
    }

    // Verify against the software tree.
    let (result, _) = run_btree(&tree, &probes, &WidxConfig::paper_default());
    let oracle: usize = probes.iter().filter(|p| tree.lookup(**p).is_some()).count();
    assert_eq!(result.matches.len(), oracle);
    println!("verified {oracle} matches against the software tree");
    let _ = offload_btree_probe; // lower-level entry point, see docs
}
