//! Run one DSS query's indexing phase on every engine: the OoO and
//! in-order cores, and Widx with 1, 2, and 4 walkers.
//!
//! ```text
//! cargo run --release --example dss_query [qry20]
//! ```

use widx_repro::accel::config::WidxConfig;
use widx_repro::accel::offload;
use widx_repro::sim::config::SystemConfig;
use widx_repro::sim::core::{run_inorder, run_ooo};
use widx_repro::sim::mem::{MemorySystem, RegionAllocator};
use widx_repro::workloads::profiles::QueryProfile;
use widx_repro::workloads::{memimg, trace};

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "qry20".to_string());
    let q = QueryProfile::all()
        .into_iter()
        .find(|q| q.name == which)
        .unwrap_or_else(|| panic!("unknown query `{which}`; try qry2..qry82"))
        .with_probes(4096);
    println!(
        "{} ({}): {} entries (~{} KB index), {} probes, {} hash, indexing = {:.0}% of query time",
        q.name,
        q.suite.name(),
        q.entries,
        q.index_bytes() / 1024,
        q.probes,
        match q.recipe {
            widx_repro::workloads::profiles::RecipeKind::Robust => "robust64",
            widx_repro::workloads::profiles::RecipeKind::Heavy => "heavy128",
        },
        q.index_fraction * 100.0
    );

    let (index, probes) = q.build();
    let sys = SystemConfig::default();
    let mut mem = MemorySystem::new(sys.clone());
    let mut alloc = RegionAllocator::new();
    let expected: u64 = probes
        .iter()
        .map(|p| index.lookup_all(*p).len() as u64)
        .sum();
    let image = memimg::materialize(&mut mem, &mut alloc, &index, &probes, q.layout, expected);
    memimg::warm(&mut mem, &image);

    let t = trace::probe_trace(&index, &image, &probes);
    let ooo = run_ooo(&sys.ooo, &t, &mut mem.clone(), 0);
    let ino = run_inorder(&sys.inorder, &t, &mut mem.clone(), 0);
    println!(
        "\nOoO baseline : {:>8.1} cycles/tuple",
        ooo.cycles_per_tuple()
    );
    println!(
        "in-order     : {:>8.1} cycles/tuple",
        ino.cycles_per_tuple()
    );

    for walkers in [1usize, 2, 4] {
        let mut m = mem.clone();
        let r = offload::offload_probe(
            &mut m,
            &index,
            &image,
            &probes,
            &WidxConfig::with_walkers(walkers),
        );
        let per = r.stats.walker_cycles_per_tuple();
        println!(
            "Widx {walkers}w      : {:>8.1} cycles/tuple ({:.2}x vs OoO)  \
             [comp {:.1} | mem {:.1} | tlb {:.1} | idle {:.1}]",
            r.stats.cycles_per_tuple(),
            ooo.cycles_per_tuple() / r.stats.cycles_per_tuple(),
            per.comp,
            per.mem,
            per.tlb,
            per.idle
        );
    }
}
