//! The network front-end end to end: build a two-tier service, put a
//! `widx-net` server in front of it, and drive a pipelined mixed
//! workload through `WidxClient` over loopback TCP — including an
//! out-of-order reap and a graceful two-stage shutdown.
//!
//! Run with: `cargo run --release --example net_server`

use std::sync::Arc;

use widx_repro::db::hash::HashRecipe;
use widx_repro::net::{NetConfig, WidxClient, WidxServer};
use widx_repro::serve::{ProbeService, Request, ServeConfig};
use widx_repro::workloads::datagen;

fn main() {
    // A primary-key build side: 64k unique keys, payload = row id,
    // served by both tiers (hash for points, B+-tree for ranges).
    let entries = 1 << 16;
    let pairs: Vec<(u64, u64)> = datagen::unique_shuffled_keys(7, entries)
        .into_iter()
        .enumerate()
        .map(|(row, key)| (key, row as u64))
        .collect();
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs,
        &ServeConfig::default().with_shards(4).with_inflight(8),
    ));

    // Bind an ephemeral loopback port; the event loop runs on its own
    // thread from here, blocking in the compat poller (epoll on Linux,
    // `poll(2)` elsewhere — set WIDX_POLLER=poll or use
    // `with_poller_backend` to force one) until sockets are ready or a
    // completion rings its wake handle. The burst below pipelines 10k
    // requests on one connection, so raise the per-connection in-flight
    // window past it (at the default 256, the excess would bounce back
    // as typed `Busy` error frames — that backpressure is a feature,
    // not an outage).
    let config = NetConfig::default().with_max_inflight(16 * 1024);
    let server =
        WidxServer::bind("127.0.0.1:0", Arc::clone(&service), config).expect("bind loopback");
    println!("serving on {}", server.local_addr());

    let mut client = WidxClient::connect(server.local_addr()).expect("connect");

    // Synchronous conveniences mirror the in-process service API.
    println!("lookup(12345) -> {:?}", client.lookup(12345).unwrap());
    println!(
        "range_scan(1000..1005) -> {:?}",
        client.range_scan(1000, 1005, usize::MAX).unwrap()
    );

    // The send/recv split pipelines a skewed burst without waiting —
    // the per-shard batchers fill their walker rings from one socket.
    let hot = datagen::zipf_keys(11, 10_000, entries as u64, 0.99);
    let ids: Vec<u64> = hot
        .iter()
        .map(|k| client.send(&Request::Lookup { key: *k }).expect("send"))
        .collect();
    // Reap in reverse: replies carry ids, so order is the client's
    // choice, not the server's.
    let hits = ids
        .into_iter()
        .rev()
        .filter(|id| client.recv(*id).expect("answered").match_count() > 0)
        .count();
    println!("burst: 10000 pipelined lookups, {hits} hits (reaped in reverse order)");

    // Graceful shutdown, outside in: the server drains every accepted
    // frame, then the service drains its queues behind a poison pill.
    let net = server.shutdown();
    let stats = Arc::try_unwrap(service)
        .ok()
        .expect("server released its handle")
        .shutdown()
        .with_net(net);
    println!(
        "\nnet tier: {} connection(s), {} frames in, {} frames out, {} busy, {} decode errors",
        stats.net.connections,
        stats.net.frames_in,
        stats.net.frames_out,
        stats.net.busy_rejects,
        stats.net.decode_errors,
    );
    println!(
        "service: {} keys probed, p50 {:.1} µs / p99 {:.1} µs over {} requests",
        stats.total_keys(),
        stats.latency.p50_ns as f64 / 1e3,
        stats.latency.p99_ns as f64 / 1e3,
        stats.latency.count,
    );
}
