//! Quickstart: build a hash index, offload a probe batch to Widx, and
//! compare against the out-of-order software baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use widx_repro::accel::config::WidxConfig;
use widx_repro::accel::offload;
use widx_repro::db::hash::HashRecipe;
use widx_repro::db::index::{HashIndex, NodeLayout};
use widx_repro::sim::config::SystemConfig;
use widx_repro::sim::core::run_ooo;
use widx_repro::sim::mem::{MemorySystem, RegionAllocator};
use widx_repro::workloads::{memimg, trace};

fn main() {
    // 1. A table of a million 8-byte keys, indexed with a robust hash.
    let entries = 1 << 17;
    let index = HashIndex::build(
        HashRecipe::robust64(),
        entries,
        (0..entries as u64).map(|k| (k * 3, k)), // key -> row id
    );
    println!(
        "built index: {} entries, {} buckets",
        index.len(),
        index.bucket_count()
    );

    // 2. Materialize the index + a probe batch into simulated memory.
    let probes: Vec<u64> = (0..4096u64)
        .map(|i| (i * 31) % (3 * entries as u64))
        .collect();
    let sys = SystemConfig::default(); // Table 2 parameters
    let mut mem = MemorySystem::new(sys.clone());
    let mut alloc = RegionAllocator::new();
    let expected: u64 = probes
        .iter()
        .map(|p| index.lookup_all(*p).len() as u64)
        .sum();
    let image = memimg::materialize(
        &mut mem,
        &mut alloc,
        &index,
        &probes,
        NodeLayout::direct8(),
        expected,
    );
    memimg::warm(&mut mem, &image);

    // 3. Offload to Widx with the paper's 4-walker design point.
    let mut widx_mem = mem.clone();
    let result = offload::offload_probe(
        &mut widx_mem,
        &index,
        &image,
        &probes,
        &WidxConfig::paper_default(),
    );
    println!(
        "Widx: {} tuples, {} matches, {} cycles ({:.1} cycles/tuple)",
        result.stats.tuples,
        result.stats.matches,
        result.stats.total_cycles,
        result.stats.cycles_per_tuple()
    );
    let per = result.stats.walker_cycles_per_tuple();
    println!(
        "walker breakdown per tuple: comp {:.1}, mem {:.1}, tlb {:.1}, idle {:.1}",
        per.comp, per.mem, per.tlb, per.idle
    );

    // 4. The OoO baseline runs the equivalent software loop.
    let t = trace::probe_trace(&index, &image, &probes);
    let baseline = run_ooo(&sys.ooo, &t, &mut mem, 0);
    println!(
        "OoO baseline: {:.1} cycles/tuple -> Widx speedup {:.2}x",
        baseline.cycles_per_tuple(),
        baseline.cycles_per_tuple() / result.stats.cycles_per_tuple()
    );

    // 5. Results are real bytes — verify against the index oracle.
    let expected_count: usize = probes.iter().map(|p| index.lookup_all(*p).len()).sum();
    assert_eq!(result.matches().len(), expected_count);
    println!(
        "verified {} matches against the software oracle",
        expected_count
    );
}
