//! Ordered range serving end to end: build both index tiers over one
//! table, stream `RangeScan` requests through the per-shard B+-tree
//! walkers, and read the telemetry — the ordered-path mirror of the
//! `probe_service` example.
//!
//! Run with: `cargo run --release --example range_scan`

use widx_repro::db::hash::HashRecipe;
use widx_repro::serve::{ProbeService, Request, Response, ServeConfig};
use widx_repro::workloads::datagen;

fn main() {
    // A primary-key build side: 64k unique keys, payload = row id.
    let entries = 1 << 16;
    let pairs: Vec<(u64, u64)> = datagen::unique_shuffled_keys(7, entries)
        .into_iter()
        .enumerate()
        .map(|(row, key)| (key, row as u64))
        .collect();

    let config = ServeConfig::default()
        .with_shards(4)
        .with_inflight(8)
        .with_batch_size(64)
        .with_fanout(16);
    let service = ProbeService::build_with_range(HashRecipe::robust64(), pairs, &config);
    let ordered = service.ordered().expect("built with a range tier");
    println!(
        "serving {} entries over {} ordered shards (boundaries: {:?})",
        ordered.len(),
        ordered.shard_count(),
        ordered.boundaries(),
    );

    // A skewed burst of bounded scans, pipelined without waiting — the
    // service batches the scans' cursors per ordered shard to fill the
    // walker rings, and scatters cross-boundary scans over neighbours.
    let ranges = datagen::range_queries(11, 10_000, entries as u64, 512, 0.99);
    let pendings: Vec<_> = ranges
        .iter()
        .map(|(lo, hi)| {
            service
                .submit(Request::RangeScan {
                    lo: *lo,
                    hi: *hi,
                    limit: 128,
                    desc: false,
                })
                .expect("running")
        })
        .collect();
    let mut returned = 0usize;
    for pending in pendings {
        returned += pending.wait().match_count();
    }
    println!("burst: 10000 pipelined scans, {returned} entries returned");

    // One typed request through the generic path: a cross-shard scan,
    // gathered back in key order with the limit applied at the seam.
    match service
        .submit(Request::RangeScan {
            lo: 1000,
            hi: 50_000,
            limit: 5,
            desc: false,
        })
        .expect("running")
        .wait()
    {
        Response::RangeScan { entries } => {
            println!("scan [1000, 50000] limit 5 -> {entries:?}");
            assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "key-ordered");
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Point and range tiers share the service: a lookup agrees with a
    // width-zero scan of the same key.
    let payloads = service.lookup(4242).expect("running");
    let scanned = service.range_scan(4242, 4242, usize::MAX).expect("running");
    assert_eq!(payloads.len(), scanned.len());
    println!("lookup(4242) == scan [4242, 4242]: {payloads:?}");

    // Drain-then-halt shutdown returns both tiers' telemetry.
    let stats = service.shutdown();
    println!(
        "\nserved {} scan cursors / {} entries in {:.1} ms ({:.2} Mentries/s wall)",
        stats.total_scan_cursors(),
        stats.total_scan_entries(),
        stats.wall.as_secs_f64() * 1e3,
        stats.scan_throughput() / 1e6,
    );
    for w in &stats.range_workers {
        println!(
            "  ordered shard {}: {:>6} cursors, {:>4} batches (mean {:>5.1}), occupancy {:>5.1}%",
            w.shard,
            w.keys,
            w.batches,
            w.mean_batch(),
            w.occupancy() * 100.0,
        );
    }
    println!(
        "  latency: p50 {:.1} µs, p99 {:.1} µs over {} requests",
        stats.latency.p50_ns as f64 / 1e3,
        stats.latency.p99_ns as f64 / 1e3,
        stats.latency.count,
    );
}
