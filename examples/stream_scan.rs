//! Streaming range replies end to end: a `widx-net` server over
//! loopback TCP, a chunk-streaming client, and reverse scans — long
//! scans whose first entries reach the client while the per-shard
//! walkers are still running, instead of buffering the whole reply
//! behind the slowest shard.
//!
//! Run with: `cargo run --release --example stream_scan`

use std::sync::Arc;
use std::time::Instant;

use widx_repro::db::hash::HashRecipe;
use widx_repro::net::{NetConfig, WidxClient, WidxServer};
use widx_repro::serve::{ProbeService, ServeConfig};

fn main() {
    // A primary-key build side: key k -> payload k*3.
    let entries = 1u64 << 17;
    let pairs: Vec<(u64, u64)> = (0..entries).map(|k| (k, k * 3)).collect();

    let config = ServeConfig::default()
        .with_shards(4)
        .with_inflight(8)
        .with_stream_chunk(512);
    let service = Arc::new(ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs,
        &config,
    ));
    let server = WidxServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind loopback");
    let mut client = WidxClient::connect(server.local_addr()).expect("connect");
    println!(
        "serving {entries} entries on {} (stream_chunk = 512)",
        server.local_addr()
    );

    // One long ascending scan, streamed: time-to-first-chunk vs the
    // buffered reply for the identical interval.
    let sent = Instant::now();
    let (first_chunk, streamed, total) = {
        let mut stream = client
            .range_stream(0, u64::MAX, usize::MAX, false)
            .expect("send stream");
        let first = stream.next_chunk().expect("stream").expect("chunks");
        let first_chunk = sent.elapsed();
        let mut total = first.len();
        for chunk in &mut stream {
            total += chunk.expect("stream survives").len();
        }
        (first_chunk, sent.elapsed(), total)
    };

    let sent = Instant::now();
    let buffered = client.range_scan(0, u64::MAX, usize::MAX).expect("scan");
    let buffered_in = sent.elapsed();
    assert_eq!(total, buffered.len());
    println!(
        "full scan ({total} entries): first chunk in {:.1} ms, stream done in {:.1} ms, \
         buffered reply in {:.1} ms",
        first_chunk.as_secs_f64() * 1e3,
        streamed.as_secs_f64() * 1e3,
        buffered_in.as_secs_f64() * 1e3,
    );

    // ORDER BY key DESC LIMIT 5, streamed through the same path: the
    // *largest* keys come back first, already limit-cut at the seam.
    let top = client
        .range_stream(1000, 100_000, 5, true)
        .expect("send stream")
        .collect_remaining()
        .expect("stream survives");
    println!("scan [1000, 100000] DESC limit 5 -> {top:?}");
    assert!(top.windows(2).all(|w| w[0].0 > w[1].0), "descending");
    assert_eq!(top[0], (100_000, 300_000));

    // Streams pipeline with point traffic on one connection: chunk
    // frames and lookup replies interleave; per-id routing sorts it out.
    let stream_id = client
        .send_range_stream(0, 50_000, usize::MAX, false)
        .expect("send stream");
    let payloads = client.lookup(777).expect("lookup mid-stream");
    assert_eq!(payloads, vec![777 * 3]);
    let mut streamed_entries = 0usize;
    while let Some(chunk) = client.recv_chunk(stream_id).expect("stream survives") {
        streamed_entries += chunk.len();
    }
    println!("lookup answered mid-stream; the stream still delivered {streamed_entries} entries");

    let net = server.shutdown();
    let stats = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown()
        .with_net(net);
    println!(
        "\nnet tier: {} frames in, {} frames out (chunks included), {} connections",
        stats.net.frames_in, stats.net.frames_out, stats.net.connections,
    );
}
