//! Re-derive the paper's Section 3.2 design conclusions from the
//! analytical model: how many walkers are worth building?
//!
//! ```text
//! cargo run --release --example analytical_model
//! ```

use widx_repro::model::{
    l1_pressure, mshr_demand, walker_utilization, walkers_per_mc, ModelParams,
};

fn main() {
    let p = ModelParams::default();

    println!("How many walkers can the hardware feed? (paper Section 3.2)\n");

    // L1 ports.
    let at = |ports: f64| {
        (1..=16)
            .take_while(|n| l1_pressure(&p, 0.0, f64::from(*n)) <= ports)
            .count()
    };
    println!(
        "L1 bandwidth : {} walkers on 1 port, {} on 2 ports (low LLC miss ratio)",
        at(1.0),
        at(2.0)
    );

    // MSHRs.
    let mshr_limit = (1..=16)
        .take_while(|n| mshr_demand(&p, f64::from(*n)) <= p.mshrs)
        .count();
    println!(
        "L1 MSHRs     : {} walkers with {} MSHRs",
        mshr_limit, p.mshrs
    );

    // Off-chip bandwidth.
    println!(
        "memory BW    : {:.1} walkers/MC at 10% LLC misses, {:.1} at 100%",
        walkers_per_mc(&p, 0.1),
        walkers_per_mc(&p, 1.0)
    );

    // Dispatcher sharing.
    println!("\nCan one dispatcher feed them? (Equation 6, 2 nodes/bucket)");
    for n in [2.0, 4.0, 8.0] {
        println!(
            "  {n:>2} walkers: utilization {:.0}% at 50% LLC misses",
            walker_utilization(&p, 0.5, 2.0, n) * 100.0
        );
    }

    println!(
        "\nconclusion: ~4 walkers per accelerator, one shared dispatcher — \
         the Widx design point the paper builds."
    );
}
