//! The probe service end to end: build a sharded index, serve a mixed
//! request stream through the walker pool, and read the telemetry.
//!
//! Run with: `cargo run --release --example probe_service`

use widx_repro::db::hash::HashRecipe;
use widx_repro::serve::{ProbeService, Request, Response, ServeConfig};
use widx_repro::workloads::datagen;

fn main() {
    // A primary-key build side: 64k unique keys, payload = row id.
    let entries = 1 << 16;
    let pairs: Vec<(u64, u64)> = datagen::unique_shuffled_keys(7, entries)
        .into_iter()
        .enumerate()
        .map(|(row, key)| (key, row as u64))
        .collect();

    let config = ServeConfig::default()
        .with_shards(4)
        .with_inflight(8)
        .with_batch_size(64);
    let service = ProbeService::build(HashRecipe::robust64(), pairs, &config);
    let sharded = service.sharded();
    println!(
        "serving {} entries over {} shards (sizes: {:?})",
        sharded.len(),
        sharded.shard_count(),
        (0..sharded.shard_count())
            .map(|s| sharded.read(s).len())
            .collect::<Vec<_>>(),
    );

    // A skewed burst of single-key lookups, pipelined without waiting —
    // the service batches them per shard to fill the AMAC rings.
    let hot = datagen::zipf_keys(11, 10_000, entries as u64, 0.99);
    let pendings: Vec<_> = hot
        .iter()
        .map(|k| {
            service
                .submit(Request::Lookup { key: *k })
                .expect("running")
        })
        .collect();
    let hits = pendings
        .into_iter()
        .map(widx_repro::serve::PendingResponse::wait)
        .filter(|r| r.match_count() > 0)
        .count();
    println!("burst: 10000 pipelined lookups, {hits} hits");

    // A positional index join: probe an outer column, get (row, payload).
    let outer = datagen::uniform_keys(13, 8, (entries * 2) as u64);
    let mut join = service.join_probe(&outer).expect("running");
    join.sort_unstable();
    println!(
        "join probe over {} rows -> {} pairs: {join:?}",
        outer.len(),
        join.len()
    );

    // One typed request through the generic path.
    match service
        .submit(Request::MultiLookup {
            keys: vec![1, 2, 3],
        })
        .expect("running")
        .wait()
    {
        Response::MultiLookup { matches } => println!("multi-lookup(1,2,3) -> {matches:?}"),
        other => panic!("unexpected response {other:?}"),
    }

    // Online writes ride the same shard queues: the shard's own worker
    // applies them at batch barriers, so reads in flight never see a
    // torn index.
    let fresh = (entries as u64) * 3;
    assert!(service.insert(fresh, 777).expect("running"));
    assert_eq!(service.lookup(fresh).expect("running"), vec![777]);
    assert!(service.update(fresh, 778).expect("running"));
    assert!(service.delete(fresh).expect("running"));
    assert!(
        !service.delete(fresh).expect("running"),
        "second delete misses"
    );
    println!("writes: insert/update/delete round-tripped through the shard queues");

    // Drain-then-halt shutdown returns the telemetry.
    let stats = service.shutdown();
    println!(
        "\nserved {} keys / {} matches in {:.1} ms ({:.2} Mkeys/s wall)",
        stats.total_keys(),
        stats.total_matches(),
        stats.wall.as_secs_f64() * 1e3,
        stats.wall_throughput() / 1e6,
    );
    for w in &stats.workers {
        println!(
            "  shard {}: {:>6} keys, {:>4} batches (mean {:>5.1}), occupancy {:>5.1}%",
            w.shard,
            w.keys,
            w.batches,
            w.mean_batch(),
            w.occupancy() * 100.0,
        );
    }
    println!(
        "  latency: p50 {:.1} µs, p99 {:.1} µs over {} requests",
        stats.latency.p50_ns as f64 / 1e3,
        stats.latency.p99_ns as f64 / 1e3,
        stats.latency.count,
    );
}
