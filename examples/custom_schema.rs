//! Program Widx for a custom schema, the Section 4.2 workflow: write
//! the walker in Widx assembly, verify it, ship all three programs
//! through an in-memory control block, and run the offload.
//!
//! ```text
//! cargo run --release --example custom_schema
//! ```

use widx_repro::accel::config::WidxConfig;
use widx_repro::accel::control::{load_control_block, write_control_block};
use widx_repro::accel::{offload, programs};
use widx_repro::db::hash::{HashRecipe, HashStep};
use widx_repro::db::index::{HashIndex, NodeLayout};
use widx_repro::isa::{asm, UnitClass};
use widx_repro::sim::config::SystemConfig;
use widx_repro::sim::mem::{MemorySystem, RegionAllocator};
use widx_repro::workloads::memimg;

fn main() {
    // A custom hash recipe for this schema (every step is one Widx
    // instruction; constants are pre-loaded registers).
    let recipe = HashRecipe::new(
        "custom",
        vec![
            HashStep::XorShr(17),
            HashStep::AddConst(0x2545_F491_4F6C_DD1D),
            HashStep::XorShl(13),
            HashStep::XorShr(7),
        ],
    );

    // Hand-written walker for the direct 8-byte layout, in Widx asm.
    let walker_src = "
; walker: (key, bucket addr) pairs in; (key, payload) matches out
.reg r20 = 0xffffffffffffffff    ; poison / NULL id
item:
    add r1, in, 0                ; key
    add r2, in, 0                ; bucket address
    cmp r9, r1, r20
    ble r9, 0, walk              ; not poison -> walk
    add out, r20, 0              ; forward poison
    add out, r0, 0
    halt
walk:
    ld.w r3, [r2+0]              ; header count
    ble r3, 0, item              ; empty bucket
    ld.d r4, [r2+8]              ; header key
    cmp r9, r4, r1
    ble r9, 0, hnext
    ld.d r5, [r2+16]             ; payload
    add out, r1, 0
    add out, r5, 0
hnext:
    ld.d r6, [r2+24]             ; first overflow node
chain:
    ble r6, 0, item              ; NULL -> next item
    ld.d r4, [r6+0]
    cmp r9, r4, r1
    ble r9, 0, cnext
    ld.d r5, [r6+8]
    add out, r1, 0
    add out, r5, 0
cnext:
    ld.d r6, [r6+16]
    ba chain
";
    let walker = asm::assemble(UnitClass::Walker, walker_src).expect("walker assembles");
    println!(
        "hand-written walker: {} instructions, verified for the W unit class",
        walker.len()
    );

    // Build + materialize a small workload.
    let index = HashIndex::build(recipe.clone(), 4096, (0..4000u64).map(|k| (k * 7, k)));
    let probes: Vec<u64> = (0..1000u64).map(|i| i * 7 * 4).collect();
    let mut mem = MemorySystem::new(SystemConfig::default());
    let mut alloc = RegionAllocator::new();
    let expected: u64 = probes
        .iter()
        .map(|p| index.lookup_all(*p).len() as u64)
        .sum();
    let image = memimg::materialize(
        &mut mem,
        &mut alloc,
        &index,
        &probes,
        NodeLayout::direct8(),
        expected,
    );

    // Generate the dispatcher/producer to match, swap in our walker,
    // and round-trip everything through a real control block in
    // simulated memory (Section 4.3's configuration interface).
    let cfg = WidxConfig::with_walkers(4);
    let mut set = programs::program_set(&recipe, &image, cfg.walkers, false);
    set.walker = walker;
    let (base, len) = write_control_block(
        &mut mem,
        &mut alloc,
        &[&set.dispatcher, &set.walker, &set.producer],
    );
    let loaded = load_control_block(&mut mem, base, 0).expect("control block loads");
    println!(
        "control block: {len} bytes at {base}, configuration loaded in {} cycles",
        loaded.ready_at
    );
    assert_eq!(
        loaded.programs[1], set.walker,
        "walker survives the control block"
    );

    // Run the offload with the custom program set.
    let mut widx = widx_repro::accel::widx::Widx::new(&set, &cfg, loaded.ready_at);
    let stats = widx.run(&mut mem);
    let oracle: usize = probes.iter().map(|p| index.lookup_all(*p).len()).sum();
    println!(
        "offload complete: {} tuples, {} matches (oracle {oracle}), {:.1} cycles/tuple",
        stats.tuples,
        stats.matches,
        stats.cycles_per_tuple()
    );
    assert_eq!(stats.matches as usize, oracle);
    let _ = offload::offload_probe; // see quickstart for the one-call path
}
