//! # widx-repro — facade crate
//!
//! Re-exports the whole Widx reproduction workspace under one roof. See
//! the repository `README.md` for a crate map, quickstart, and the
//! tier-1 verification command.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use widx_core as accel;
pub use widx_db as db;
pub use widx_energy as energy;
pub use widx_isa as isa;
pub use widx_model as model;
pub use widx_net as net;
pub use widx_obs as obs;
pub use widx_serve as serve;
pub use widx_sim as sim;
pub use widx_soft as soft;
pub use widx_workloads as workloads;
