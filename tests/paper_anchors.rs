//! Integration checks of the paper's qualitative claims — the "shape"
//! assertions DESIGN.md commits to. These run on reduced probe counts,
//! so thresholds are deliberately loose.

use widx_bench::runner::ProbeSetup;
use widx_core::config::WidxConfig;
use widx_energy::{figure11, PowerParams, Runtimes};
use widx_workloads::kernel::{KernelConfig, KernelSize};
use widx_workloads::profiles::{QueryProfile, Suite};

#[test]
fn widx4_beats_ooo_decisively_on_large_kernel() {
    let setup = ProbeSetup::kernel(&KernelConfig::new(KernelSize::Large).with_probes(1500));
    let ooo = setup.run_ooo();
    let (widx, _) = setup.run_widx(&WidxConfig::with_walkers(4));
    let speedup = ooo.cpt / widx.stats.cycles_per_tuple();
    assert!(
        speedup > 2.0,
        "Large-index 4-walker speedup should be >2x (paper ~4x), got {speedup:.2}"
    );
}

#[test]
fn one_walker_is_roughly_ooo_parity_on_small_kernel() {
    let setup = ProbeSetup::kernel(&KernelConfig::new(KernelSize::Small).with_probes(1500));
    let ooo = setup.run_ooo();
    let (widx, _) = setup.run_widx(&WidxConfig::with_walkers(1));
    let ratio = ooo.cpt / widx.stats.cycles_per_tuple();
    assert!(
        (0.7..=1.5).contains(&ratio),
        "1-walker Widx should be near OoO parity (paper ~1.05x), got {ratio:.2}"
    );
}

#[test]
fn small_kernel_walkers_go_idle_at_four() {
    // Figure 8a: with a cache-resident index the dispatcher cannot keep
    // four walkers busy.
    let setup = ProbeSetup::kernel(&KernelConfig::new(KernelSize::Small).with_probes(1500));
    let (widx, _) = setup.run_widx(&WidxConfig::with_walkers(4));
    let per = widx.stats.walker_cycles_per_tuple();
    assert!(
        per.idle > 0.2 * per.total(),
        "Small/4w should be dispatcher-bound (idle-heavy); breakdown {per:?}"
    );
}

#[test]
fn large_kernel_scales_nearly_linearly() {
    let setup = ProbeSetup::kernel(&KernelConfig::new(KernelSize::Large).with_probes(1500));
    let (w1, _) = setup.run_widx(&WidxConfig::with_walkers(1));
    let (w4, _) = setup.run_widx(&WidxConfig::with_walkers(4));
    let scaling = w1.stats.cycles_per_tuple() / w4.stats.cycles_per_tuple();
    assert!(
        scaling > 3.0,
        "memory-bound walkers should scale near-linearly 1->4, got {scaling:.2}x"
    );
}

#[test]
fn tpcds_indexes_probe_faster_than_tpch() {
    // Figure 9: TPC-DS per-column indexes are small, so cycles/tuple are
    // far below TPC-H's (the paper changes the y-axis scale).
    let h = ProbeSetup::profile(&QueryProfile::tpch().remove(4).with_probes(800)); // qry20
    let ds = ProbeSetup::profile(&QueryProfile::tpcds().remove(1).with_probes(800)); // qry37
    let (h4, _) = h.run_widx(&WidxConfig::paper_default());
    let (ds4, _) = ds.run_widx(&WidxConfig::paper_default());
    assert!(
        ds4.stats.cycles_per_tuple() * 1.5 < h4.stats.cycles_per_tuple(),
        "qry37 ({:.1}) should be much cheaper than qry20 ({:.1})",
        ds4.stats.cycles_per_tuple(),
        h4.stats.cycles_per_tuple()
    );
}

#[test]
fn l1_resident_query_hits_the_speedup_floor() {
    // The paper's minimum: 1.5x on TPC-DS qry37 (L1-resident index).
    let q = QueryProfile::tpcds().remove(1).with_probes(800);
    let setup = ProbeSetup::profile(&q);
    let ooo = setup.run_ooo();
    let (widx, _) = setup.run_widx(&WidxConfig::paper_default());
    let speedup = ooo.cpt / widx.stats.cycles_per_tuple();
    assert!(
        (1.0..=2.5).contains(&speedup),
        "L1-resident speedup should sit near the paper's 1.5x floor, got {speedup:.2}"
    );
}

#[test]
fn tlb_cycles_appear_only_on_memory_intensive_queries() {
    let big = ProbeSetup::profile(&QueryProfile::tpch().remove(4).with_probes(800)); // qry20
    let small = ProbeSetup::profile(&QueryProfile::tpcds().remove(1).with_probes(800)); // qry37
    let (b, _) = big.run_widx(&WidxConfig::with_walkers(1));
    let (s, _) = small.run_widx(&WidxConfig::with_walkers(1));
    assert!(b.stats.walker_mean().tlb > 0, "qry20 should see TLB stalls");
    assert_eq!(s.stats.walker_mean().tlb, 0, "qry37 is TLB-resident");
}

#[test]
fn energy_model_reproduces_paper_anchors_at_paper_ratios() {
    let fig = figure11(
        Runtimes {
            ooo: 1.0,
            inorder: 2.2,
            widx: 1.0 / 3.1,
        },
        &PowerParams::default(),
    );
    assert!((0.81..=0.85).contains(&fig.widx_energy_reduction()));
    assert!((15.0..=20.0).contains(&fig.widx_edp_gain_vs_ooo()));
}

#[test]
fn suites_have_six_simulated_queries_each() {
    let all = QueryProfile::all();
    assert_eq!(all.iter().filter(|q| q.suite == Suite::TpcH).count(), 6);
    assert_eq!(all.iter().filter(|q| q.suite == Suite::TpcDs).count(), 6);
}
