//! End-to-end integration: the full offload path — workload generation,
//! materialization, Widx execution, result read-back — checked against
//! software oracles across layouts, hash recipes, and walker counts.

use widx_repro::accel::config::WidxConfig;
use widx_repro::accel::offload::{offload_probe, offload_probe_coupled};
use widx_repro::db::hash::HashRecipe;
use widx_repro::db::index::{HashIndex, NodeLayout};
use widx_repro::sim::config::SystemConfig;
use widx_repro::sim::mem::{MemorySystem, RegionAllocator};
use widx_repro::workloads::kernel::{KernelConfig, KernelSize};
use widx_repro::workloads::memimg;
use widx_repro::workloads::profiles::QueryProfile;

fn oracle(index: &HashIndex, probes: &[u64]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = probes
        .iter()
        .flat_map(|p| index.lookup_all(*p).into_iter().map(move |v| (*p, v)))
        .collect();
    out.sort_unstable();
    out
}

fn offload_and_check(
    index: &HashIndex,
    probes: &[u64],
    layout: NodeLayout,
    config: &WidxConfig,
) -> widx_repro::accel::widx::WidxRunStats {
    let mut mem = MemorySystem::new(SystemConfig::default());
    let mut alloc = RegionAllocator::new();
    let expected: u64 = probes
        .iter()
        .map(|p| index.lookup_all(*p).len() as u64)
        .sum();
    let image = memimg::materialize(&mut mem, &mut alloc, index, probes, layout, expected);
    memimg::warm(&mut mem, &image);
    let r = offload_probe(&mut mem, index, &image, probes, config);
    let mut got = r.matches().to_vec();
    got.sort_unstable();
    assert_eq!(
        got,
        oracle(index, probes),
        "Widx output must equal the oracle"
    );
    r.stats
}

#[test]
fn kernel_small_all_walker_counts() {
    let (index, probes) = KernelConfig::new(KernelSize::Small)
        .with_probes(600)
        .build();
    for walkers in [1, 2, 4] {
        let stats = offload_and_check(
            &index,
            &probes,
            NodeLayout::kernel4(),
            &WidxConfig::with_walkers(walkers),
        );
        assert_eq!(stats.tuples, 600);
        assert_eq!(stats.matches, 600, "dense kernel keys always match");
    }
}

#[test]
fn kernel_medium_scales_with_walkers() {
    let (index, probes) = KernelConfig::new(KernelSize::Medium)
        .with_probes(800)
        .build();
    let one = offload_and_check(
        &index,
        &probes,
        NodeLayout::kernel4(),
        &WidxConfig::with_walkers(1),
    );
    let four = offload_and_check(
        &index,
        &probes,
        NodeLayout::kernel4(),
        &WidxConfig::with_walkers(4),
    );
    assert!(
        four.total_cycles * 2 < one.total_cycles,
        "4 walkers ({}) should be >2x faster than 1 ({})",
        four.total_cycles,
        one.total_cycles
    );
}

#[test]
fn dss_profile_indirect_layout_round_trips() {
    let q = QueryProfile::tpcds().remove(0).with_probes(700);
    let (index, probes) = q.build();
    let stats = offload_and_check(&index, &probes, q.layout, &WidxConfig::paper_default());
    assert_eq!(stats.tuples, 700);
    // Some probes are misses by construction.
    assert!(stats.matches < 700);
}

#[test]
fn coupled_and_decoupled_agree_on_results() {
    let index = HashIndex::build(HashRecipe::robust64(), 512, (0..400u64).map(|k| (k, k + 1)));
    let probes: Vec<u64> = (0..300u64).map(|i| i * 2).collect();
    let mut mem = MemorySystem::new(SystemConfig::default());
    let mut alloc = RegionAllocator::new();
    let expected: u64 = probes
        .iter()
        .map(|p| index.lookup_all(*p).len() as u64)
        .sum();
    let image = memimg::materialize(
        &mut mem,
        &mut alloc,
        &index,
        &probes,
        NodeLayout::direct8(),
        expected,
    );
    let cfg = WidxConfig::with_walkers(2);
    let mut mem_a = mem.clone();
    let dec = offload_probe(&mut mem_a, &index, &image, &probes, &cfg);
    let mut mem_b = mem.clone();
    let cou = offload_probe_coupled(&mut mem_b, &index, &image, &probes, &cfg);
    let mut a = dec.matches().to_vec();
    let mut b = cou.matches().to_vec();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn llc_side_placement_round_trips() {
    use widx_repro::accel::placement::Placement;
    let (index, probes) = KernelConfig::new(KernelSize::Small)
        .with_probes(400)
        .build();
    let stats = offload_and_check(
        &index,
        &probes,
        NodeLayout::kernel4(),
        &WidxConfig::with_walkers(2).with_placement(Placement::LlcSide),
    );
    assert_eq!(stats.tuples, 400);
}

#[test]
fn touch_ahead_round_trips() {
    let (index, probes) = KernelConfig::new(KernelSize::Small)
        .with_probes(400)
        .build();
    let stats = offload_and_check(
        &index,
        &probes,
        NodeLayout::kernel4(),
        &WidxConfig::with_walkers(4).with_touch_ahead(),
    );
    assert_eq!(stats.matches, 400);
}
