//! Cross-engine consistency: the software engine, the software walkers,
//! the baseline-core traces, and the Widx accelerator all describe the
//! same computation — their results and work metrics must agree.

use widx_repro::accel::config::WidxConfig;
use widx_repro::accel::offload::offload_probe;
use widx_repro::db::hash::HashRecipe;
use widx_repro::db::index::{BTreeIndex, HashIndex, NodeLayout};
use widx_repro::sim::config::SystemConfig;
use widx_repro::sim::core::{run_inorder, run_ooo};
use widx_repro::sim::mem::{MemorySystem, RegionAllocator};
use widx_repro::sim::trace::UopKind;
use widx_repro::soft::{
    probe_amac, probe_group_prefetch, probe_scalar, scan_btree_amac, scan_btree_group,
    scan_btree_scalar, ScanRange,
};
use widx_repro::workloads::{datagen, memimg, trace};

struct World {
    index: HashIndex,
    probes: Vec<u64>,
    mem: MemorySystem,
    image: widx_repro::workloads::memimg::IndexImage,
}

fn world(layout: NodeLayout) -> World {
    let entries = 2000usize;
    let keys = datagen::unique_shuffled_keys(31, entries);
    let index = HashIndex::build(
        HashRecipe::robust64(),
        1024,
        keys.iter().enumerate().map(|(r, k)| (*k, r as u64)),
    );
    let probes = datagen::uniform_keys(32, 500, (entries * 2) as u64);
    let mut mem = MemorySystem::new(SystemConfig::default());
    let mut alloc = RegionAllocator::new();
    let expected: u64 = probes
        .iter()
        .map(|p| index.lookup_all(*p).len() as u64)
        .sum();
    let image = memimg::materialize(&mut mem, &mut alloc, &index, &probes, layout, expected);
    World {
        index,
        probes,
        mem,
        image,
    }
}

#[test]
fn all_engines_agree_on_matches() {
    let w = world(NodeLayout::direct8());

    // Software oracles.
    let mut scalar = Vec::new();
    probe_scalar(&w.index, &w.probes, &mut scalar);
    let mut amac = Vec::new();
    probe_amac(&w.index, &w.probes, 8, &mut amac);
    let mut gp = Vec::new();
    probe_group_prefetch(&w.index, &w.probes, 8, &mut gp);

    // Widx.
    let mut mem = w.mem.clone();
    let widx = offload_probe(
        &mut mem,
        &w.index,
        &w.image,
        &w.probes,
        &WidxConfig::paper_default(),
    );

    let mut a = scalar.clone();
    let mut b = amac;
    let mut c = gp;
    let mut d = widx.matches().to_vec();
    a.sort_unstable();
    b.sort_unstable();
    c.sort_unstable();
    d.sort_unstable();
    assert_eq!(a, b, "scalar vs AMAC");
    assert_eq!(a, c, "scalar vs group prefetch");
    assert_eq!(a, d, "software vs Widx");
}

#[test]
fn trace_stores_equal_match_count() {
    // The baseline trace emits exactly one store per match, so the trace
    // and the accelerator agree on output volume.
    let w = world(NodeLayout::indirect8());
    let t = trace::probe_trace(&w.index, &w.image, &w.probes);
    let stores = t
        .uops()
        .iter()
        .filter(|u| matches!(u.kind, UopKind::Store { .. }))
        .count();
    let mut scalar = Vec::new();
    probe_scalar(&w.index, &w.probes, &mut scalar);
    assert_eq!(stores, scalar.len());
}

#[test]
fn both_cores_replay_the_same_trace() {
    let w = world(NodeLayout::direct8());
    let t = trace::probe_trace(&w.index, &w.image, &w.probes);
    let sys = SystemConfig::default();
    let ooo = run_ooo(&sys.ooo, &t, &mut w.mem.clone(), 0);
    let ino = run_inorder(&sys.inorder, &t, &mut w.mem.clone(), 0);
    assert_eq!(ooo.retired, ino.retired);
    assert_eq!(ooo.tuples, 500);
    assert!(ino.cycles >= ooo.cycles, "in-order never beats the OoO");
}

/// The ordered-index counterpart of `all_engines_agree_on_matches`:
/// the scalar, group-prefetch, and AMAC B+-tree range walkers emit the
/// same per-scan key sets, in the same key order, as the serial
/// `BTreeIndex::range_scan` oracle — duplicates, limits, and
/// out-of-domain ranges included.
#[test]
fn btree_range_walkers_agree_on_key_sets() {
    // Duplicate-heavy build side: ~2000 entries over ~700 distinct keys.
    let keys = datagen::uniform_keys(41, 2000, 1400);
    let tree = BTreeIndex::build(8, keys.iter().enumerate().map(|(r, k)| (*k, r as u64)));
    let scans: Vec<ScanRange> = (0..60u64)
        .map(|i| match i % 4 {
            0 => ScanRange::new(i * 23, i * 23 + 300),
            1 => ScanRange::new(i * 23, i * 23 + 300).with_limit(i as usize),
            2 => ScanRange::new(i, i),           // point-sized
            _ => ScanRange::new(1200 + i, 5000), // tail / out of domain
        })
        .collect();

    /// An emit sink shared by all three engine invocations.
    type Emit<'a> = &'a mut dyn FnMut(u32, u64, u64);
    let collect = |run: &dyn Fn(Emit)| -> Vec<Vec<(u64, u64)>> {
        let mut per_scan = vec![Vec::new(); scans.len()];
        run(&mut |tag, key, payload| per_scan[tag as usize].push((key, payload)));
        per_scan
    };
    let scalar = collect(&|emit| {
        scan_btree_scalar(&tree, &scans, &mut |a, b, c| emit(a, b, c));
    });
    let grouped = collect(&|emit| {
        scan_btree_group(&tree, &scans, 8, &mut |a, b, c| emit(a, b, c));
    });
    let amac = collect(&|emit| {
        scan_btree_amac(&tree, &scans, 8, &mut |a, b, c| emit(a, b, c));
    });

    let oracle: Vec<Vec<(u64, u64)>> = scans
        .iter()
        .map(|r| tree.range_scan(r.lo, r.hi, r.limit))
        .collect();
    assert_eq!(scalar, oracle, "scalar walker vs serial oracle");
    assert_eq!(grouped, oracle, "group-prefetch walker vs serial oracle");
    assert_eq!(amac, oracle, "AMAC walker vs serial oracle");
}

#[test]
fn deterministic_across_runs() {
    let w1 = world(NodeLayout::direct8());
    let w2 = world(NodeLayout::direct8());
    let mut m1 = w1.mem.clone();
    let mut m2 = w2.mem.clone();
    let r1 = offload_probe(
        &mut m1,
        &w1.index,
        &w1.image,
        &w1.probes,
        &WidxConfig::with_walkers(2),
    );
    let r2 = offload_probe(
        &mut m2,
        &w2.index,
        &w2.image,
        &w2.probes,
        &WidxConfig::with_walkers(2),
    );
    assert_eq!(
        r1.stats.total_cycles, r2.stats.total_cycles,
        "bit-stable simulation"
    );
    assert_eq!(r1.matches(), r2.matches());
}
