//! Epoch-reclamation stress: a writer churns B+-tree leaf splits and
//! merges while resumable range cursors stream chunks on other threads.
//!
//! The contract under test (ISSUE satellite: write-path stress):
//!
//! * **no torn reads** — every chunk a cursor emits contains exactly
//!   the stable keys it should, in order, even though the leaf arena is
//!   being split, merged, retired, and reused underneath the saved
//!   cursor hints;
//! * **quiescent reclamation** — once writers and readers stop, one
//!   epoch advance plus a reclaim drains the retired-node count to
//!   zero (`widx_epoch_retired` would read 0, `widx_epoch_reclaimed`
//!   the total churn).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;

use widx_db::epoch::EpochDomain;
use widx_db::index::BTreeIndex;
use widx_soft::{ResumableScan, ScanRange};

/// Keys the readers scan; the writer never touches this range.
const STABLE_LO: u64 = 1_000_000;
const STABLE_HI: u64 = 1_000_499;

fn stable_entries() -> Vec<(u64, u64)> {
    (STABLE_LO..=STABLE_HI).map(|k| (k, k * 7)).collect()
}

#[test]
fn cursors_stream_unharmed_while_writer_churns_and_epochs_reclaim() {
    let domain = EpochDomain::new();
    let mut tree = BTreeIndex::build(4, stable_entries());
    tree.set_domain(Arc::clone(&domain));
    // Seed some churn-range keys so the first deletes hit.
    for k in 0..2000u64 {
        tree.insert(k, k);
    }
    let tree = Arc::new(RwLock::new(tree));
    let stop = Arc::new(AtomicBool::new(false));

    // Writer: bursts of inserts (forcing leaf splits) and deletes
    // (forcing merges and retirements), an epoch advance after every
    // burst, and a reclaim pass — the same rhythm the serving tier's
    // shard worker uses at batch barriers.
    let writer = {
        let tree = Arc::clone(&tree);
        let domain = Arc::clone(&domain);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                {
                    let mut t = tree.write().unwrap();
                    for i in 0..64u64 {
                        t.insert((round * 64 + i) % 5000, round);
                    }
                    for i in 0..48u64 {
                        t.delete((round * 37 + i * 3) % 5000);
                    }
                }
                domain.advance();
                {
                    let mut t = tree.write().unwrap();
                    t.reclaim();
                }
                round += 1;
                thread::yield_now();
            }
            round
        })
    };

    // Readers: repeated full scans of the stable range, chunk by
    // chunk, pinning an epoch and taking the read lock per chunk. The
    // cursor's saved (leaf, slot, version) hints go stale whenever the
    // writer splits or merges nearby leaves; resume must still produce
    // the exact stable multiset every time.
    let mut readers = Vec::new();
    for desc in [false, true] {
        let tree = Arc::clone(&tree);
        let domain = Arc::clone(&domain);
        readers.push(thread::spawn(move || {
            let handle = domain.register();
            let mut want = stable_entries();
            if desc {
                want.reverse();
            }
            let mut redescents = 0u64;
            for _ in 0..60 {
                let range = if desc {
                    ScanRange::new(STABLE_LO, STABLE_HI).descending()
                } else {
                    ScanRange::new(STABLE_LO, STABLE_HI)
                };
                let mut cursor = ResumableScan::new(range);
                let mut out = Vec::new();
                while !cursor.is_done() {
                    let pin = handle.pin();
                    let t = tree.read().unwrap();
                    cursor.next_chunk(&t, 32, &mut out);
                    drop(t);
                    drop(pin);
                    thread::yield_now();
                }
                assert_eq!(out, want, "torn or lost read (desc={desc})");
                redescents += cursor.redescents();
            }
            redescents
        }));
    }

    let mut total_redescents = 0u64;
    for r in readers {
        total_redescents += r.join().expect("reader panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let rounds = writer.join().expect("writer panicked");
    assert!(rounds > 0, "writer made progress");

    // Quiescence: everything retired during the churn becomes
    // reclaimable after one advance, and the gauge drains to zero.
    domain.advance();
    let mut t = tree.write().unwrap();
    t.reclaim();
    assert_eq!(domain.retired(), 0, "retired gauge drains at quiescence");
    assert!(domain.reclaimed() > 0, "churn actually retired nodes");
    assert_eq!(t.retired_nodes(), 0);
    // The churn was real enough to invalidate at least one saved hint
    // across 120 scans, or the tree barely moved — either way the
    // stable range survived; record the count for flake forensics.
    eprintln!(
        "epoch stress: {} writer rounds, {} reclaimed, {} re-descents",
        rounds,
        domain.reclaimed(),
        total_redescents
    );
}

#[test]
fn pinned_cursor_blocks_reclaim_until_released() {
    let domain = EpochDomain::new();
    let mut tree = BTreeIndex::build(4, (0..256u64).map(|k| (k, k)));
    tree.set_domain(Arc::clone(&domain));
    let handle = domain.register();

    // A cursor parks mid-scan with an epoch pinned.
    let pin = handle.pin();
    let mut cursor = ResumableScan::new(ScanRange::new(0, u64::MAX));
    let mut out = Vec::new();
    cursor.next_chunk(&tree, 10, &mut out);

    // The writer deletes enough to retire leaves and advances.
    for k in 64..192u64 {
        tree.delete(k);
    }
    domain.advance();
    assert!(domain.retired() > 0);
    assert_eq!(tree.reclaim(), 0, "pin holds every retirement");

    // Release the pin: everything drains.
    drop(pin);
    let retired = domain.retired();
    assert_eq!(tree.reclaim() as u64, retired);
    assert_eq!(domain.retired(), 0);

    // The parked cursor resumes (re-descending if its leaf changed)
    // and still sees every surviving key exactly once.
    while !cursor.is_done() {
        let _pin = handle.pin();
        cursor.next_chunk(&tree, 50, &mut out);
    }
    let survivors: Vec<(u64, u64)> = out
        .iter()
        .copied()
        .filter(|(k, _)| !(64..192).contains(k))
        .collect();
    assert_eq!(
        survivors,
        (0..64u64)
            .chain(192..256)
            .map(|k| (k, k))
            .collect::<Vec<_>>()
    );
}
