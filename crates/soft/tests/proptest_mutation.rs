//! Property tests for the walker engines over *mutating* indexes: after
//! arbitrary rounds of interleaved inserts, deletes, and updates — with
//! epoch advances and reclamation between rounds so retired slots get
//! reused — all three hash-probe engines and all three B+-tree scan
//! engines must answer exactly like a serial mutable oracle.
//!
//! This is the soft-tier half of the online-writes guarantee: the
//! frozen-build equivalence suite (`proptest_equivalence`,
//! `proptest_btree`) pins the engines against each other on static
//! indexes; this suite pins them against ground truth as the index
//! churns underneath.

use std::collections::{BTreeMap, HashMap};

use proptest::prelude::*;
use widx_db::hash::HashRecipe;
use widx_db::index::{BTreeIndex, HashIndex};
use widx_soft::{
    probe_amac, probe_group_prefetch, probe_scalar, scan_btree_amac, scan_btree_group,
    scan_btree_scalar, ScanRange,
};

/// One mutation: `op % 3` selects insert / delete / update.
type Mutation = (u8, u64, u64);

/// `(scan index, key, payload)` rows as the scan engines emit them.
type Rows = Vec<(u32, u64, u64)>;

fn apply_hash(index: &mut HashIndex, oracle: &mut HashMap<u64, Vec<u64>>, muts: &[Mutation]) {
    for (op, key, payload) in muts {
        let (op, key, payload) = (*op % 3, *key, *payload);
        match op {
            0 => {
                index.insert(key, payload);
                oracle.entry(key).or_default().push(payload);
            }
            1 => {
                let removed = index.delete(key);
                let expected = oracle.remove(&key).map_or(0, |v| v.len());
                assert_eq!(removed, expected, "delete count for key {key}");
            }
            _ => {
                let applied = index.update(key, payload);
                let expected = oracle.contains_key(&key);
                assert_eq!(applied, expected, "update hit for key {key}");
                if expected {
                    oracle.insert(key, vec![payload]);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Scalar, AMAC, and group-prefetch probes agree with a mutable
    /// `HashMap` oracle across mutation rounds, including after epoch
    /// reclamation has recycled pool slots into fresh inserts.
    #[test]
    fn hash_engines_track_mutations(
        seed_pairs in prop::collection::vec((0u64..80, any::<u64>()), 0..150),
        rounds in prop::collection::vec(
            (
                prop::collection::vec((0u8..3, 0u64..80, any::<u64>()), 0..60),
                prop::collection::vec(0u64..100, 0..60),
            ),
            1..6,
        ),
        inflight in 1usize..16,
        group in 1usize..32,
        buckets in 1usize..64,
    ) {
        let mut index = HashIndex::build(
            HashRecipe::robust64(),
            buckets,
            seed_pairs.iter().copied(),
        );
        let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
        for (key, payload) in &seed_pairs {
            oracle.entry(*key).or_default().push(*payload);
        }
        for (muts, probes) in &rounds {
            apply_hash(&mut index, &mut oracle, muts);

            let mut expected: Vec<(u64, u64)> = probes
                .iter()
                .flat_map(|k| {
                    oracle
                        .get(k)
                        .into_iter()
                        .flatten()
                        .map(move |p| (*k, *p))
                })
                .collect();
            expected.sort_unstable();

            let (mut scalar, mut amac, mut gp) = (Vec::new(), Vec::new(), Vec::new());
            probe_scalar(&index, probes, &mut scalar);
            probe_amac(&index, probes, inflight, &mut amac);
            probe_group_prefetch(&index, probes, group, &mut gp);
            scalar.sort_unstable();
            amac.sort_unstable();
            gp.sort_unstable();
            prop_assert_eq!(&scalar, &expected);
            prop_assert_eq!(&amac, &expected);
            prop_assert_eq!(&gp, &expected);

            // Recycle retired slots so later rounds insert into reused
            // pool nodes — the unpinned fast path.
            index.domain().advance();
            index.reclaim();
            prop_assert_eq!(index.retired_nodes(), 0, "no pins: reclaim drains");
        }
        prop_assert_eq!(
            index.len(),
            oracle.values().map(Vec::len).sum::<usize>(),
            "entry count stays in lockstep"
        );
    }

    /// The three B+-tree scan engines agree with a mutable `BTreeMap`
    /// oracle across mutation rounds, for ascending and descending
    /// ranges with and without limits.
    #[test]
    fn btree_engines_track_mutations(
        seed_pairs in prop::collection::vec((0u64..120, any::<u64>()), 0..150),
        rounds in prop::collection::vec(
            (
                prop::collection::vec((0u8..3, 0u64..120, any::<u64>()), 0..60),
                prop::collection::vec((0u64..130, 0u64..40, 0usize..20, any::<bool>()), 0..20),
            ),
            1..5,
        ),
        fanout in 4usize..12,
        inflight in 1usize..8,
        group in 1usize..8,
    ) {
        let mut tree = BTreeIndex::build(fanout, seed_pairs.iter().copied());
        let mut oracle: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (key, payload) in &seed_pairs {
            oracle.entry(*key).or_default().push(*payload);
        }
        for (muts, scan_specs) in &rounds {
            for (op, key, payload) in muts {
                let (op, key, payload) = (*op % 3, *key, *payload);
                match op {
                    0 => {
                        tree.insert(key, payload);
                        oracle.entry(key).or_default().push(payload);
                    }
                    1 => {
                        let removed = tree.delete(key);
                        let expected = oracle.remove(&key).map_or(0, |v| v.len());
                        prop_assert_eq!(removed, expected);
                    }
                    _ => {
                        let applied = tree.update(key, payload);
                        prop_assert_eq!(applied, oracle.contains_key(&key));
                        if applied {
                            oracle.insert(key, vec![payload]);
                        }
                    }
                }
            }

            let scans: Vec<ScanRange> = scan_specs
                .iter()
                .map(|(lo, span, limit, desc)| {
                    let mut range = ScanRange::new(*lo, lo + span);
                    if *limit > 0 {
                        range = range.with_limit(*limit);
                    }
                    if *desc {
                        range = range.descending();
                    }
                    range
                })
                .collect();
            let mut expected: Rows = Vec::new();
            for (i, (lo, span, limit, desc)) in scan_specs.iter().enumerate() {
                let limit = if *limit > 0 { *limit } else { usize::MAX };
                let rows = oracle
                    .range(*lo..=lo + span)
                    .flat_map(|(k, ps)| ps.iter().map(move |p| (*k, *p)));
                let rows: Vec<(u64, u64)> = if *desc {
                    // Descending keeps the *largest* keys under limit,
                    // with duplicates in reverse arrival order.
                    rows.collect::<Vec<_>>().into_iter().rev().take(limit).collect()
                } else {
                    rows.take(limit).collect()
                };
                expected.extend(rows.into_iter().map(|(k, p)| (i as u32, k, p)));
            }
            expected.sort_unstable();

            let collect = |emit: &mut dyn FnMut(&mut Rows)| {
                let mut out = Vec::new();
                emit(&mut out);
                out.sort_unstable();
                out
            };
            let scalar = collect(&mut |out| {
                scan_btree_scalar(&tree, &scans, &mut |tag, k, p| out.push((tag, k, p)));
            });
            let amac = collect(&mut |out| {
                scan_btree_amac(&tree, &scans, inflight, &mut |tag, k, p| {
                    out.push((tag, k, p));
                });
            });
            let gp = collect(&mut |out| {
                scan_btree_group(&tree, &scans, group, &mut |tag, k, p| {
                    out.push((tag, k, p));
                });
            });
            prop_assert_eq!(&scalar, &expected);
            prop_assert_eq!(&amac, &expected);
            prop_assert_eq!(&gp, &expected);

            tree.domain().advance();
            tree.reclaim();
        }
        prop_assert_eq!(
            tree.len(),
            oracle.values().map(Vec::len).sum::<usize>(),
            "entry count stays in lockstep"
        );
    }
}
