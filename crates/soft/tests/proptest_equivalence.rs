//! Property test: all probe strategies agree on arbitrary workloads.

use proptest::prelude::*;
use widx_db::hash::HashRecipe;
use widx_db::index::HashIndex;
use widx_soft::{probe_amac, probe_group_prefetch, probe_scalar};

proptest! {
    #[test]
    fn all_strategies_agree(
        pairs in prop::collection::vec((0u64..200, any::<u64>()), 0..300),
        probes in prop::collection::vec(0u64..250, 0..200),
        inflight in 1usize..16,
        group in 1usize..32,
        buckets in 1usize..64,
    ) {
        let index = HashIndex::build(HashRecipe::robust64(), buckets, pairs);
        let mut scalar = Vec::new();
        let mut amac = Vec::new();
        let mut gp = Vec::new();
        probe_scalar(&index, &probes, &mut scalar);
        probe_amac(&index, &probes, inflight, &mut amac);
        probe_group_prefetch(&index, &probes, group, &mut gp);
        scalar.sort_unstable();
        amac.sort_unstable();
        gp.sort_unstable();
        prop_assert_eq!(&scalar, &amac);
        prop_assert_eq!(&scalar, &gp);
    }
}
