//! Cross-engine [`WalkCounters`] parity: the scalar, group-prefetch,
//! and AMAC engines traverse the same nodes for the same workload, so
//! their node-visit counts, deepest-chain depths, and emitted matches
//! must be identical — only the *schedule* (rounds/occupancy) and the
//! prefetch discipline may differ. This is the invariant that lets the
//! profiling layer compare MLP across engines: the work is constant,
//! only the overlap changes.

use proptest::prelude::*;
use widx_db::hash::HashRecipe;
use widx_db::index::{BTreeIndex, HashIndex};
use widx_obs::WalkCounters;
use widx_soft::{
    probe_amac, probe_group_prefetch, probe_scalar, scan_btree_amac, scan_btree_group,
    scan_btree_scalar, ScanRange,
};

/// Asserts the work-side counter parity contract between the serial
/// baseline and an interleaved engine.
fn assert_work_parity(name: &str, scalar: &WalkCounters, other: &WalkCounters) {
    assert_eq!(other.nodes, scalar.nodes, "{name}: node visits");
    assert_eq!(other.max_chain, scalar.max_chain, "{name}: deepest chain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hash probing: identical node visits and matches across all three
    /// engines; group and AMAC issue the same prefetches (one per node
    /// they will visit); the serial baseline issues none.
    #[test]
    fn hash_walkers_report_identical_work(
        pairs in prop::collection::vec((0u64..120, any::<u64>()), 0..400),
        probes in prop::collection::vec(0u64..150, 0..300),
        buckets in 1usize..64,
        group in 1usize..24,
        inflight in 1usize..24,
    ) {
        let index = HashIndex::build(HashRecipe::robust64(), buckets, pairs);

        let mut scalar_out = Vec::new();
        let sc = probe_scalar(&index, &probes, &mut scalar_out);
        let mut group_out = Vec::new();
        let gc = probe_group_prefetch(&index, &probes, group, &mut group_out);
        let mut amac_out = Vec::new();
        let ac = probe_amac(&index, &probes, inflight, &mut amac_out);

        scalar_out.sort_unstable();
        group_out.sort_unstable();
        amac_out.sort_unstable();
        prop_assert_eq!(&scalar_out, &group_out, "group matches");
        prop_assert_eq!(&scalar_out, &amac_out, "AMAC matches");

        assert_work_parity("group", &sc, &gc);
        assert_work_parity("amac", &sc, &ac);
        prop_assert_eq!(gc.prefetches, ac.prefetches, "same prefetch count");
        prop_assert_eq!(sc.prefetches, 0u64, "baseline never prefetches");

        // The serial loop keeps exactly one probe in flight.
        prop_assert_eq!(sc.rounds, sc.nodes);
        prop_assert_eq!(sc.occupancy, sc.nodes);
        // Interleaving never *adds* work: total slot-rounds are bounded
        // by the node visits actually performed.
        prop_assert_eq!(ac.occupancy, ac.nodes, "AMAC occupancy counts live visits");
    }

    /// B+-tree range scans: identical leaf-and-inner visit counts and
    /// per-scan results across the three walkers, same prefetch count
    /// for the two interleaved ones.
    #[test]
    fn btree_walkers_report_identical_work(
        entries in prop::collection::vec(0u64..400, 0..300),
        ranges in prop::collection::vec(
            (0u64..420, 0u64..420, 0usize..40, any::<bool>()),
            0..60,
        ),
        fanout in 2usize..16,
        group in 1usize..12,
        inflight in 1usize..12,
    ) {
        let tree = BTreeIndex::build(fanout, entries.iter().enumerate().map(|(r, k)| (*k, r as u64)));
        let scans: Vec<ScanRange> = ranges
            .iter()
            .map(|&(lo, hi, limit, desc)| {
                let r = ScanRange::new(lo, hi).with_limit(limit);
                if desc { r.descending() } else { r }
            })
            .collect();

        #[allow(clippy::type_complexity)]
        let collect = |run: &mut dyn FnMut(&mut dyn FnMut(u32, u64, u64)) -> WalkCounters| {
            let mut per_scan = vec![Vec::new(); scans.len()];
            let counters = run(&mut |tag, key, payload| per_scan[tag as usize].push((key, payload)));
            (per_scan, counters)
        };
        let (scalar_out, sc) =
            collect(&mut |emit| scan_btree_scalar(&tree, &scans, &mut |a, b, c| emit(a, b, c)));
        let (group_out, gc) =
            collect(&mut |emit| scan_btree_group(&tree, &scans, group, &mut |a, b, c| emit(a, b, c)));
        let (amac_out, ac) =
            collect(&mut |emit| scan_btree_amac(&tree, &scans, inflight, &mut |a, b, c| emit(a, b, c)));

        prop_assert_eq!(&scalar_out, &group_out, "group scan results");
        prop_assert_eq!(&scalar_out, &amac_out, "AMAC scan results");

        assert_work_parity("group", &sc, &gc);
        assert_work_parity("amac", &sc, &ac);
        prop_assert_eq!(gc.prefetches, ac.prefetches, "same prefetch count");
        prop_assert_eq!(sc.prefetches, 0u64, "baseline never prefetches");
        prop_assert_eq!(sc.rounds, sc.nodes);
        prop_assert_eq!(sc.occupancy, sc.nodes);
        prop_assert_eq!(ac.occupancy, ac.nodes, "AMAC occupancy counts live visits");
    }
}
