//! AMAC-style interleaved probing: hand-rolled coroutine state machines.
//!
//! Asynchronous memory-access chaining (Kocberber et al.'s own software
//! follow-up to Widx) keeps `inflight` probes in distinct states of
//! their traversal. When a probe is about to dereference a node that is
//! probably not cached, it issues a prefetch and *yields*; by the time
//! the round-robin scheduler returns to it, the line has (hopefully)
//! arrived. This is exactly the inter-key parallelism the paper's
//! hardware walkers exploit — `inflight` plays the role of the walker
//! count, bounded in practice by the same MSHR limits the paper's
//! Section 3.2 model identifies.
//!
//! Two entry points:
//!
//! * [`probe_amac`] — the classic one-shot loop over a key slice;
//! * [`AmacWalker`] — a *resumable* ring of probe state machines that a
//!   serving layer can [`feed`](AmacWalker::feed) keys into one at a
//!   time (keeping earlier probes in flight while later requests are
//!   still being dequeued) and [`drain`](AmacWalker::drain) at batch
//!   boundaries. Each key carries a caller-chosen `tag`, so matches can
//!   be attributed back to the originating request even when the same
//!   key value appears in several concurrently batched requests.

use widx_db::index::{Bucket, HashIndex, Node, NONE};
use widx_obs::WalkCounters;

use crate::prefetch::prefetch_read;
use crate::Match;

/// Per-probe coroutine state. `Empty` slots are free for the next key.
#[derive(Clone, Copy)]
enum Slot {
    /// No probe in this slot.
    Empty,
    /// About to read the bucket header (prefetch issued).
    Header { tag: u32, key: u64, bucket: usize },
    /// About to read overflow node `node` (prefetch issued). `depth` is
    /// the chain position this node occupies (header = 1).
    Node {
        tag: u32,
        key: u64,
        node: u32,
        depth: u32,
    },
}

/// A resumable ring of AMAC probe state machines over one
/// [`HashIndex`].
///
/// The walker owns `inflight` slots. [`feed`](AmacWalker::feed) starts a
/// new probe, advancing the whole ring round-robin when every slot is
/// busy; [`drain`](AmacWalker::drain) runs the ring until no probe
/// remains in flight. Matches are reported through an `emit(tag, key,
/// payload)` callback as soon as they are found — which may be during a
/// later `feed` of unrelated keys, so callers that need batch isolation
/// must drain before reusing tags.
pub struct AmacWalker<'idx> {
    buckets: &'idx [Bucket],
    nodes: &'idx [Node],
    index: &'idx HashIndex,
    bucket_count: u64,
    slots: Vec<Slot>,
    live: usize,
    counters: WalkCounters,
}

impl<'idx> AmacWalker<'idx> {
    /// Creates a walker with `inflight` probe slots.
    ///
    /// # Panics
    ///
    /// Panics if `inflight` is zero.
    #[must_use]
    pub fn new(index: &'idx HashIndex, inflight: usize) -> AmacWalker<'idx> {
        assert!(inflight > 0, "need at least one in-flight probe");
        AmacWalker {
            buckets: index.buckets(),
            nodes: index.nodes(),
            index,
            bucket_count: index.buckets().len() as u64,
            slots: vec![Slot::Empty; inflight],
            live: 0,
            counters: WalkCounters::default(),
        }
    }

    /// Walker-level MLP evidence accumulated since the last
    /// [`take_counters`](AmacWalker::take_counters).
    #[must_use]
    pub fn counters(&self) -> WalkCounters {
        self.counters
    }

    /// Returns the accumulated [`WalkCounters`] and resets them, so a
    /// serving layer can attribute one batch's work to its requests.
    pub fn take_counters(&mut self) -> WalkCounters {
        std::mem::take(&mut self.counters)
    }

    /// Number of probes currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.live
    }

    /// The walker's slot count (the `inflight` it was built with).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Starts probing `key`, reporting matches as `(tag, key, payload)`
    /// through `emit`. If every slot is busy, the ring is advanced until
    /// one frees — matches for *earlier* keys may be emitted during this
    /// call.
    pub fn feed<F: FnMut(u32, u64, u64)>(&mut self, tag: u32, key: u64, emit: &mut F) {
        while self.live == self.slots.len() {
            self.step_all(emit);
        }
        let slot = self
            .slots
            .iter()
            .position(|s| matches!(s, Slot::Empty))
            .expect("live < capacity implies an empty slot");
        let bucket = self.index.recipe().bucket_of(key, self.bucket_count) as usize;
        prefetch_read(&self.buckets[bucket]);
        self.counters.prefetches += 1;
        self.slots[slot] = Slot::Header { tag, key, bucket };
        self.live += 1;
    }

    /// Runs the ring until every in-flight probe has completed.
    pub fn drain<F: FnMut(u32, u64, u64)>(&mut self, emit: &mut F) {
        while self.live > 0 {
            self.step_all(emit);
        }
    }

    /// Feeds every `(tag, key)` of `keys` and drains — one batch, start
    /// to finish.
    pub fn probe_chunk<I, F>(&mut self, keys: I, emit: &mut F)
    where
        I: IntoIterator<Item = (u32, u64)>,
        F: FnMut(u32, u64, u64),
    {
        for (tag, key) in keys {
            self.feed(tag, key, emit);
        }
        self.drain(emit);
    }

    /// Advances every live probe by one state transition (one node
    /// visit), issuing the next prefetch before yielding.
    fn step_all<F: FnMut(u32, u64, u64)>(&mut self, emit: &mut F) {
        self.counters.rounds += 1;
        self.counters.occupancy += self.live as u64;
        for i in 0..self.slots.len() {
            match self.slots[i] {
                Slot::Empty => {}
                Slot::Header { tag, key, bucket } => {
                    self.counters.nodes += 1;
                    self.counters.max_chain = self.counters.max_chain.max(1);
                    let b = &self.buckets[bucket];
                    if b.count == 0 {
                        self.retire(i);
                        continue;
                    }
                    if b.key == key {
                        emit(tag, key, b.payload);
                    }
                    if b.next == NONE {
                        self.retire(i);
                    } else {
                        prefetch_read(&self.nodes[b.next as usize]);
                        self.counters.prefetches += 1;
                        self.slots[i] = Slot::Node {
                            tag,
                            key,
                            node: b.next,
                            depth: 2,
                        };
                    }
                }
                Slot::Node {
                    tag,
                    key,
                    node,
                    depth,
                } => {
                    self.counters.nodes += 1;
                    self.counters.max_chain = self.counters.max_chain.max(u64::from(depth));
                    let n = &self.nodes[node as usize];
                    if n.key == key {
                        emit(tag, key, n.payload);
                    }
                    if n.next == NONE {
                        self.retire(i);
                    } else {
                        prefetch_read(&self.nodes[n.next as usize]);
                        self.counters.prefetches += 1;
                        self.slots[i] = Slot::Node {
                            tag,
                            key,
                            node: n.next,
                            depth: depth.saturating_add(1),
                        };
                    }
                }
            }
        }
    }

    fn retire(&mut self, slot: usize) {
        self.slots[slot] = Slot::Empty;
        self.live -= 1;
    }
}

/// Probes `keys` with `inflight` interleaved state machines, appending
/// every `(key, payload)` match to `out`. Returns the walk's
/// [`WalkCounters`].
///
/// # Panics
///
/// Panics if `inflight` is zero.
pub fn probe_amac(
    index: &HashIndex,
    keys: &[u64],
    inflight: usize,
    out: &mut Vec<Match>,
) -> WalkCounters {
    let mut walker = AmacWalker::new(index, inflight);
    walker.probe_chunk(
        keys.iter().map(|&k| (0u32, k)),
        &mut |_tag, key, payload| {
            out.push((key, payload));
        },
    );
    walker.take_counters()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe_scalar;
    use widx_db::hash::HashRecipe;

    fn check_equivalence(pairs: Vec<(u64, u64)>, probes: Vec<u64>, inflight: usize) {
        let index = HashIndex::build(HashRecipe::robust64(), 16, pairs);
        let mut scalar = Vec::new();
        let mut amac = Vec::new();
        probe_scalar(&index, &probes, &mut scalar);
        probe_amac(&index, &probes, inflight, &mut amac);
        scalar.sort_unstable();
        amac.sort_unstable();
        assert_eq!(scalar, amac, "inflight={inflight}");
    }

    #[test]
    fn equivalent_to_scalar() {
        let pairs: Vec<(u64, u64)> = (0..200).map(|k| (k % 50, k)).collect();
        let probes: Vec<u64> = (0..120).collect();
        for inflight in [1, 2, 4, 8, 16] {
            check_equivalence(pairs.clone(), probes.clone(), inflight);
        }
    }

    #[test]
    fn more_inflight_than_keys() {
        check_equivalence(vec![(1, 1)], vec![1, 2], 64);
    }

    #[test]
    fn empty_probe_stream() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, [(1u64, 2u64)]);
        let mut out = Vec::new();
        probe_amac(&index, &[], 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_inflight_rejected() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, std::iter::empty());
        probe_amac(&index, &[1], 0, &mut Vec::new());
    }

    #[test]
    fn walker_reused_across_chunks_matches_scalar() {
        let pairs: Vec<(u64, u64)> = (0..400).map(|k| (k % 90, k)).collect();
        let index = HashIndex::build(HashRecipe::robust64(), 32, pairs);
        let probes: Vec<u64> = (0..300).map(|i| i % 110).collect();

        let mut scalar = Vec::new();
        probe_scalar(&index, &probes, &mut scalar);
        scalar.sort_unstable();

        let mut walker = AmacWalker::new(&index, 8);
        let mut got: Vec<Match> = Vec::new();
        for chunk in probes.chunks(37) {
            walker.probe_chunk(chunk.iter().map(|&k| (0u32, k)), &mut |_t, k, p| {
                got.push((k, p));
            });
            assert_eq!(walker.in_flight(), 0, "drained between chunks");
        }
        got.sort_unstable();
        assert_eq!(scalar, got);
    }

    #[test]
    fn feed_keeps_probes_in_flight_until_drain() {
        // A chain long enough that probes cannot finish in one step.
        let pairs: Vec<(u64, u64)> = (0..64).map(|v| (7u64, v)).collect();
        let index = HashIndex::build(HashRecipe::robust64(), 8, pairs);
        let mut walker = AmacWalker::new(&index, 4);
        let mut out = Vec::new();
        for _ in 0..4 {
            walker.feed(0, 7, &mut |_t, k, p| out.push((k, p)));
        }
        assert_eq!(walker.in_flight(), 4);
        walker.drain(&mut |_t, k, p| out.push((k, p)));
        assert_eq!(walker.in_flight(), 0);
        assert_eq!(out.len(), 4 * 64);
    }

    #[test]
    fn counters_track_chain_depth_and_occupancy() {
        // One bucket with a 5-long chain (header + 4 overflow nodes).
        let pairs: Vec<(u64, u64)> = (0..5).map(|v| (3u64, v)).collect();
        let index = HashIndex::build(HashRecipe::robust64(), 1, pairs);
        let mut walker = AmacWalker::new(&index, 2);
        assert!(walker.counters().is_zero());
        let mut out = Vec::new();
        walker.probe_chunk([(0u32, 3u64)], &mut |_t, k, p| out.push((k, p)));
        assert_eq!(out.len(), 5);
        let c = walker.take_counters();
        assert_eq!(c.nodes, 5, "header + 4 overflow nodes visited");
        assert_eq!(c.max_chain, 5);
        assert_eq!(c.rounds, 5, "one live probe advances once per round");
        assert_eq!(c.occupancy, 5);
        assert_eq!(c.prefetches, 5, "bucket prefetch + 4 node prefetches");
        // take_counters resets.
        assert!(walker.counters().is_zero());
        // A missing key still visits its (empty or mismatched) bucket.
        walker.probe_chunk([(0u32, 999u64)], &mut |_t, _k, _p| {});
        assert!(walker.take_counters().nodes >= 1);
    }

    #[test]
    fn tags_attribute_matches_to_requests() {
        // Same key fed under different tags: each tag sees its own copy.
        let index = HashIndex::build(HashRecipe::robust64(), 8, [(5u64, 50u64), (5, 51)]);
        let mut walker = AmacWalker::new(&index, 2);
        let mut per_tag = [Vec::new(), Vec::new(), Vec::new()];
        walker.probe_chunk([(0u32, 5u64), (1, 5), (2, 9)], &mut |tag, key, payload| {
            per_tag[tag as usize].push((key, payload))
        });
        for (tag, matches) in per_tag.iter_mut().take(2).enumerate() {
            matches.sort_unstable();
            assert_eq!(matches, &[(5, 50), (5, 51)], "tag {tag}");
        }
        assert!(per_tag[2].is_empty(), "missing key matched nothing");
    }
}
