//! AMAC-style interleaved probing: hand-rolled coroutine state machines.
//!
//! Asynchronous memory-access chaining (Kocberber et al.'s own software
//! follow-up to Widx) keeps `inflight` probes in distinct states of
//! their traversal. When a probe is about to dereference a node that is
//! probably not cached, it issues a prefetch and *yields*; by the time
//! the round-robin scheduler returns to it, the line has (hopefully)
//! arrived. This is exactly the inter-key parallelism the paper's
//! hardware walkers exploit — `inflight` plays the role of the walker
//! count, bounded in practice by the same MSHR limits the paper's
//! Section 3.2 model identifies.

use widx_db::index::{HashIndex, NONE};

use crate::prefetch::prefetch_read;
use crate::Match;

/// Per-probe coroutine state.
enum State {
    /// About to read the bucket header (prefetch issued).
    Header { key: u64, bucket: usize },
    /// About to read overflow node `node` (prefetch issued).
    Node { key: u64, node: u32 },
    /// Finished; slot free for the next key.
    Done,
}

/// Probes `keys` with `inflight` interleaved state machines, appending
/// every `(key, payload)` match to `out`.
///
/// # Panics
///
/// Panics if `inflight` is zero.
pub fn probe_amac(index: &HashIndex, keys: &[u64], inflight: usize, out: &mut Vec<Match>) {
    assert!(inflight > 0, "need at least one in-flight probe");
    let buckets = index.buckets();
    let nodes = index.nodes();
    let recipe = index.recipe();
    let bucket_count = buckets.len() as u64;

    let mut next_key = 0usize;
    let mut live = 0usize;
    let mut slots: Vec<State> = Vec::with_capacity(inflight);

    // Start a probe: hash (compute-only) and prefetch its header.
    let start = |next_key: &mut usize, live: &mut usize| -> State {
        if *next_key >= keys.len() {
            return State::Done;
        }
        let key = keys[*next_key];
        *next_key += 1;
        *live += 1;
        let bucket = recipe.bucket_of(key, bucket_count) as usize;
        prefetch_read(&buckets[bucket]);
        State::Header { key, bucket }
    };

    for _ in 0..inflight {
        slots.push(start(&mut next_key, &mut live));
    }

    while live > 0 || next_key < keys.len() {
        for slot in &mut slots {
            match *slot {
                State::Done => {
                    // Idle slot: try to refill.
                    if next_key < keys.len() {
                        *slot = start(&mut next_key, &mut live);
                    }
                }
                State::Header { key, bucket } => {
                    let b = &buckets[bucket];
                    if b.count == 0 {
                        live -= 1;
                        *slot = State::Done;
                        continue;
                    }
                    if b.key == key {
                        out.push((key, b.payload));
                    }
                    if b.next == NONE {
                        live -= 1;
                        *slot = State::Done;
                    } else {
                        prefetch_read(&nodes[b.next as usize]);
                        *slot = State::Node { key, node: b.next };
                    }
                }
                State::Node { key, node } => {
                    let n = &nodes[node as usize];
                    if n.key == key {
                        out.push((key, n.payload));
                    }
                    if n.next == NONE {
                        live -= 1;
                        *slot = State::Done;
                    } else {
                        prefetch_read(&nodes[n.next as usize]);
                        *slot = State::Node { key, node: n.next };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe_scalar;
    use widx_db::hash::HashRecipe;

    fn check_equivalence(pairs: Vec<(u64, u64)>, probes: Vec<u64>, inflight: usize) {
        let index = HashIndex::build(HashRecipe::robust64(), 16, pairs);
        let mut scalar = Vec::new();
        let mut amac = Vec::new();
        probe_scalar(&index, &probes, &mut scalar);
        probe_amac(&index, &probes, inflight, &mut amac);
        scalar.sort_unstable();
        amac.sort_unstable();
        assert_eq!(scalar, amac, "inflight={inflight}");
    }

    #[test]
    fn equivalent_to_scalar() {
        let pairs: Vec<(u64, u64)> = (0..200).map(|k| (k % 50, k)).collect();
        let probes: Vec<u64> = (0..120).collect();
        for inflight in [1, 2, 4, 8, 16] {
            check_equivalence(pairs.clone(), probes.clone(), inflight);
        }
    }

    #[test]
    fn more_inflight_than_keys() {
        check_equivalence(vec![(1, 1)], vec![1, 2], 64);
    }

    #[test]
    fn empty_probe_stream() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, [(1u64, 2u64)]);
        let mut out = Vec::new();
        probe_amac(&index, &[], 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_inflight_rejected() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, std::iter::empty());
        probe_amac(&index, &[1], 0, &mut Vec::new());
    }
}
