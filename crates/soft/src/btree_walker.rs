//! AMAC-style B+-tree range walkers — the ordered-index counterpart of
//! [`AmacWalker`](crate::AmacWalker).
//!
//! A range scan has two phases with different memory behaviour: a
//! pointer-chasing *descent* (one dependent load per level, exactly the
//! traversal the paper's walkers accelerate) and a sequential
//! *leaf-chain scan* (streaming through sibling leaves). Keeping several
//! scans in flight overlaps the descents' cache misses just like hash
//! probing; during the leaf phase each cursor prefetches its next
//! sibling leaf before scanning the current one.
//!
//! Three engines over the same [`BTreeIndex`]:
//!
//! * [`scan_btree_scalar`] — one scan at a time, the serial baseline;
//! * [`scan_btree_group`] — stage-synchronized group prefetching
//!   (descend a level across the whole group, then scan leaves in
//!   lock-step);
//! * [`scan_btree_amac`] / [`BTreeRangeWalker`] — independent cursor
//!   state machines advanced round-robin. The walker form is resumable:
//!   a serving layer [`feed`](BTreeRangeWalker::feed)s tagged scans in
//!   as requests arrive and [`drain`](BTreeRangeWalker::drain)s at
//!   batch boundaries.
//!
//! Every engine emits `(tag, key, payload)` with the guarantee that the
//! emissions *for one tag* are in key order — ascending (duplicates in
//! build order), or descending (duplicates in reverse build order) for
//! a [`ScanRange`] with `desc` set, which descends toward `hi` and
//! walks the leaf chain *backwards*, prefetching the previous sibling —
//! and truncated to the scan's `limit`. Emissions of different tags
//! interleave arbitrarily.

use widx_db::index::BTreeIndex;
use widx_obs::WalkCounters;

use crate::prefetch::prefetch_read;

/// One range-scan query: all entries with keys in `[lo, hi]`, truncated
/// to the first `limit` in key order — ascending by default, descending
/// with [`desc`](ScanRange::desc) set (the `ORDER BY key DESC` shape:
/// the *largest* keys survive the limit, duplicates in reverse build
/// order). Use `usize::MAX` for an unbounded scan; `lo > hi` and
/// `limit == 0` are valid, empty scans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanRange {
    /// Inclusive lower key bound.
    pub lo: u64,
    /// Inclusive upper key bound.
    pub hi: u64,
    /// Maximum entries to emit.
    pub limit: usize,
    /// Scan direction: `false` ascends from `lo`, `true` descends from
    /// `hi` (descend-to-hi, then walk the leaf chain backwards).
    pub desc: bool,
}

impl ScanRange {
    /// An unbounded-count ascending scan of `[lo, hi]`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> ScanRange {
        ScanRange {
            lo,
            hi,
            limit: usize::MAX,
            desc: false,
        }
    }

    /// The same scan truncated to `limit` entries.
    #[must_use]
    pub fn with_limit(mut self, limit: usize) -> ScanRange {
        self.limit = limit;
        self
    }

    /// The same scan in descending key order.
    #[must_use]
    pub fn descending(mut self) -> ScanRange {
        self.desc = true;
        self
    }

    /// Whether the scan can match anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || self.limit == 0
    }
}

/// Per-cursor coroutine state. `Empty` slots are free for the next scan.
#[derive(Clone, Copy)]
enum Cursor {
    /// No scan in this slot.
    Empty,
    /// About to read inner node `node` at `depth` below the root
    /// (prefetch issued). Ascending scans descend toward `lo`,
    /// descending ones toward `hi`.
    Inner {
        tag: u32,
        lo: u64,
        hi: u64,
        remaining: usize,
        desc: bool,
        depth: usize,
        node: u32,
    },
    /// About to scan `leaf` (prefetch issued); `seek` means the cursor
    /// must still locate its boundary key within it (first leaf only —
    /// sibling leaves continue from the edge: slot 0 ascending, the
    /// last slot descending).
    Leaf {
        tag: u32,
        lo: u64,
        hi: u64,
        remaining: usize,
        desc: bool,
        leaf: u32,
        seek: bool,
    },
}

/// A resumable ring of B+-tree range-scan state machines over one
/// [`BTreeIndex`] — the ordered-index sibling of
/// [`AmacWalker`](crate::AmacWalker).
///
/// The walker owns `inflight` cursor slots. [`feed`](Self::feed) starts
/// a new scan, advancing the whole ring round-robin when every slot is
/// busy; [`drain`](Self::drain) runs the ring until no cursor remains.
/// Matches are reported through an `emit(tag, key, payload)` callback —
/// possibly during a later `feed` of unrelated scans, so callers
/// needing batch isolation must drain before reusing tags.
pub struct BTreeRangeWalker<'idx> {
    tree: &'idx BTreeIndex,
    slots: Vec<Cursor>,
    live: usize,
    counters: WalkCounters,
}

impl<'idx> BTreeRangeWalker<'idx> {
    /// Creates a walker with `inflight` cursor slots.
    ///
    /// # Panics
    ///
    /// Panics if `inflight` is zero.
    #[must_use]
    pub fn new(tree: &'idx BTreeIndex, inflight: usize) -> BTreeRangeWalker<'idx> {
        assert!(inflight > 0, "need at least one in-flight scan");
        BTreeRangeWalker {
            tree,
            slots: vec![Cursor::Empty; inflight],
            live: 0,
            counters: WalkCounters::default(),
        }
    }

    /// Walker-level MLP evidence accumulated since the last
    /// [`take_counters`](BTreeRangeWalker::take_counters). `max_chain`
    /// reports the tree depth (inner levels + leaf level) of the deepest
    /// descent fed so far.
    #[must_use]
    pub fn counters(&self) -> WalkCounters {
        self.counters
    }

    /// Returns the accumulated [`WalkCounters`] and resets them, so a
    /// serving layer can attribute one batch's work to its requests.
    pub fn take_counters(&mut self) -> WalkCounters {
        std::mem::take(&mut self.counters)
    }

    /// Number of scans currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.live
    }

    /// The walker's slot count (the `inflight` it was built with).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Starts the scan `range`, reporting matches as `(tag, key,
    /// payload)` through `emit`. If every slot is busy, the ring is
    /// advanced until one frees — matches for *earlier* scans may be
    /// emitted during this call. Degenerate ranges complete immediately
    /// without occupying a slot.
    pub fn feed<F: FnMut(u32, u64, u64)>(&mut self, tag: u32, range: ScanRange, emit: &mut F) {
        if range.is_empty() {
            return;
        }
        self.counters.max_chain = self
            .counters
            .max_chain
            .max(self.tree.inner_level_count() as u64 + 1);
        while self.live == self.slots.len() {
            self.step_all(emit);
        }
        let slot = self
            .slots
            .iter()
            .position(|s| matches!(s, Cursor::Empty))
            .expect("live < capacity implies an empty slot");
        self.slots[slot] = if self.tree.inner_level_count() == 0 {
            // No inner levels means a single live leaf (splits grow a
            // level immediately, and levels never shrink).
            let leaf = self.tree.first_leaf();
            self.prefetch_leaf(leaf);
            Cursor::Leaf {
                tag,
                lo: range.lo,
                hi: range.hi,
                remaining: range.limit,
                desc: range.desc,
                leaf,
                seek: true,
            }
        } else {
            self.prefetch_inner(0, 0);
            Cursor::Inner {
                tag,
                lo: range.lo,
                hi: range.hi,
                remaining: range.limit,
                desc: range.desc,
                depth: 0,
                node: 0,
            }
        };
        self.live += 1;
    }

    /// Runs the ring until every in-flight scan has completed.
    pub fn drain<F: FnMut(u32, u64, u64)>(&mut self, emit: &mut F) {
        while self.live > 0 {
            self.step_all(emit);
        }
    }

    /// Feeds every `(tag, range)` of `scans` and drains — one batch,
    /// start to finish.
    pub fn scan_chunk<I, F>(&mut self, scans: I, emit: &mut F)
    where
        I: IntoIterator<Item = (u32, ScanRange)>,
        F: FnMut(u32, u64, u64),
    {
        for (tag, range) in scans {
            self.feed(tag, range, emit);
        }
        self.drain(emit);
    }

    fn prefetch_inner(&mut self, depth: usize, node: u32) {
        if let [first, ..] = self.tree.inner_keys(depth, node) {
            prefetch_read(first);
            self.counters.prefetches += 1;
        }
    }

    fn prefetch_leaf(&mut self, leaf: u32) {
        if let ([first, ..], _) = self.tree.leaf_entries(leaf) {
            prefetch_read(first);
            self.counters.prefetches += 1;
        }
    }

    /// Advances every live cursor by one state transition (one node
    /// visit), issuing the next prefetch before yielding.
    fn step_all<F: FnMut(u32, u64, u64)>(&mut self, emit: &mut F) {
        self.counters.rounds += 1;
        self.counters.occupancy += self.live as u64;
        for i in 0..self.slots.len() {
            if !matches!(self.slots[i], Cursor::Empty) {
                self.counters.nodes += 1;
            }
            match self.slots[i] {
                Cursor::Empty => {}
                Cursor::Inner {
                    tag,
                    lo,
                    hi,
                    remaining,
                    desc,
                    depth,
                    node,
                } => {
                    // Ascending: strict comparison descends toward the
                    // *leftmost* subtree that can hold a key >= lo
                    // (duplicates of one key may span several leaves).
                    // Descending: `<=` descends toward the *rightmost*
                    // subtree that can hold a key <= hi.
                    let keys = self.tree.inner_keys(depth, node);
                    let slot = if desc {
                        keys.partition_point(|k| *k <= hi)
                    } else {
                        keys.partition_point(|k| *k < lo)
                    };
                    let child = self.tree.inner_child(depth, node, slot);
                    self.slots[i] = if depth + 1 == self.tree.inner_level_count() {
                        self.prefetch_leaf(child);
                        Cursor::Leaf {
                            tag,
                            lo,
                            hi,
                            remaining,
                            desc,
                            leaf: child,
                            seek: true,
                        }
                    } else {
                        self.prefetch_inner(depth + 1, child);
                        Cursor::Inner {
                            tag,
                            lo,
                            hi,
                            remaining,
                            desc,
                            depth: depth + 1,
                            node: child,
                        }
                    };
                }
                Cursor::Leaf {
                    tag,
                    lo,
                    hi,
                    mut remaining,
                    desc,
                    leaf,
                    seek,
                } => {
                    let (keys, payloads) = self.tree.leaf_entries(leaf);
                    if desc {
                        // Walk this leaf downward from the last key
                        // <= hi, then step to the *previous* sibling.
                        let mut slot = if seek {
                            keys.partition_point(|k| *k <= hi)
                        } else {
                            keys.len()
                        };
                        let mut past_lo = false;
                        while slot > 0 && remaining > 0 {
                            let key = keys[slot - 1];
                            if key < lo {
                                past_lo = true;
                                break;
                            }
                            emit(tag, key, payloads[slot - 1]);
                            remaining -= 1;
                            slot -= 1;
                        }
                        let prev = self.tree.leaf_prev(leaf);
                        match prev {
                            Some(prev) if !past_lo && remaining > 0 => {
                                self.prefetch_leaf(prev);
                                self.slots[i] = Cursor::Leaf {
                                    tag,
                                    lo,
                                    hi,
                                    remaining,
                                    desc,
                                    leaf: prev,
                                    seek: false,
                                };
                            }
                            _ => self.retire(i),
                        }
                        continue;
                    }
                    let mut slot = if seek {
                        keys.partition_point(|k| *k < lo)
                    } else {
                        0
                    };
                    let mut past_hi = false;
                    while slot < keys.len() && remaining > 0 {
                        let key = keys[slot];
                        if key > hi {
                            past_hi = true;
                            break;
                        }
                        emit(tag, key, payloads[slot]);
                        remaining -= 1;
                        slot += 1;
                    }
                    match self.tree.leaf_next(leaf) {
                        Some(next) if !past_hi && remaining > 0 => {
                            self.prefetch_leaf(next);
                            self.slots[i] = Cursor::Leaf {
                                tag,
                                lo,
                                hi,
                                remaining,
                                leaf: next,
                                desc,
                                seek: false,
                            };
                        }
                        _ => self.retire(i),
                    }
                }
            }
        }
    }

    fn retire(&mut self, slot: usize) {
        self.slots[slot] = Cursor::Empty;
        self.live -= 1;
    }
}

/// Scans `scans` one at a time — the serial baseline, implemented over
/// the same public accessors the walkers use (and therefore an
/// implementation independent of [`BTreeIndex::range_scan`]). Emits
/// `(scan index, key, payload)`. Returns the walk's [`WalkCounters`]:
/// node visits (inner descent + leaves consumed) match the interleaved
/// engines exactly; one scan is in flight at a time, so
/// `rounds == occupancy == nodes` and nothing is prefetched.
pub fn scan_btree_scalar<F: FnMut(u32, u64, u64)>(
    tree: &BTreeIndex,
    scans: &[ScanRange],
    emit: &mut F,
) -> WalkCounters {
    let mut counters = WalkCounters::default();
    for (i, range) in scans.iter().enumerate() {
        if range.is_empty() {
            continue;
        }
        counters.max_chain = counters.max_chain.max(tree.inner_level_count() as u64 + 1);
        let tag = i as u32;
        let mut node = 0u32;
        for depth in 0..tree.inner_level_count() {
            counters.nodes += 1;
            let keys = tree.inner_keys(depth, node);
            let slot = if range.desc {
                keys.partition_point(|k| *k <= range.hi)
            } else {
                keys.partition_point(|k| *k < range.lo)
            };
            node = tree.inner_child(depth, node, slot);
        }
        let mut leaf = if tree.inner_level_count() == 0 {
            tree.first_leaf()
        } else {
            node
        };
        let mut remaining = range.limit;
        let mut seek = true;
        if range.desc {
            'rchain: while remaining > 0 {
                counters.nodes += 1;
                let (keys, payloads) = tree.leaf_entries(leaf);
                let mut slot = if seek {
                    keys.partition_point(|k| *k <= range.hi)
                } else {
                    keys.len()
                };
                while slot > 0 && remaining > 0 {
                    let key = keys[slot - 1];
                    if key < range.lo {
                        break 'rchain;
                    }
                    emit(tag, key, payloads[slot - 1]);
                    remaining -= 1;
                    slot -= 1;
                }
                match tree.leaf_prev(leaf) {
                    Some(prev) => leaf = prev,
                    None => break,
                }
                seek = false;
            }
            continue;
        }
        'chain: while remaining > 0 {
            counters.nodes += 1;
            let (keys, payloads) = tree.leaf_entries(leaf);
            let mut slot = if seek {
                keys.partition_point(|k| *k < range.lo)
            } else {
                0
            };
            while slot < keys.len() && remaining > 0 {
                let key = keys[slot];
                if key > range.hi {
                    break 'chain;
                }
                emit(tag, key, payloads[slot]);
                remaining -= 1;
                slot += 1;
            }
            match tree.leaf_next(leaf) {
                Some(next) => leaf = next,
                None => break,
            }
            seek = false;
        }
    }
    counters.rounds = counters.nodes;
    counters.occupancy = counters.nodes;
    counters
}

/// Scans `scans` in stage-synchronized groups of `group` cursors
/// (Chen et al.-style group prefetching): the whole group descends one
/// level together, then scans leaves in lock-step, each stage issuing
/// the next stage's prefetches. Emits `(scan index, key, payload)`.
/// Returns the walk's [`WalkCounters`]: node visits and prefetches
/// match the AMAC walker exactly (same traversal, different schedule);
/// each lock-step pass counts as one round with its live cursor count
/// as occupancy.
///
/// # Panics
///
/// Panics if `group` is zero.
pub fn scan_btree_group<F: FnMut(u32, u64, u64)>(
    tree: &BTreeIndex,
    scans: &[ScanRange],
    group: usize,
    emit: &mut F,
) -> WalkCounters {
    assert!(group > 0, "group size must be positive");
    let mut counters = WalkCounters::default();
    /// One group member's leaf-phase state; `done` doubles as the
    /// degenerate-scan marker.
    struct Member {
        leaf: u32,
        seek: bool,
        remaining: usize,
        done: bool,
    }
    for (chunk_idx, chunk) in scans.chunks(group).enumerate() {
        let base = (chunk_idx * group) as u32;
        let mut nodes = vec![0u32; chunk.len()];
        // Stage 0: prefetch the root for every live member — the same
        // first touch the AMAC walker issues at feed time.
        let mut live = 0u64;
        for range in chunk {
            if range.is_empty() {
                continue;
            }
            live += 1;
            counters.max_chain = counters.max_chain.max(tree.inner_level_count() as u64 + 1);
            if tree.inner_level_count() > 0 {
                if let [first, ..] = tree.inner_keys(0, 0) {
                    prefetch_read(first);
                    counters.prefetches += 1;
                }
            } else if let ([first, ..], _) = tree.leaf_entries(tree.first_leaf()) {
                prefetch_read(first);
                counters.prefetches += 1;
            }
        }
        // Stage 1..h: descend the whole group one level per stage
        // (toward `lo` ascending, toward `hi` descending).
        for depth in 0..tree.inner_level_count() {
            if live > 0 {
                counters.rounds += 1;
                counters.occupancy += live;
            }
            for (i, range) in chunk.iter().enumerate() {
                if range.is_empty() {
                    continue;
                }
                counters.nodes += 1;
                let keys = tree.inner_keys(depth, nodes[i]);
                let slot = if range.desc {
                    keys.partition_point(|k| *k <= range.hi)
                } else {
                    keys.partition_point(|k| *k < range.lo)
                };
                nodes[i] = tree.inner_child(depth, nodes[i], slot);
                if depth + 1 < tree.inner_level_count() {
                    if let [first, ..] = tree.inner_keys(depth + 1, nodes[i]) {
                        prefetch_read(first);
                        counters.prefetches += 1;
                    }
                } else if let ([first, ..], _) = tree.leaf_entries(nodes[i]) {
                    prefetch_read(first);
                    counters.prefetches += 1;
                }
            }
        }
        // Leaf stages: each member consumes one leaf per stage.
        let mut members: Vec<Member> = chunk
            .iter()
            .zip(&nodes)
            .map(|(range, node)| Member {
                leaf: if tree.inner_level_count() == 0 {
                    tree.first_leaf()
                } else {
                    *node
                },
                seek: true,
                remaining: range.limit,
                done: range.is_empty(),
            })
            .collect();
        loop {
            let mut any = false;
            let mut pass_live = 0u64;
            for (i, m) in members.iter_mut().enumerate() {
                if m.done {
                    continue;
                }
                any = true;
                pass_live += 1;
                counters.nodes += 1;
                let range = &chunk[i];
                let (keys, payloads) = tree.leaf_entries(m.leaf);
                if range.desc {
                    let mut slot = if m.seek {
                        keys.partition_point(|k| *k <= range.hi)
                    } else {
                        keys.len()
                    };
                    let mut past_lo = false;
                    while slot > 0 && m.remaining > 0 {
                        let key = keys[slot - 1];
                        if key < range.lo {
                            past_lo = true;
                            break;
                        }
                        emit(base + i as u32, key, payloads[slot - 1]);
                        m.remaining -= 1;
                        slot -= 1;
                    }
                    match tree.leaf_prev(m.leaf) {
                        Some(prev) if !past_lo && m.remaining > 0 => {
                            if let ([first, ..], _) = tree.leaf_entries(prev) {
                                prefetch_read(first);
                                counters.prefetches += 1;
                            }
                            m.leaf = prev;
                            m.seek = false;
                        }
                        _ => m.done = true,
                    }
                    continue;
                }
                let mut slot = if m.seek {
                    keys.partition_point(|k| *k < range.lo)
                } else {
                    0
                };
                let mut past_hi = false;
                while slot < keys.len() && m.remaining > 0 {
                    let key = keys[slot];
                    if key > range.hi {
                        past_hi = true;
                        break;
                    }
                    emit(base + i as u32, key, payloads[slot]);
                    m.remaining -= 1;
                    slot += 1;
                }
                match tree.leaf_next(m.leaf) {
                    Some(next) if !past_hi && m.remaining > 0 => {
                        if let ([first, ..], _) = tree.leaf_entries(next) {
                            prefetch_read(first);
                            counters.prefetches += 1;
                        }
                        m.leaf = next;
                        m.seek = false;
                    }
                    _ => m.done = true,
                }
            }
            if !any {
                break;
            }
            counters.rounds += 1;
            counters.occupancy += pass_live;
        }
    }
    counters
}

/// Scans `scans` with `inflight` interleaved cursor state machines —
/// the one-shot form of [`BTreeRangeWalker`]. Emits `(scan index, key,
/// payload)`. Returns the walk's [`WalkCounters`].
///
/// # Panics
///
/// Panics if `inflight` is zero.
pub fn scan_btree_amac<F: FnMut(u32, u64, u64)>(
    tree: &BTreeIndex,
    scans: &[ScanRange],
    inflight: usize,
    emit: &mut F,
) -> WalkCounters {
    let mut walker = BTreeRangeWalker::new(tree, inflight);
    walker.scan_chunk(
        scans
            .iter()
            .enumerate()
            .map(|(i, range)| (i as u32, *range)),
        emit,
    );
    walker.take_counters()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(entries: u64, fanout: usize) -> BTreeIndex {
        BTreeIndex::build(fanout, (0..entries).map(|k| (k * 3, k)))
    }

    /// Collects per-tag results from an engine run.
    fn per_tag<E>(n: usize, run: E) -> Vec<Vec<(u64, u64)>>
    where
        E: FnOnce(&mut dyn FnMut(u32, u64, u64)),
    {
        let mut out = vec![Vec::new(); n];
        run(&mut |tag, key, payload| out[tag as usize].push((key, payload)));
        out
    }

    fn check_all_engines(t: &BTreeIndex, scans: &[ScanRange]) {
        let want: Vec<Vec<(u64, u64)>> = scans
            .iter()
            .map(|r| {
                if r.desc {
                    t.range_scan_desc(r.lo, r.hi, r.limit)
                } else {
                    t.range_scan(r.lo, r.hi, r.limit)
                }
            })
            .collect();
        let scalar = per_tag(scans.len(), |emit| {
            scan_btree_scalar(t, scans, &mut |a, b, c| emit(a, b, c));
        });
        assert_eq!(scalar, want, "scalar vs range_scan oracle");
        for group in [1usize, 3, 8] {
            let grouped = per_tag(scans.len(), |emit| {
                scan_btree_group(t, scans, group, &mut |a, b, c| emit(a, b, c));
            });
            assert_eq!(grouped, want, "group={group}");
        }
        for inflight in [1usize, 2, 5, 16] {
            let amac = per_tag(scans.len(), |emit| {
                scan_btree_amac(t, scans, inflight, &mut |a, b, c| emit(a, b, c));
            });
            assert_eq!(amac, want, "inflight={inflight}");
        }
    }

    #[test]
    fn engines_agree_with_oracle() {
        let t = tree(2000, 8);
        let scans: Vec<ScanRange> = (0..40u64)
            .map(|i| ScanRange::new(i * 131, i * 131 + 400))
            .collect();
        check_all_engines(&t, &scans);
    }

    #[test]
    fn limits_and_degenerate_ranges() {
        let t = tree(500, 4);
        let scans = vec![
            ScanRange::new(0, u64::MAX),
            ScanRange::new(100, 400).with_limit(7),
            ScanRange::new(400, 100), // inverted
            ScanRange::new(10, 10),   // single key (miss: 10 % 3 != 0)
            ScanRange::new(9, 9),     // single key (hit)
            ScanRange::new(0, 1000).with_limit(0),
            ScanRange::new(5000, 9000), // past the end
        ];
        check_all_engines(&t, &scans);
    }

    #[test]
    fn duplicates_spanning_leaves() {
        let mut pairs: Vec<(u64, u64)> = (0..40u64).map(|i| (77, i)).collect();
        pairs.extend((0..100u64).map(|k| (k * 2, k)));
        let t = BTreeIndex::build(4, pairs);
        let scans = vec![
            ScanRange::new(77, 77),
            ScanRange::new(70, 80).with_limit(11),
            ScanRange::new(0, 200),
        ];
        check_all_engines(&t, &scans);
    }

    #[test]
    fn empty_and_single_leaf_trees() {
        check_all_engines(
            &BTreeIndex::build(8, std::iter::empty()),
            &[ScanRange::new(0, u64::MAX)],
        );
        check_all_engines(&tree(5, 8), &[ScanRange::new(0, 100), ScanRange::new(3, 3)]);
    }

    #[test]
    fn descending_engines_agree_with_the_reverse_oracle() {
        let t = tree(2000, 8);
        let mut scans: Vec<ScanRange> = (0..30u64)
            .map(|i| ScanRange::new(i * 157, i * 157 + 500).descending())
            .collect();
        scans.push(ScanRange::new(0, u64::MAX).descending());
        scans.push(ScanRange::new(100, 400).with_limit(7).descending());
        scans.push(ScanRange::new(400, 100).descending()); // inverted
        scans.push(ScanRange::new(9, 9).descending()); // single key hit
        scans.push(ScanRange::new(0, 1000).with_limit(0).descending());
        scans.push(ScanRange::new(9000, 9999).descending()); // past the end
        check_all_engines(&t, &scans);
    }

    #[test]
    fn mixed_direction_batches_keep_per_tag_order() {
        let t = tree(1500, 4);
        let scans: Vec<ScanRange> = (0..24u64)
            .map(|i| {
                let r = ScanRange::new(i * 97, i * 97 + 800);
                if i % 2 == 0 {
                    r.descending()
                } else {
                    r
                }
            })
            .collect();
        check_all_engines(&t, &scans);
    }

    #[test]
    fn descending_duplicates_span_leaves_in_reverse_build_order() {
        let mut pairs: Vec<(u64, u64)> = (0..40u64).map(|i| (77, i)).collect();
        pairs.extend((0..100u64).map(|k| (k * 2, k)));
        let t = BTreeIndex::build(4, pairs);
        let scans = vec![
            ScanRange::new(77, 77).descending(),
            ScanRange::new(70, 80).with_limit(11).descending(),
            ScanRange::new(0, 200).descending(),
        ];
        check_all_engines(&t, &scans);
    }

    #[test]
    fn descending_empty_and_single_leaf_trees() {
        check_all_engines(
            &BTreeIndex::build(8, std::iter::empty()),
            &[ScanRange::new(0, u64::MAX).descending()],
        );
        check_all_engines(
            &tree(5, 8),
            &[
                ScanRange::new(0, 100).descending(),
                ScanRange::new(3, 3).descending(),
            ],
        );
    }

    #[test]
    fn walker_is_resumable_across_batches() {
        let t = tree(3000, 8);
        let mut walker = BTreeRangeWalker::new(&t, 4);
        let mut got: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 30];
        for batch in 0..3 {
            for j in 0..10u32 {
                let tag = batch * 10 + j;
                let lo = u64::from(tag) * 100;
                walker.feed(tag, ScanRange::new(lo, lo + 250), &mut |t2, k, p| {
                    got[t2 as usize].push((k, p))
                });
            }
            walker.drain(&mut |t2, k, p| got[t2 as usize].push((k, p)));
            assert_eq!(walker.in_flight(), 0, "drained between batches");
        }
        for (tag, results) in got.iter().enumerate() {
            let lo = tag as u64 * 100;
            assert_eq!(
                results,
                &t.range_scan(lo, lo + 250, usize::MAX),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn feed_keeps_scans_in_flight_until_drain() {
        let t = tree(50_000, 8);
        let mut walker = BTreeRangeWalker::new(&t, 4);
        let mut count = 0usize;
        for i in 0..4u32 {
            walker.feed(
                i,
                ScanRange::new(u64::from(i) * 1000, u64::from(i) * 1000 + 10),
                &mut |_, _, _| count += 1,
            );
        }
        assert_eq!(walker.in_flight(), 4, "descents still in flight");
        walker.drain(&mut |_, _, _| count += 1);
        assert_eq!(walker.in_flight(), 0);
        assert!(count > 0);
    }

    #[test]
    fn counters_track_depth_rounds_and_prefetches() {
        let t = tree(2000, 8);
        let mut walker = BTreeRangeWalker::new(&t, 4);
        assert!(walker.counters().is_zero());
        let mut n = 0usize;
        walker.scan_chunk([(0u32, ScanRange::new(0, 300))], &mut |_, _, _| n += 1);
        assert_eq!(n, 101); // keys 0,3,...,300
        let c = walker.take_counters();
        assert_eq!(c.max_chain, t.inner_level_count() as u64 + 1);
        assert!(c.nodes >= c.max_chain, "visited at least one full descent");
        assert!(c.rounds >= c.nodes, "single cursor: one node per round");
        assert_eq!(c.occupancy, c.nodes, "single live cursor each round");
        assert!(c.prefetches > 0);
        assert!(walker.counters().is_zero(), "take_counters resets");
        // Degenerate scans touch nothing.
        walker.feed(0, ScanRange::new(9, 3), &mut |_, _, _| {});
        assert!(walker.counters().is_zero());
    }

    #[test]
    fn degenerate_feed_does_not_occupy_a_slot() {
        let t = tree(100, 4);
        let mut walker = BTreeRangeWalker::new(&t, 2);
        walker.feed(0, ScanRange::new(9, 3), &mut |_, _, _| panic!("no matches"));
        walker.feed(1, ScanRange::new(0, 9).with_limit(0), &mut |_, _, _| {
            panic!("no matches")
        });
        assert_eq!(walker.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_inflight_rejected() {
        let t = tree(10, 4);
        let _ = BTreeRangeWalker::new(&t, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_group_rejected() {
        let t = tree(10, 4);
        scan_btree_group(&t, &[ScanRange::new(0, 1)], 0, &mut |_, _, _| {});
    }
}
