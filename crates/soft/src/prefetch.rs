//! Portable data-prefetch shim.
//!
//! The paper's `TOUCH` instruction "demand[s] data blocks in advance of
//! their use"; on commodity x86-64 the equivalent is `prefetcht0`. On
//! targets without a stable prefetch intrinsic this compiles to a no-op,
//! which only costs performance, never correctness — prefetches are
//! non-binding by definition.

/// Issues a non-binding prefetch for the cache line containing `value`.
#[inline(always)]
pub fn prefetch_read<T>(value: &T) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `value` is a valid reference, so its address is a
        // valid (dereferenceable) pointer for the duration of the call;
        // `_mm_prefetch` never dereferences architecturally and has no
        // memory side effects beyond cache-state hints.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                std::ptr::from_ref(value).cast::<i8>(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // No stable prefetch intrinsic: make the hint a no-op.
        let _ = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_side_effect_free() {
        let data = vec![1u64, 2, 3];
        prefetch_read(&data[0]);
        prefetch_read(&data[2]);
        assert_eq!(data, vec![1, 2, 3]);
    }
}
