//! Group prefetching: stage-synchronized batches.
//!
//! Chen et al.'s group prefetching (the paper's reference \[5\]) splits
//! the probe loop into stages and runs each stage across a whole group
//! of keys before advancing, issuing the next stage's prefetches at the
//! end of the current one. Simpler control flow than AMAC, but stalls
//! when chain lengths diverge within a group — the "lock-step" weakness
//! the paper attributes to vector-style approaches.

use widx_db::index::{HashIndex, NONE};

use crate::prefetch::prefetch_read;
use crate::Match;

/// Probes `keys` in groups of `group` keys, appending matches to `out`.
///
/// # Panics
///
/// Panics if `group` is zero.
pub fn probe_group_prefetch(index: &HashIndex, keys: &[u64], group: usize, out: &mut Vec<Match>) {
    assert!(group > 0, "group size must be positive");
    let buckets = index.buckets();
    let nodes = index.nodes();
    let recipe = index.recipe();
    let bucket_count = buckets.len() as u64;

    let mut bucket_ids = vec![0usize; group];
    let mut cursors = vec![NONE; group];

    for chunk in keys.chunks(group) {
        // Stage 1: hash the whole group, prefetch every header.
        for (i, &key) in chunk.iter().enumerate() {
            let b = recipe.bucket_of(key, bucket_count) as usize;
            bucket_ids[i] = b;
            prefetch_read(&buckets[b]);
        }
        // Stage 2: visit headers, prefetch first overflow nodes.
        for (i, &key) in chunk.iter().enumerate() {
            let b = &buckets[bucket_ids[i]];
            if b.count == 0 {
                cursors[i] = NONE;
                continue;
            }
            if b.key == key {
                out.push((key, b.payload));
            }
            cursors[i] = b.next;
            if b.next != NONE {
                prefetch_read(&nodes[b.next as usize]);
            }
        }
        // Stage 3+: walk chains in lock-step until the group drains.
        loop {
            let mut any = false;
            for (i, &key) in chunk.iter().enumerate() {
                let cur = cursors[i];
                if cur == NONE {
                    continue;
                }
                any = true;
                let n = &nodes[cur as usize];
                if n.key == key {
                    out.push((key, n.payload));
                }
                cursors[i] = n.next;
                if n.next != NONE {
                    prefetch_read(&nodes[n.next as usize]);
                }
            }
            if !any {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe_scalar;
    use widx_db::hash::HashRecipe;

    #[test]
    fn equivalent_to_scalar() {
        let pairs: Vec<(u64, u64)> = (0..300).map(|k| (k % 70, k)).collect();
        let index = HashIndex::build(HashRecipe::robust64(), 32, pairs);
        let probes: Vec<u64> = (0..150).collect();
        let mut scalar = Vec::new();
        probe_scalar(&index, &probes, &mut scalar);
        scalar.sort_unstable();
        for group in [1, 3, 8, 64, 200] {
            let mut gp = Vec::new();
            probe_group_prefetch(&index, &probes, group, &mut gp);
            gp.sort_unstable();
            assert_eq!(scalar, gp, "group={group}");
        }
    }

    #[test]
    fn partial_final_group() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, [(1u64, 1u64), (2, 2)]);
        let mut out = Vec::new();
        probe_group_prefetch(&index, &[1, 2, 1], 2, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(1, 1), (1, 1), (2, 2)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_group_rejected() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, std::iter::empty());
        probe_group_prefetch(&index, &[1], 0, &mut Vec::new());
    }
}
