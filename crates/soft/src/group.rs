//! Group prefetching: stage-synchronized batches.
//!
//! Chen et al.'s group prefetching (the paper's reference \[5\]) splits
//! the probe loop into stages and runs each stage across a whole group
//! of keys before advancing, issuing the next stage's prefetches at the
//! end of the current one. Simpler control flow than AMAC, but stalls
//! when chain lengths diverge within a group — the "lock-step" weakness
//! the paper attributes to vector-style approaches.

use widx_db::index::{HashIndex, NONE};
use widx_obs::WalkCounters;

use crate::prefetch::prefetch_read;
use crate::Match;

/// Probes `keys` in groups of `group` keys, appending matches to `out`.
/// Returns the walk's [`WalkCounters`]: node visits and prefetches match
/// the AMAC walker exactly (same traversal, different schedule); each
/// lock-step pass over the group counts as one round with its live key
/// count as occupancy, so `occupancy ÷ rounds` reads the group's mean
/// in-flight width.
///
/// # Panics
///
/// Panics if `group` is zero.
pub fn probe_group_prefetch(
    index: &HashIndex,
    keys: &[u64],
    group: usize,
    out: &mut Vec<Match>,
) -> WalkCounters {
    assert!(group > 0, "group size must be positive");
    let mut counters = WalkCounters::default();
    let buckets = index.buckets();
    let nodes = index.nodes();
    let recipe = index.recipe();
    let bucket_count = buckets.len() as u64;

    let mut bucket_ids = vec![0usize; group];
    let mut cursors = vec![NONE; group];

    for chunk in keys.chunks(group) {
        // Stage 1: hash the whole group, prefetch every header.
        for (i, &key) in chunk.iter().enumerate() {
            let b = recipe.bucket_of(key, bucket_count) as usize;
            bucket_ids[i] = b;
            prefetch_read(&buckets[b]);
            counters.prefetches += 1;
        }
        // Stage 2: visit headers, prefetch first overflow nodes — one
        // lock-step round with the whole chunk in flight.
        counters.rounds += 1;
        counters.occupancy += chunk.len() as u64;
        for (i, &key) in chunk.iter().enumerate() {
            counters.nodes += 1;
            counters.max_chain = counters.max_chain.max(1);
            let b = &buckets[bucket_ids[i]];
            if b.count == 0 {
                cursors[i] = NONE;
                continue;
            }
            if b.key == key {
                out.push((key, b.payload));
            }
            cursors[i] = b.next;
            if b.next != NONE {
                prefetch_read(&nodes[b.next as usize]);
                counters.prefetches += 1;
            }
        }
        // Stage 3+: walk chains in lock-step until the group drains.
        let mut depth = 1u64;
        loop {
            let mut live = 0u64;
            depth += 1;
            for (i, &key) in chunk.iter().enumerate() {
                let cur = cursors[i];
                if cur == NONE {
                    continue;
                }
                live += 1;
                counters.nodes += 1;
                counters.max_chain = counters.max_chain.max(depth);
                let n = &nodes[cur as usize];
                if n.key == key {
                    out.push((key, n.payload));
                }
                cursors[i] = n.next;
                if n.next != NONE {
                    prefetch_read(&nodes[n.next as usize]);
                    counters.prefetches += 1;
                }
            }
            if live == 0 {
                break;
            }
            counters.rounds += 1;
            counters.occupancy += live;
        }
    }
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe_scalar;
    use widx_db::hash::HashRecipe;

    #[test]
    fn equivalent_to_scalar() {
        let pairs: Vec<(u64, u64)> = (0..300).map(|k| (k % 70, k)).collect();
        let index = HashIndex::build(HashRecipe::robust64(), 32, pairs);
        let probes: Vec<u64> = (0..150).collect();
        let mut scalar = Vec::new();
        let sc = probe_scalar(&index, &probes, &mut scalar);
        scalar.sort_unstable();
        for group in [1, 3, 8, 64, 200] {
            let mut gp = Vec::new();
            let gc = probe_group_prefetch(&index, &probes, group, &mut gp);
            gp.sort_unstable();
            assert_eq!(scalar, gp, "group={group}");
            assert_eq!(gc.nodes, sc.nodes, "same traversal, group={group}");
            assert_eq!(gc.max_chain, sc.max_chain, "group={group}");
        }
    }

    #[test]
    fn partial_final_group() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, [(1u64, 1u64), (2, 2)]);
        let mut out = Vec::new();
        probe_group_prefetch(&index, &[1, 2, 1], 2, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(1, 1), (1, 1), (2, 2)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_group_rejected() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, std::iter::empty());
        probe_group_prefetch(&index, &[1], 0, &mut Vec::new());
    }
}
