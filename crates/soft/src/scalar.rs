//! The baseline serial probe loop (paper Listing 1): hash one key, walk
//! its bucket to the end, then move to the next key — every node miss
//! stalls the core.

use widx_db::index::HashIndex;

use crate::Match;

/// Probes `keys` one at a time, appending every `(key, payload)` match
/// to `out`.
pub fn probe_scalar(index: &HashIndex, keys: &[u64], out: &mut Vec<Match>) {
    for &key in keys {
        index.walk(key, |payload| {
            out.push((key, payload));
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widx_db::hash::HashRecipe;

    #[test]
    fn finds_all_matches() {
        let index = HashIndex::build(
            HashRecipe::robust64(),
            32,
            [(1u64, 10u64), (2, 20), (1, 11)],
        );
        let mut out = Vec::new();
        probe_scalar(&index, &[1, 2, 3], &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(1, 10), (1, 11), (2, 20)]);
    }

    #[test]
    fn empty_inputs() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, std::iter::empty());
        let mut out = Vec::new();
        probe_scalar(&index, &[], &mut out);
        probe_scalar(&index, &[42], &mut out);
        assert!(out.is_empty());
    }
}
