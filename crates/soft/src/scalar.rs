//! The baseline serial probe loop (paper Listing 1): hash one key, walk
//! its bucket to the end, then move to the next key — every node miss
//! stalls the core.

use widx_db::index::{HashIndex, NONE};
use widx_obs::WalkCounters;

use crate::Match;

/// Probes `keys` one at a time, appending every `(key, payload)` match
/// to `out`. Returns the walk's [`WalkCounters`]: the serial loop keeps
/// exactly one probe in flight, so `rounds == occupancy == nodes`
/// (soft MLP 1.0) and no prefetches are issued — the node-visit count
/// is the cross-engine parity invariant the interleaved walkers are
/// tested against.
pub fn probe_scalar(index: &HashIndex, keys: &[u64], out: &mut Vec<Match>) -> WalkCounters {
    let mut counters = WalkCounters::default();
    let buckets = index.buckets();
    let nodes = index.nodes();
    let recipe = index.recipe();
    let bucket_count = buckets.len() as u64;
    for &key in keys {
        let b = &buckets[recipe.bucket_of(key, bucket_count) as usize];
        counters.nodes += 1;
        counters.max_chain = counters.max_chain.max(1);
        if b.count == 0 {
            continue;
        }
        if b.key == key {
            out.push((key, b.payload));
        }
        let mut cur = b.next;
        let mut depth = 1u64;
        while cur != NONE {
            let n = &nodes[cur as usize];
            depth += 1;
            counters.nodes += 1;
            counters.max_chain = counters.max_chain.max(depth);
            if n.key == key {
                out.push((key, n.payload));
            }
            cur = n.next;
        }
    }
    counters.rounds = counters.nodes;
    counters.occupancy = counters.nodes;
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use widx_db::hash::HashRecipe;

    #[test]
    fn finds_all_matches() {
        let index = HashIndex::build(
            HashRecipe::robust64(),
            32,
            [(1u64, 10u64), (2, 20), (1, 11)],
        );
        let mut out = Vec::new();
        let counters = probe_scalar(&index, &[1, 2, 3], &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(1, 10), (1, 11), (2, 20)]);
        assert!(counters.nodes >= 3, "every probe visits its header");
        assert_eq!(
            counters.rounds, counters.nodes,
            "serial: one visit per round"
        );
        assert_eq!(counters.occupancy, counters.nodes, "serial MLP is 1.0");
        assert_eq!(counters.prefetches, 0, "the baseline never prefetches");
    }

    #[test]
    fn empty_inputs() {
        let index = HashIndex::build(HashRecipe::robust64(), 8, std::iter::empty());
        let mut out = Vec::new();
        assert!(probe_scalar(&index, &[], &mut out).is_zero());
        let counters = probe_scalar(&index, &[42], &mut out);
        assert!(out.is_empty());
        assert_eq!(counters.nodes, 1, "a missing key still visits its header");
        assert_eq!(counters.max_chain, 1);
    }
}
