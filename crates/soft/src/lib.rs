//! # widx-soft — software walkers on real hardware
//!
//! The lasting software legacy of *Meet the Walkers* is its central
//! observation: hash-index probes have abundant **inter-key parallelism**
//! that a serial probe loop wastes. Follow-up systems (AMAC, CoroBase)
//! exploit it in software by keeping several probes in flight per core,
//! issuing a prefetch for each probe's next node and switching to
//! another probe instead of stalling — hand-rolled coroutines.
//!
//! This crate implements that line of work over the same
//! [`HashIndex`](widx_db::index::HashIndex) the simulation studies:
//!
//! * [`probe_scalar`] — the baseline one-probe-at-a-time loop
//!   (Listing 1 of the paper);
//! * [`probe_group_prefetch`] — stage-synchronized group prefetching
//!   (Chen et al.'s GP, the paper's reference \[5\]);
//! * [`probe_amac`] — asynchronous memory-access chaining: a ring of
//!   independent probe state machines, each prefetching its next node
//!   before yielding — the software equivalent of the paper's parallel
//!   walker units;
//! * [`AmacWalker`] — the resumable, tag-carrying form of the same
//!   ring, built for serving layers (`widx-serve`) that feed keys in as
//!   requests arrive and drain at batch boundaries.
//!
//! The same three shapes exist for **ordered-index range scans** over a
//! [`BTreeIndex`](widx_db::index::BTreeIndex) — [`scan_btree_scalar`],
//! [`scan_btree_group`], and [`scan_btree_amac`] /
//! [`BTreeRangeWalker`] — where the descent is the pointer chase the
//! walkers overlap and the leaf chain is scanned with sibling
//! prefetching (paper Section 7's "other index structures" extension).
//!
//! All three produce identical result multisets; the Criterion bench
//! `soft_walkers` compares their throughput on DRAM-resident indexes,
//! where AMAC plays the role of "4 walkers" on a real CPU.
//!
//! # Example
//!
//! ```
//! use widx_db::hash::HashRecipe;
//! use widx_db::index::HashIndex;
//! use widx_soft::{probe_amac, probe_scalar};
//!
//! let index = HashIndex::build(HashRecipe::robust64(), 1024,
//!                              (0..1000u64).map(|k| (k, k)));
//! let probes: Vec<u64> = (0..100).map(|i| i * 7).collect();
//! let mut serial = Vec::new();
//! let mut interleaved = Vec::new();
//! probe_scalar(&index, &probes, &mut serial);
//! probe_amac(&index, &probes, 8, &mut interleaved);
//! serial.sort_unstable();
//! interleaved.sort_unstable();
//! assert_eq!(serial, interleaved);
//! ```

#![warn(missing_docs)]
// `unsafe` is confined to the prefetch shim (raw-pointer prefetch
// intrinsics); everything else is safe Rust.

mod amac;
mod btree_walker;
mod group;
pub mod prefetch;
mod resume;
mod scalar;

pub use amac::{probe_amac, AmacWalker};
pub use btree_walker::{
    scan_btree_amac, scan_btree_group, scan_btree_scalar, BTreeRangeWalker, ScanRange,
};
pub use group::probe_group_prefetch;
pub use resume::ResumableScan;
pub use scalar::probe_scalar;
// Walker-level MLP evidence both resumable walkers accumulate; defined in
// dependency-free `widx-obs` so the trace subsystem shares the shape.
pub use widx_obs::WalkCounters;

/// A probe result: `(probe key, payload)`.
pub type Match = (u64, u64);
