//! A range cursor that survives index mutations between chunks.
//!
//! [`BTreeRangeWalker`](crate::BTreeRangeWalker) streams a scan in one
//! sitting: the borrow of the tree lives as long as the walker. A
//! serving tier that interleaves *write batches* between a long scan's
//! chunks cannot hold that borrow — the writer needs `&mut` — so the
//! cursor must be able to detach, let mutations happen, and resume.
//!
//! [`ResumableScan`] saves its position as a `(leaf, slot, version)`
//! hint. Leaf versions (see
//! [`BTreeIndex::leaf_version`](widx_db::index::BTreeIndex::leaf_version))
//! are bumped on every content or link change, retirement, and reuse,
//! so at resume time a matching version proves the leaf is byte-for-byte
//! the one the cursor left: the scan continues at the exact slot, paying
//! nothing. On a mismatch the cursor *re-descends* from just past the
//! last key it emitted — correct, one extra root-to-leaf walk.
//!
//! Epochs make the hint *checkable at all*: the serving tier pins an
//! epoch for the duration of each chunk, so the leaf slot the hint
//! names cannot be reclaimed-and-reused while unpinned hints are dead
//! anyway (any reuse bumps the version, which the resume check
//! catches). Versions give safety; epochs bound garbage and keep hints
//! alive long enough to be worth saving.
//!
//! Semantics under concurrent mutation (the caller serializes chunks
//! against writes — e.g. a read lock per chunk):
//!
//! * emitted keys are strictly within `[lo, hi]`, in scan order, and
//!   never torn — every `(key, payload)` was present in the tree during
//!   the chunk that emitted it;
//! * keys untouched by writers are emitted exactly once;
//! * after a re-descent, *duplicates* of the last emitted key that the
//!   cursor had not yet reached are skipped (the re-descent starts past
//!   that key). Exact-resume (matching version) never skips.

use widx_db::index::BTreeIndex;

use crate::btree_walker::ScanRange;

/// A detached, resumable range scan over a [`BTreeIndex`].
///
/// Feed it the tree at each [`next_chunk`](Self::next_chunk) call; the
/// cursor holds no borrow in between, so the tree may be mutated (under
/// the caller's write lock) between chunks.
#[derive(Clone, Debug)]
pub struct ResumableScan {
    lo: u64,
    hi: u64,
    remaining: usize,
    desc: bool,
    /// Saved position: ascending, the next slot to emit; descending,
    /// the number of candidate slots left in the leaf (next emission at
    /// `slot - 1`). Valid iff the leaf's version still matches.
    hint: Option<(u32, usize, u64)>,
    /// Last key handed out — the re-descent boundary after a version
    /// mismatch.
    last_key: Option<u64>,
    done: bool,
    /// Chunks that resumed via a matching version (no re-descent).
    exact_resumes: u64,
    /// Chunks that had to re-descend from the root.
    redescents: u64,
}

impl ResumableScan {
    /// A cursor over `range`, positioned before the first match.
    #[must_use]
    pub fn new(range: ScanRange) -> ResumableScan {
        ResumableScan {
            lo: range.lo,
            hi: range.hi,
            remaining: range.limit,
            desc: range.desc,
            hint: None,
            last_key: None,
            done: range.is_empty(),
            exact_resumes: 0,
            redescents: 0,
        }
    }

    /// Whether the scan has emitted everything it ever will.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Entries still allowed under the scan's limit.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// How many chunks resumed exactly (saved version still valid).
    #[must_use]
    pub fn exact_resumes(&self) -> u64 {
        self.exact_resumes
    }

    /// How many chunks re-descended after a version mismatch.
    #[must_use]
    pub fn redescents(&self) -> u64 {
        self.redescents
    }

    /// Emits up to `max` further matches into `out`, returning how many
    /// were emitted. The caller must hold the tree stable (e.g. a read
    /// lock plus an epoch pin) for the duration of the call; between
    /// calls the tree may be mutated freely.
    pub fn next_chunk(
        &mut self,
        tree: &BTreeIndex,
        max: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        if self.done || max == 0 {
            return 0;
        }
        let start = self.position(tree);
        let Some((mut leaf, mut slot)) = start else {
            self.done = true;
            return 0;
        };
        let mut emitted = 0usize;
        loop {
            let (keys, payloads) = tree.leaf_entries(leaf);
            if self.desc {
                while slot > 0 {
                    if emitted == max {
                        self.hint = Some((leaf, slot, tree.leaf_version(leaf)));
                        return emitted;
                    }
                    let key = keys[slot - 1];
                    if key < self.lo {
                        self.done = true;
                        return emitted;
                    }
                    out.push((key, payloads[slot - 1]));
                    self.last_key = Some(key);
                    self.remaining -= 1;
                    emitted += 1;
                    slot -= 1;
                    if self.remaining == 0 {
                        self.done = true;
                        return emitted;
                    }
                }
                match tree.leaf_prev(leaf) {
                    Some(prev) => {
                        leaf = prev;
                        slot = tree.leaf_entries(leaf).0.len();
                    }
                    None => {
                        self.done = true;
                        return emitted;
                    }
                }
            } else {
                while slot < keys.len() {
                    if emitted == max {
                        self.hint = Some((leaf, slot, tree.leaf_version(leaf)));
                        return emitted;
                    }
                    let key = keys[slot];
                    if key > self.hi {
                        self.done = true;
                        return emitted;
                    }
                    out.push((key, payloads[slot]));
                    self.last_key = Some(key);
                    self.remaining -= 1;
                    emitted += 1;
                    slot += 1;
                    if self.remaining == 0 {
                        self.done = true;
                        return emitted;
                    }
                }
                match tree.leaf_next(leaf) {
                    Some(next) => {
                        leaf = next;
                        slot = 0;
                    }
                    None => {
                        self.done = true;
                        return emitted;
                    }
                }
            }
        }
    }

    /// Where to continue: the saved hint if its version still holds,
    /// otherwise a fresh descent past the last emitted key. `None`
    /// means the scan is over.
    fn position(&mut self, tree: &BTreeIndex) -> Option<(u32, usize)> {
        if let Some((leaf, slot, version)) = self.hint.take() {
            if (leaf as usize) < tree.leaf_count() && tree.leaf_version(leaf) == version {
                self.exact_resumes += 1;
                return Some((leaf, slot));
            }
        }
        if self.last_key.is_some() {
            self.redescents += 1;
        }
        if self.desc {
            let hi = match self.last_key {
                None => self.hi,
                Some(k) => k.checked_sub(1)?,
            };
            if hi < self.lo {
                return None;
            }
            let leaf = descend(tree, hi, true);
            let slot = tree.leaf_entries(leaf).0.partition_point(|k| *k <= hi);
            Some((leaf, slot))
        } else {
            let lo = match self.last_key {
                None => self.lo,
                Some(k) => k.checked_add(1)?,
            };
            if lo > self.hi {
                return None;
            }
            let leaf = descend(tree, lo, false);
            let slot = tree.leaf_entries(leaf).0.partition_point(|k| *k < lo);
            Some((leaf, slot))
        }
    }
}

/// Root-to-leaf descent over the public accessors — `upper` lands on
/// the rightmost leaf whose range can reach `key`, otherwise the
/// leftmost (chain walking covers stale-separator slack either way).
fn descend(tree: &BTreeIndex, key: u64, upper: bool) -> u32 {
    if tree.inner_level_count() == 0 {
        return tree.first_leaf();
    }
    let mut node = 0u32;
    for depth in 0..tree.inner_level_count() {
        let keys = tree.inner_keys(depth, node);
        let slot = if upper {
            keys.partition_point(|k| *k <= key)
        } else {
            keys.partition_point(|k| *k < key)
        };
        node = tree.inner_child(depth, node, slot);
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_chunked(tree: &BTreeIndex, range: ScanRange, chunk: usize) -> Vec<(u64, u64)> {
        let mut cursor = ResumableScan::new(range);
        let mut out = Vec::new();
        while !cursor.is_done() {
            let n = cursor.next_chunk(tree, chunk, &mut out);
            if n == 0 && cursor.is_done() {
                break;
            }
        }
        out
    }

    #[test]
    fn chunked_scan_matches_oracle_in_both_directions() {
        let tree = BTreeIndex::build(4, (0..800u64).map(|k| (k * 3, k)));
        for chunk in [1usize, 7, 64, 10_000] {
            for (lo, hi) in [(0, u64::MAX), (100, 1000), (301, 301), (900, 100)] {
                let asc = collect_chunked(&tree, ScanRange::new(lo, hi), chunk);
                assert_eq!(asc, tree.range_scan(lo, hi, usize::MAX), "asc {lo}..{hi}");
                let desc = collect_chunked(&tree, ScanRange::new(lo, hi).descending(), chunk);
                assert_eq!(
                    desc,
                    tree.range_scan_desc(lo, hi, usize::MAX),
                    "desc {lo}..{hi}"
                );
            }
        }
    }

    #[test]
    fn limit_spans_chunks() {
        let tree = BTreeIndex::build(8, (0..500u64).map(|k| (k, k)));
        let got = collect_chunked(&tree, ScanRange::new(10, 400).with_limit(33), 10);
        assert_eq!(got, tree.range_scan(10, 400, 33));
    }

    #[test]
    fn untouched_tree_resumes_exactly() {
        let tree = BTreeIndex::build(4, (0..400u64).map(|k| (k, k)));
        let mut cursor = ResumableScan::new(ScanRange::new(0, u64::MAX));
        let mut out = Vec::new();
        while !cursor.is_done() {
            cursor.next_chunk(&tree, 16, &mut out);
        }
        assert_eq!(cursor.redescents(), 0, "no mutation, no re-descent");
        assert!(cursor.exact_resumes() > 0);
    }

    #[test]
    fn mutation_behind_the_cursor_does_not_disturb_it() {
        let mut tree = BTreeIndex::build(4, (500..1000u64).map(|k| (k, k)));
        let mut cursor = ResumableScan::new(ScanRange::new(500, u64::MAX));
        let mut out = Vec::new();
        cursor.next_chunk(&tree, 100, &mut out);
        // Churn keys strictly below the cursor: splits/merges there may
        // invalidate the saved leaf, but resumed output stays exact for
        // the untouched tail.
        for k in 0..400u64 {
            tree.insert(k, k);
        }
        for k in 0..400u64 {
            if k % 2 == 0 {
                tree.delete(k);
            }
        }
        while !cursor.is_done() {
            cursor.next_chunk(&tree, 100, &mut out);
        }
        assert_eq!(out, (500..1000u64).map(|k| (k, k)).collect::<Vec<_>>());
    }

    #[test]
    fn version_mismatch_redescends_without_loss_of_stable_keys() {
        let mut tree = BTreeIndex::build(4, (0..300u64).map(|k| (k * 2, k)));
        let mut cursor = ResumableScan::new(ScanRange::new(0, u64::MAX));
        let mut out = Vec::new();
        while !cursor.is_done() {
            cursor.next_chunk(&tree, 25, &mut out);
            // Insert an *odd* key right where the cursor paused: the
            // saved leaf's version changes, forcing a re-descent.
            if let Some((last, _)) = out.last().copied() {
                if !cursor.is_done() {
                    tree.insert(last + 1, 9000 + last);
                }
            }
        }
        assert!(cursor.redescents() > 0, "churn forced re-descents");
        // Every original (even) key is emitted exactly once, in order.
        let evens: Vec<(u64, u64)> = out.iter().copied().filter(|(k, _)| k % 2 == 0).collect();
        assert_eq!(evens, (0..300u64).map(|k| (k * 2, k)).collect::<Vec<_>>());
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0), "scan order kept");
    }

    #[test]
    fn degenerate_ranges_finish_immediately() {
        let tree = BTreeIndex::build(4, (0..50u64).map(|k| (k, k)));
        for range in [
            ScanRange::new(9, 3),
            ScanRange::new(0, 10).with_limit(0),
            ScanRange::new(9, 3).descending(),
        ] {
            let mut cursor = ResumableScan::new(range);
            assert!(cursor.is_done());
            let mut out = Vec::new();
            assert_eq!(cursor.next_chunk(&tree, 10, &mut out), 0);
            assert!(out.is_empty());
        }
    }
}
