//! # widx-isa — the Widx custom RISC instruction set
//!
//! This crate implements the minimalistic ISA of the Widx indexing
//! accelerator (Table 1 of *Meet the Walkers*, MICRO 2013). Every Widx
//! unit — the hashing **dispatcher** (`H`), the node-list **walkers**
//! (`W`), and the **output producer** (`P`) — is a tiny 2-stage RISC core
//! executing programs written in this ISA.
//!
//! The crate provides:
//!
//! * [`Instruction`] — the instruction set itself, with the paper's
//!   mnemonics (`ADD`, `AND`, `BA`, `BLE`, `CMP`, `CMP-LE`, `LD`, `SHL`,
//!   `SHR`, `ST`, `TOUCH`, `XOR` and the fused `ADD-SHF` / `AND-SHF` /
//!   `XOR-SHF` forms), plus an explicit `HALT` that models the
//!   "unit done" status-register write implied by the paper's
//!   configuration interface.
//! * [`Reg`] — the 32 software-exposed registers, including the
//!   architectural queue ports [`Reg::IN`] / [`Reg::OUT`] used for
//!   decoupled inter-unit communication and the hardwired zero register
//!   [`Reg::ZERO`].
//! * [`UnitClass`] — dispatcher / walker / producer classes and the
//!   per-class instruction permission matrix from Table 1.
//! * [`Program`] and [`ProgramBuilder`] — containers for unit programs
//!   (instructions + initial register image, as loaded from the Widx
//!   control block) and a label-aware builder API.
//! * [`encode`](Instruction::encode) / [`decode`](Instruction::decode) —
//!   a fixed 32-bit binary encoding, used to serialize programs into the
//!   in-memory Widx control block.
//! * [`asm`] — a small text assembler / disassembler for writing unit
//!   programs by hand.
//! * [`verify`](Program::verify) — the static checks the Widx programming
//!   model imposes (Section 4.2 of the paper): no stores outside the
//!   producer, fused-op restrictions per unit class, register budget, no
//!   stack or dynamic memory (structurally impossible here), branch
//!   targets in range.
//!
//! # Example
//!
//! ```
//! use widx_isa::{ProgramBuilder, Reg, Src, UnitClass};
//!
//! # fn main() -> Result<(), widx_isa::VerifyError> {
//! // A walker fragment: follow `next` pointers until NULL.
//! let mut b = ProgramBuilder::new(UnitClass::Walker);
//! let done = b.new_label();
//! let head = b.new_label();
//! b.bind(head);
//! b.ble(Reg::R4, Src::Imm(0), done);          // node == NULL => done
//! b.ld_d(Reg::R5, Reg::R4, 0);                // key = node->key
//! b.ld_d(Reg::R4, Reg::R4, 8);                // node = node->next
//! b.ba(head);
//! b.bind(done);
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.len(), 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod asm_impl;
mod builder;
mod encode;
mod inst;
mod program;
mod reg;
mod unit_class;
mod verify;

pub use builder::{Label, ProgramBuilder};
pub use encode::{DecodeError, EncodeError};
pub use inst::{Instruction, Opcode, Shift, ShiftDir, Src, Width};
pub use program::{Program, ProgramDecodeError, RegImage};
pub use reg::Reg;
pub use unit_class::UnitClass;
pub use verify::VerifyError;

/// Text assembler / disassembler for Widx unit programs.
pub mod asm {
    pub use crate::asm_impl::{assemble, disassemble, AsmError};
}
