use std::fmt;

use crate::encode::EncodeError;
use crate::{DecodeError, Instruction, Reg, UnitClass, VerifyError};

/// The initial register image of a unit, loaded from the Widx control
/// block before execution begins.
///
/// The paper notes that the units' "relatively large number of registers
/// is necessary for storing the constants used in key hashing"; those
/// constants, along with pointers such as the hash-table base, arrive via
/// this image (Section 4.3's configuration interface).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RegImage {
    values: Vec<(Reg, u64)>,
}

impl RegImage {
    /// An empty register image (all registers zero).
    #[must_use]
    pub fn new() -> RegImage {
        RegImage::default()
    }

    /// Sets the initial value of `reg`, replacing any earlier value.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is the zero register or a queue port; those have
    /// hardwired semantics and cannot hold configuration constants.
    pub fn set(&mut self, reg: Reg, value: u64) -> &mut RegImage {
        assert!(
            !reg.is_zero() && !reg.is_in_port() && !reg.is_out_port(),
            "register {reg} cannot be initialized"
        );
        if let Some(slot) = self.values.iter_mut().find(|(r, _)| *r == reg) {
            slot.1 = value;
        } else {
            self.values.push((reg, value));
        }
        self
    }

    /// The initial value of `reg` (zero when unset).
    #[must_use]
    pub fn get(&self, reg: Reg) -> u64 {
        self.values
            .iter()
            .find(|(r, _)| *r == reg)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Iterates over the explicitly initialized registers.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, u64)> + '_ {
        self.values.iter().copied()
    }

    /// Number of explicitly initialized registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no register is explicitly initialized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Materializes the full 32-register file.
    #[must_use]
    pub fn to_register_file(&self) -> [u64; Reg::COUNT] {
        let mut file = [0u64; Reg::COUNT];
        for (r, v) in &self.values {
            file[r.index()] = *v;
        }
        file
    }
}

impl FromIterator<(Reg, u64)> for RegImage {
    fn from_iter<I: IntoIterator<Item = (Reg, u64)>>(iter: I) -> RegImage {
        let mut image = RegImage::new();
        for (r, v) in iter {
            image.set(r, v);
        }
        image
    }
}

/// A verified Widx unit program: instructions plus the initial register
/// image, tagged with the [`UnitClass`] it may run on.
///
/// Construct programs with [`ProgramBuilder`](crate::ProgramBuilder), the
/// [`asm`](crate::asm) module, or [`Program::from_parts`]; all three run
/// the static verifier, so a `Program` in hand is always well-formed for
/// its unit class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    class: UnitClass,
    code: Vec<Instruction>,
    init: RegImage,
}

impl Program {
    /// Builds and verifies a program from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the program violates the Widx
    /// programming model (see [`Program::verify`]).
    pub fn from_parts(
        class: UnitClass,
        code: Vec<Instruction>,
        init: RegImage,
    ) -> Result<Program, VerifyError> {
        let program = Program { class, code, init };
        program.verify()?;
        Ok(program)
    }

    /// The unit class this program targets.
    #[must_use]
    pub fn class(&self) -> UnitClass {
        self.class
    }

    /// The instruction sequence.
    #[must_use]
    pub fn code(&self) -> &[Instruction] {
        &self.code
    }

    /// The initial register image.
    #[must_use]
    pub fn init(&self) -> &RegImage {
        &self.init
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Re-runs the static verifier (see [`crate::VerifyError`] for the
    /// checked rules). Programs built through this crate's constructors
    /// are already verified; this is exposed for tests and tooling.
    ///
    /// # Errors
    ///
    /// Returns the first rule violation found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        crate::verify::verify(self.class, &self.code)
    }

    /// Encodes the program into 32-bit words for the Widx control block.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when a field exceeds its encoding width
    /// (possible for very long programs with distant branches).
    pub fn encode_words(&self) -> Result<Vec<u32>, EncodeError> {
        self.code
            .iter()
            .enumerate()
            .map(|(pc, inst)| inst.encode(pc as u32))
            .collect()
    }

    /// Decodes a program from control-block words and verifies it.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramDecodeError`] wrapping either the word-level
    /// decode failure or the subsequent verification failure.
    pub fn decode_words(
        class: UnitClass,
        words: &[u32],
        init: RegImage,
    ) -> Result<Program, ProgramDecodeError> {
        let code = words
            .iter()
            .enumerate()
            .map(|(pc, w)| Instruction::decode(*w, pc as u32))
            .collect::<Result<Vec<_>, _>>()
            .map_err(ProgramDecodeError::Decode)?;
        Program::from_parts(class, code, init).map_err(ProgramDecodeError::Verify)
    }

    /// Renders the program as assembler text (see [`crate::asm`]).
    #[must_use]
    pub fn to_text(&self) -> String {
        crate::asm_impl::disassemble(self)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Error decoding a program from control-block words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramDecodeError {
    /// A word failed to decode.
    Decode(DecodeError),
    /// The decoded instruction stream failed verification.
    Verify(VerifyError),
}

impl fmt::Display for ProgramDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramDecodeError::Decode(e) => write!(f, "decode: {e}"),
            ProgramDecodeError::Verify(e) => write!(f, "verify: {e}"),
        }
    }
}

impl std::error::Error for ProgramDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Src};

    fn sample_code() -> Vec<Instruction> {
        vec![
            Instruction::Alu {
                op: Opcode::Add,
                rd: Reg::R1,
                rs1: Reg::R1,
                src2: Src::Imm(1),
            },
            Instruction::Ble {
                rs1: Reg::R1,
                src2: Src::Imm(10),
                target: 0,
            },
            Instruction::Halt,
        ]
    }

    #[test]
    fn reg_image_set_get() {
        let mut img = RegImage::new();
        img.set(Reg::R5, 42).set(Reg::R6, 7).set(Reg::R5, 43);
        assert_eq!(img.get(Reg::R5), 43);
        assert_eq!(img.get(Reg::R6), 7);
        assert_eq!(img.get(Reg::R7), 0);
        assert_eq!(img.len(), 2);
        let file = img.to_register_file();
        assert_eq!(file[5], 43);
        assert_eq!(file[0], 0);
    }

    #[test]
    #[should_panic(expected = "cannot be initialized")]
    fn reg_image_rejects_ports() {
        RegImage::new().set(Reg::IN, 1);
    }

    #[test]
    #[should_panic(expected = "cannot be initialized")]
    fn reg_image_rejects_zero() {
        RegImage::new().set(Reg::ZERO, 1);
    }

    #[test]
    fn from_parts_verifies() {
        let p = Program::from_parts(UnitClass::Walker, sample_code(), RegImage::new()).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.class(), UnitClass::Walker);

        // ST is not allowed in a walker.
        let bad = vec![Instruction::St {
            rs: Reg::R1,
            base: Reg::R2,
            offset: 0,
            width: crate::Width::D,
        }];
        assert!(Program::from_parts(UnitClass::Walker, bad, RegImage::new()).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = Program::from_parts(UnitClass::Walker, sample_code(), RegImage::new()).unwrap();
        let words = p.encode_words().unwrap();
        let back = Program::decode_words(UnitClass::Walker, &words, RegImage::new()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn reg_image_from_iterator() {
        let img: RegImage = [(Reg::R1, 10u64), (Reg::R2, 20u64)].into_iter().collect();
        assert_eq!(img.get(Reg::R1), 10);
        assert_eq!(img.get(Reg::R2), 20);
    }
}
