use std::fmt;

use crate::Opcode;

/// The role a Widx unit plays in the accelerator pipeline of Figure 6.
///
/// Widx is built from one **dispatcher** (`H` in the paper's figures) that
/// hashes input keys, several **walkers** (`W`) that traverse hash-table
/// node lists, and one **output producer** (`P`) that writes match results
/// to memory. All three share the same 2-stage RISC datapath; they differ
/// only in which instructions they may execute (Table 1) and in how their
/// queues are wired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitClass {
    /// The key-hashing dispatcher (`H`).
    Dispatcher,
    /// A node-list walker (`W`).
    Walker,
    /// The output producer (`P`).
    Producer,
}

impl UnitClass {
    /// All unit classes in pipeline order.
    pub const ALL: [UnitClass; 3] = [
        UnitClass::Dispatcher,
        UnitClass::Walker,
        UnitClass::Producer,
    ];

    /// The single-letter tag used by the paper (`H`, `W`, `P`).
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            UnitClass::Dispatcher => 'H',
            UnitClass::Walker => 'W',
            UnitClass::Producer => 'P',
        }
    }

    /// Whether this unit class may execute `op`, per Table 1 of the paper.
    ///
    /// The matrix:
    ///
    /// | Instruction | H | W | P |
    /// |---|---|---|---|
    /// | `ADD AND BA BLE CMP CMP-LE LD SHL SHR TOUCH XOR` (+`HALT`) | ✓ | ✓ | ✓ |
    /// | `ST` | | | ✓ |
    /// | `ADD-SHF` | ✓ | ✓ | |
    /// | `AND-SHF` | ✓ | | |
    /// | `XOR-SHF` | ✓ | | |
    #[must_use]
    pub fn allows(self, op: Opcode) -> bool {
        match op {
            Opcode::St => self == UnitClass::Producer,
            Opcode::AddShf => matches!(self, UnitClass::Dispatcher | UnitClass::Walker),
            Opcode::AndShf | Opcode::XorShf => self == UnitClass::Dispatcher,
            _ => true,
        }
    }

    /// The opcodes this unit class may execute, in [`Opcode::ALL`] order.
    pub fn allowed_opcodes(self) -> impl Iterator<Item = Opcode> {
        Opcode::ALL.into_iter().filter(move |op| self.allows(*op))
    }
}

impl fmt::Display for UnitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitClass::Dispatcher => write!(f, "dispatcher"),
            UnitClass::Walker => write!(f, "walker"),
            UnitClass::Producer => write!(f, "producer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Table 1 matrix, asserted cell by cell.
    #[test]
    fn table_1_matrix() {
        use Opcode::*;
        use UnitClass::*;
        let common = [
            Add, And, Ba, Ble, Cmp, CmpLe, Ld, Shl, Shr, Touch, Xor, Halt,
        ];
        for class in UnitClass::ALL {
            for op in common {
                assert!(class.allows(op), "{class} should allow {op}");
            }
        }
        assert!(!Dispatcher.allows(St));
        assert!(!Walker.allows(St));
        assert!(Producer.allows(St));

        assert!(Dispatcher.allows(AddShf));
        assert!(Walker.allows(AddShf));
        assert!(!Producer.allows(AddShf));

        assert!(Dispatcher.allows(AndShf));
        assert!(!Walker.allows(AndShf));
        assert!(!Producer.allows(AndShf));

        assert!(Dispatcher.allows(XorShf));
        assert!(!Walker.allows(XorShf));
        assert!(!Producer.allows(XorShf));
    }

    #[test]
    fn allowed_opcode_counts() {
        // 12 common + 3 fused = 15 for the dispatcher; walker loses
        // AND-SHF/XOR-SHF; producer gains ST but loses all fused forms.
        assert_eq!(UnitClass::Dispatcher.allowed_opcodes().count(), 15);
        assert_eq!(UnitClass::Walker.allowed_opcodes().count(), 13);
        assert_eq!(UnitClass::Producer.allowed_opcodes().count(), 13);
    }

    #[test]
    fn letters() {
        assert_eq!(UnitClass::Dispatcher.letter(), 'H');
        assert_eq!(UnitClass::Walker.letter(), 'W');
        assert_eq!(UnitClass::Producer.letter(), 'P');
    }
}
