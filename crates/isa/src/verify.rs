//! Static verification of Widx unit programs.
//!
//! The Widx programming model (paper Section 4.2) is deliberately
//! restricted: "no dynamic memory allocation, no stack, and no writes
//! except by the output producer", plus the per-unit instruction matrix of
//! Table 1 and the fixed register budget. Dynamic allocation and stacks
//! are structurally impossible in this ISA (there are no call or
//! stack-pointer-relative instructions); the remaining rules are checked
//! here.

use std::error::Error;
use std::fmt;

use crate::inst::{Instruction, Opcode};
use crate::UnitClass;

/// A violation of the Widx programming model found by the static
/// verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// An instruction not permitted for the unit class (Table 1).
    OpcodeNotAllowed {
        /// The offending instruction's index.
        pc: usize,
        /// Its opcode.
        op: Opcode,
        /// The unit class being verified.
        class: UnitClass,
    },
    /// A branch target outside the program.
    BranchOutOfRange {
        /// The branch instruction's index.
        pc: usize,
        /// The out-of-range target.
        target: u32,
        /// The program length.
        len: usize,
    },
    /// More than one read of the input-queue port in a single instruction;
    /// the port pops once per read, so the value would be ambiguous.
    MultipleInPortReads {
        /// The offending instruction's index.
        pc: usize,
    },
    /// The input-queue port used as a memory base register; queue words
    /// must be moved to a general register before addressing with them.
    InPortAsBase {
        /// The offending instruction's index.
        pc: usize,
    },
    /// One instruction both pops the input queue and pushes the output
    /// queue. The two operations cannot be made atomic against queue
    /// stalls in a 2-stage pipeline, so the programming model forbids
    /// the combination.
    PopPushConflict {
        /// The offending instruction's index.
        pc: usize,
    },
    /// The program is empty; a unit must at least `HALT`.
    Empty,
    /// The program exceeds the unit's instruction buffer.
    TooLong {
        /// The program length.
        len: usize,
        /// The instruction-buffer capacity.
        max: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::OpcodeNotAllowed { pc, op, class } => {
                write!(
                    f,
                    "instruction {pc}: {op} is not allowed on a {class} unit (Table 1)"
                )
            }
            VerifyError::BranchOutOfRange { pc, target, len } => {
                write!(
                    f,
                    "instruction {pc}: branch target {target} outside program of length {len}"
                )
            }
            VerifyError::MultipleInPortReads { pc } => {
                write!(
                    f,
                    "instruction {pc}: multiple reads of the input-queue port"
                )
            }
            VerifyError::InPortAsBase { pc } => {
                write!(
                    f,
                    "instruction {pc}: input-queue port used as memory base register"
                )
            }
            VerifyError::PopPushConflict { pc } => {
                write!(
                    f,
                    "instruction {pc}: pops the input queue and pushes the output queue"
                )
            }
            VerifyError::Empty => write!(f, "program is empty"),
            VerifyError::TooLong { len, max } => {
                write!(
                    f,
                    "program of {len} instructions exceeds the {max}-entry instruction buffer"
                )
            }
        }
    }
}

impl Error for VerifyError {}

/// Capacity of a unit's instruction buffer.
///
/// The paper sizes the instruction buffer for real indexing functions
/// ("our analysis with several contemporary DBMSs shows that, in practice,
/// this restriction is not a concern"); 256 entries is generous for every
/// program in this repository while still being small hardware.
pub const MAX_PROGRAM_LEN: usize = 256;

/// Verifies `code` against the programming-model rules for `class`.
///
/// # Errors
///
/// Returns the first violated rule; see [`VerifyError`].
pub fn verify(class: UnitClass, code: &[Instruction]) -> Result<(), VerifyError> {
    if code.is_empty() {
        return Err(VerifyError::Empty);
    }
    if code.len() > MAX_PROGRAM_LEN {
        return Err(VerifyError::TooLong {
            len: code.len(),
            max: MAX_PROGRAM_LEN,
        });
    }
    for (pc, inst) in code.iter().enumerate() {
        let op = inst.opcode();
        if !class.allows(op) {
            return Err(VerifyError::OpcodeNotAllowed { pc, op, class });
        }
        if let Some(target) = inst.branch_target() {
            if target as usize >= code.len() {
                return Err(VerifyError::BranchOutOfRange {
                    pc,
                    target,
                    len: code.len(),
                });
            }
        }
        if inst.in_port_reads() > 1 {
            return Err(VerifyError::MultipleInPortReads { pc });
        }
        if inst.in_port_reads() == 1 && inst.writes_out_port() {
            return Err(VerifyError::PopPushConflict { pc });
        }
        match inst {
            Instruction::Ld { base, .. }
            | Instruction::St { base, .. }
            | Instruction::Touch { base, .. }
                if base.is_in_port() =>
            {
                return Err(VerifyError::InPortAsBase { pc });
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Src, Width};
    use crate::Reg;

    fn alu(op: Opcode, rd: Reg, rs1: Reg, src2: Src) -> Instruction {
        Instruction::Alu { op, rd, rs1, src2 }
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(verify(UnitClass::Walker, &[]), Err(VerifyError::Empty));
    }

    #[test]
    fn st_only_on_producer() {
        let code = [
            Instruction::St {
                rs: Reg::R1,
                base: Reg::R2,
                offset: 0,
                width: Width::D,
            },
            Instruction::Halt,
        ];
        assert!(verify(UnitClass::Producer, &code).is_ok());
        assert!(matches!(
            verify(UnitClass::Walker, &code),
            Err(VerifyError::OpcodeNotAllowed { op: Opcode::St, .. })
        ));
        assert!(verify(UnitClass::Dispatcher, &code).is_err());
    }

    #[test]
    fn fused_ops_per_class() {
        let xor_shf = Instruction::AluShf {
            op: Opcode::XorShf,
            rd: Reg::R1,
            rs1: Reg::R1,
            rs2: Reg::R1,
            shift: crate::Shift::right(33),
        };
        let code = [xor_shf, Instruction::Halt];
        assert!(verify(UnitClass::Dispatcher, &code).is_ok());
        assert!(verify(UnitClass::Walker, &code).is_err());
        assert!(verify(UnitClass::Producer, &code).is_err());
    }

    #[test]
    fn branch_bounds() {
        let code = [Instruction::Ba { target: 2 }, Instruction::Halt];
        assert!(matches!(
            verify(UnitClass::Walker, &code),
            Err(VerifyError::BranchOutOfRange {
                pc: 0,
                target: 2,
                len: 2
            })
        ));
        let ok = [Instruction::Ba { target: 1 }, Instruction::Halt];
        assert!(verify(UnitClass::Walker, &ok).is_ok());
    }

    #[test]
    fn double_pop_rejected() {
        let code = [
            alu(Opcode::Add, Reg::R1, Reg::IN, Src::Reg(Reg::IN)),
            Instruction::Halt,
        ];
        assert!(matches!(
            verify(UnitClass::Walker, &code),
            Err(VerifyError::MultipleInPortReads { pc: 0 })
        ));
    }

    #[test]
    fn in_port_base_rejected() {
        let code = [
            Instruction::Ld {
                rd: Reg::R1,
                base: Reg::IN,
                offset: 0,
                width: Width::D,
            },
            Instruction::Halt,
        ];
        assert!(matches!(
            verify(UnitClass::Walker, &code),
            Err(VerifyError::InPortAsBase { pc: 0 })
        ));
    }

    #[test]
    fn too_long_rejected() {
        let code: Vec<Instruction> =
            std::iter::repeat_n(Instruction::Halt, MAX_PROGRAM_LEN + 1).collect();
        assert!(matches!(
            verify(UnitClass::Walker, &code),
            Err(VerifyError::TooLong { .. })
        ));
    }

    #[test]
    fn pop_push_conflict_rejected() {
        let code = [
            alu(Opcode::Add, Reg::OUT, Reg::IN, Src::Imm(0)),
            Instruction::Halt,
        ];
        assert!(matches!(
            verify(UnitClass::Walker, &code),
            Err(VerifyError::PopPushConflict { pc: 0 })
        ));
    }

    #[test]
    fn single_pop_allowed() {
        let code = [
            alu(Opcode::Add, Reg::R1, Reg::IN, Src::Imm(0)),
            alu(Opcode::Add, Reg::R2, Reg::IN, Src::Imm(0)),
            Instruction::Halt,
        ];
        assert!(verify(UnitClass::Walker, &code).is_ok());
    }
}
