//! Text assembler / disassembler for Widx unit programs.
//!
//! The format is line-oriented:
//!
//! ```text
//! ; walker inner loop (comments start with ';' or '#')
//! .reg r20 = 0xff51afd7ed558ccd     ; initial register image entry
//! loop:
//!     ble r4, 0, done               ; node == NULL?
//!     ld.d r5, [r4+0]               ; node->key
//!     cmp r9, r5, r3
//!     ble r9, 0, next               ; no match
//!     add out, r5, 0                ; emit
//! next:
//!     ld.d r4, [r4+8]               ; node->next
//!     ba loop
//! done:
//!     halt
//! ```
//!
//! Registers are written `r0`..`r29`, with `in` and `out` accepted as
//! aliases for the queue ports `r30`/`r31`. Loads and stores use
//! `ld.b/.h/.w/.d` and `st.*` with `[base+offset]` operands. Fused shifts
//! take a trailing `<<n` or `>>n` operand.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::inst::{Instruction, Opcode, Shift, Src, Width};
use crate::{Program, Reg, RegImage, UnitClass, VerifyError};

/// Error produced by [`assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A branch referenced an undefined label.
    UndefinedLabel {
        /// 1-based line number of the branch.
        line: usize,
        /// The label name.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// 1-based line number of the second definition.
        line: usize,
        /// The label name.
        label: String,
    },
    /// The assembled program failed static verification.
    Verify(VerifyError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Parse { line, message } => write!(f, "line {line}: {message}"),
            AsmError::UndefinedLabel { line, label } => {
                write!(f, "line {line}: undefined label `{label}`")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
            AsmError::Verify(e) => write!(f, "verify: {e}"),
        }
    }
}

impl Error for AsmError {}

impl From<VerifyError> for AsmError {
    fn from(e: VerifyError) -> AsmError {
        AsmError::Verify(e)
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let err = || AsmError::Parse {
        line,
        message: format!("expected register, found `{tok}`"),
    };
    match tok {
        "in" => return Ok(Reg::IN),
        "out" => return Ok(Reg::OUT),
        _ => {}
    }
    let rest = tok.strip_prefix('r').ok_or_else(err)?;
    let idx: u8 = rest.parse().map_err(|_| err())?;
    Reg::try_new(idx).ok_or_else(err)
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let err = || AsmError::Parse {
        line,
        message: format!("expected integer, found `{tok}`"),
    };
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err())?
    } else {
        body.parse::<i64>().map_err(|_| err())?
    };
    Ok(if neg { -value } else { value })
}

fn parse_src(tok: &str, line: usize) -> Result<Src, AsmError> {
    if tok == "in"
        || tok == "out"
        || tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit())
    {
        Ok(Src::Reg(parse_reg(tok, line)?))
    } else {
        let v = parse_int(tok, line)?;
        let imm = i16::try_from(v)
            .ok()
            .filter(|i| Src::imm_fits(*i))
            .ok_or(AsmError::Parse {
                line,
                message: format!("immediate {v} out of range"),
            })?;
        Ok(Src::Imm(imm))
    }
}

/// Parses `[base+offset]` / `[base-offset]` / `[base]`.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i16), AsmError> {
    let err = |m: &str| AsmError::Parse {
        line,
        message: format!("{m} in `{tok}`"),
    };
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err("expected [base+offset]"))?;
    let (base_str, off) = if let Some(pos) = inner.rfind(['+', '-']) {
        if pos == 0 {
            (inner, 0i64)
        } else {
            let (b, o) = inner.split_at(pos);
            (b, parse_int(o, line)?)
        }
    } else {
        (inner, 0)
    };
    let base = parse_reg(base_str.trim(), line)?;
    let offset = i16::try_from(off)
        .ok()
        .filter(|o| (-2048..=2047).contains(o))
        .ok_or_else(|| err("offset out of range"))?;
    Ok((base, offset))
}

fn parse_shift(tok: &str, line: usize) -> Result<Shift, AsmError> {
    let err = || AsmError::Parse {
        line,
        message: format!("expected <<n or >>n, found `{tok}`"),
    };
    let (dir, body) = if let Some(rest) = tok.strip_prefix("<<") {
        (crate::ShiftDir::Left, rest)
    } else if let Some(rest) = tok.strip_prefix(">>") {
        (crate::ShiftDir::Right, rest)
    } else {
        return Err(err());
    };
    let amount: u8 = body.parse().map_err(|_| err())?;
    if amount >= 64 {
        return Err(err());
    }
    Ok(Shift { dir, amount })
}

/// Splits an operand list on commas, trimming whitespace.
fn operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

enum PendingTarget {
    None,
    Label(String),
}

/// Assembles `text` into a verified [`Program`] for `class`.
///
/// # Errors
///
/// Returns [`AsmError`] describing the first parse, label, or
/// verification problem.
pub fn assemble(class: UnitClass, text: &str) -> Result<Program, AsmError> {
    let mut init = RegImage::new();
    let mut code: Vec<Instruction> = Vec::new();
    let mut pending: Vec<(usize, usize, String)> = Vec::new(); // (pc, line, label)
    let mut labels: HashMap<String, u32> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw;
        if let Some(pos) = s.find([';', '#']) {
            s = &s[..pos];
        }
        let mut s = s.trim();
        if s.is_empty() {
            continue;
        }
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = s.find(':') {
            let (label, rest) = s.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            if labels
                .insert(label.to_string(), code.len() as u32)
                .is_some()
            {
                return Err(AsmError::DuplicateLabel {
                    line,
                    label: label.to_string(),
                });
            }
            s = rest[1..].trim();
        }
        if s.is_empty() {
            continue;
        }
        // Directives.
        if let Some(rest) = s.strip_prefix(".reg") {
            let parts: Vec<&str> = rest.splitn(2, '=').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(AsmError::Parse {
                    line,
                    message: "expected `.reg rN = value`".into(),
                });
            }
            let reg = parse_reg(parts[0], line)?;
            let value = parse_u64(parts[1], line)?;
            init.set(reg, value);
            continue;
        }
        // Instruction.
        let (mnemonic, rest) = match s.find(char::is_whitespace) {
            Some(pos) => (&s[..pos], s[pos..].trim()),
            None => (s, ""),
        };
        let ops = operands(rest);
        let expect = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmError::Parse {
                    line,
                    message: format!("{mnemonic} expects {n} operands, found {}", ops.len()),
                })
            }
        };
        let mut target = PendingTarget::None;
        let inst = match mnemonic {
            "add" | "and" | "xor" | "shl" | "shr" | "cmp" | "cmp-le" => {
                expect(3)?;
                let op = match mnemonic {
                    "add" => Opcode::Add,
                    "and" => Opcode::And,
                    "xor" => Opcode::Xor,
                    "shl" => Opcode::Shl,
                    "shr" => Opcode::Shr,
                    "cmp" => Opcode::Cmp,
                    _ => Opcode::CmpLe,
                };
                Instruction::Alu {
                    op,
                    rd: parse_reg(ops[0], line)?,
                    rs1: parse_reg(ops[1], line)?,
                    src2: parse_src(ops[2], line)?,
                }
            }
            "add-shf" | "and-shf" | "xor-shf" => {
                expect(4)?;
                let op = match mnemonic {
                    "add-shf" => Opcode::AddShf,
                    "and-shf" => Opcode::AndShf,
                    _ => Opcode::XorShf,
                };
                Instruction::AluShf {
                    op,
                    rd: parse_reg(ops[0], line)?,
                    rs1: parse_reg(ops[1], line)?,
                    rs2: parse_reg(ops[2], line)?,
                    shift: parse_shift(ops[3], line)?,
                }
            }
            "ba" => {
                expect(1)?;
                target = PendingTarget::Label(ops[0].to_string());
                Instruction::Ba { target: 0 }
            }
            "ble" => {
                expect(3)?;
                target = PendingTarget::Label(ops[2].to_string());
                Instruction::Ble {
                    rs1: parse_reg(ops[0], line)?,
                    src2: parse_src(ops[1], line)?,
                    target: 0,
                }
            }
            "touch" => {
                expect(1)?;
                let (base, offset) = parse_mem(ops[0], line)?;
                Instruction::Touch { base, offset }
            }
            "halt" => {
                expect(0)?;
                Instruction::Halt
            }
            m if m.starts_with("ld.") || m.starts_with("st.") => {
                expect(2)?;
                let width = match &m[3..] {
                    "b" => Width::B,
                    "h" => Width::H,
                    "w" => Width::W,
                    "d" => Width::D,
                    other => {
                        return Err(AsmError::Parse {
                            line,
                            message: format!("unknown width suffix `.{other}`"),
                        })
                    }
                };
                let r = parse_reg(ops[0], line)?;
                let (base, offset) = parse_mem(ops[1], line)?;
                if m.starts_with("ld.") {
                    Instruction::Ld {
                        rd: r,
                        base,
                        offset,
                        width,
                    }
                } else {
                    Instruction::St {
                        rs: r,
                        base,
                        offset,
                        width,
                    }
                }
            }
            other => {
                return Err(AsmError::Parse {
                    line,
                    message: format!("unknown mnemonic `{other}`"),
                })
            }
        };
        if let PendingTarget::Label(l) = target {
            pending.push((code.len(), line, l));
        }
        code.push(inst);
    }

    for (pc, line, label) in pending {
        let target = *labels.get(&label).ok_or(AsmError::UndefinedLabel {
            line,
            label: label.clone(),
        })?;
        code[pc] = code[pc].with_branch_target(target);
    }

    Ok(Program::from_parts(class, code, init)?)
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, AsmError> {
    let err = || AsmError::Parse {
        line,
        message: format!("expected unsigned integer, found `{tok}`"),
    };
    if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| err())
    } else {
        tok.parse::<u64>().map_err(|_| err())
    }
}

/// Renders a program as assembler text accepted by [`assemble`].
///
/// Branch targets become synthesized labels `L0`, `L1`, … in target
/// order; the initial register image is emitted as `.reg` directives.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;

    let mut targets: Vec<u32> = program
        .code()
        .iter()
        .filter_map(Instruction::branch_target)
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |t: u32| format!("L{}", targets.binary_search(&t).expect("target collected"));

    let mut out = String::new();
    for (reg, value) in program.init().iter() {
        let _ = writeln!(out, ".reg {reg} = {value:#x}");
    }
    for (pc, inst) in program.code().iter().enumerate() {
        if targets.binary_search(&(pc as u32)).is_ok() {
            let _ = writeln!(out, "{}:", label_of(pc as u32));
        }
        match inst {
            Instruction::Ba { target } => {
                let _ = writeln!(out, "    ba {}", label_of(*target));
            }
            Instruction::Ble { rs1, src2, target } => {
                let _ = writeln!(out, "    ble {rs1}, {src2}, {}", label_of(*target));
            }
            other => {
                let _ = writeln!(out, "    {other}");
            }
        }
    }
    // Labels pointing one past the last instruction are impossible: the
    // verifier bounds branch targets to existing instructions.
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const WALKER_SRC: &str = "
; walker: traverse a node list emitting matches
.reg r3 = 0x7777
loop:
    ble r4, 0, done
    ld.d r5, [r4+0]
    cmp r9, r5, r3
    ble r9, 0, next
    add out, r5, 0
next:
    ld.d r4, [r4+8]
    ba loop
done:
    halt
";

    #[test]
    fn assemble_walker() {
        let p = assemble(UnitClass::Walker, WALKER_SRC).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p.init().get(Reg::R3), 0x7777);
        assert_eq!(p.code()[0].branch_target(), Some(7));
        assert_eq!(p.code()[3].branch_target(), Some(5));
        assert_eq!(p.code()[6].branch_target(), Some(0));
    }

    #[test]
    fn disassemble_round_trip() {
        let p = assemble(UnitClass::Walker, WALKER_SRC).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(UnitClass::Walker, &text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn undefined_label_reported() {
        let err = assemble(UnitClass::Walker, "ba nowhere\nhalt\n").unwrap_err();
        assert!(matches!(err, AsmError::UndefinedLabel { label, .. } if label == "nowhere"));
    }

    #[test]
    fn duplicate_label_reported() {
        let err = assemble(UnitClass::Walker, "x:\nhalt\nx:\nhalt\n").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateLabel { label, .. } if label == "x"));
    }

    #[test]
    fn unknown_mnemonic_reported() {
        let err = assemble(UnitClass::Walker, "mul r1, r2, r3\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { line: 1, .. }));
    }

    #[test]
    fn class_violation_reported() {
        let err = assemble(UnitClass::Walker, "st.d r1, [r2+0]\nhalt\n").unwrap_err();
        assert!(matches!(err, AsmError::Verify(_)));
    }

    #[test]
    fn fused_and_mem_syntax() {
        let src = "
    xor-shf r1, r2, r3, >>33
    add-shf r4, r5, r6, <<3
    touch [r7+64]
    ld.w r8, [r9-4]
    halt
";
        let p = assemble(UnitClass::Dispatcher, src).unwrap();
        assert_eq!(p.len(), 5);
        let text = disassemble(&p);
        let p2 = assemble(UnitClass::Dispatcher, &text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn negative_offsets_and_hex() {
        let p = assemble(
            UnitClass::Producer,
            ".reg r1 = 0xff\nst.d r2, [r1-8]\nhalt\n",
        )
        .unwrap();
        assert_eq!(p.init().get(Reg::R1), 0xff);
        match p.code()[0] {
            Instruction::St { offset, .. } => assert_eq!(offset, -8),
            _ => panic!("expected store"),
        }
    }

    #[test]
    fn in_out_aliases() {
        let p = assemble(UnitClass::Walker, "add r1, in, 0\nadd out, r1, 0\nhalt\n").unwrap();
        assert_eq!(p.code()[0].sources(), vec![Reg::IN]);
        assert!(p.code()[1].writes_out_port());
    }
}
