//! Fixed 32-bit binary encoding of Widx instructions.
//!
//! Programs are shipped to the accelerator through the in-memory *Widx
//! control block* (paper Section 4.3): the host writes the encoded
//! instruction words and initial register values to consecutive virtual
//! addresses, and Widx loads them through the host core's MMU. The
//! encoding below is this repository's concrete realization of that
//! format.
//!
//! Field layout (bit ranges are `[lo..hi)`, LSB = 0):
//!
//! ```text
//! all      op[28..32)
//! ALU      rd[23..28) rs1[18..23) immflag[17] rs2[12..17) | imm12[0..12)
//! ALU-SHF  rd[23..28) rs1[18..23) rs2[13..18) dir[12] shamt[6..12)
//! BA       rel16[0..16)                    (signed, PC-relative)
//! BLE      rs1[18..23) immflag[17] rs2[8..13) | imm8[8..16)  rel8[0..8)
//! LD/ST    r[23..28) base[18..23) width[16..18) off12[0..12)
//! TOUCH    base[18..23) off12[0..12)
//! HALT     (no fields)
//! ```
//!
//! Branch *targets* in [`Instruction`] are absolute instruction indices;
//! the encoding stores them PC-relative (the paper's units use relative
//! branch addressing — it is called out as the critical path of the
//! 2-stage pipeline).

use std::error::Error;
use std::fmt;

use crate::inst::{Instruction, Opcode, Shift, ShiftDir, Src, Width};
use crate::Reg;

/// Error produced when an instruction's fields do not fit the binary
/// encoding (out-of-range immediate, offset, or branch displacement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodeError {
    what: &'static str,
    value: i64,
    range: (i64, i64),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} does not fit encoding range {}..={}",
            self.what, self.value, self.range.0, self.range.1
        )
    }
}

impl Error for EncodeError {}

/// Error produced when decoding a malformed instruction word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name an instruction.
    BadOpcode(u32),
    /// A PC-relative displacement pointed before instruction 0.
    NegativeTarget {
        /// The PC of the branch being decoded.
        pc: u32,
        /// The decoded displacement.
        rel: i32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "invalid opcode field {op:#x}"),
            DecodeError::NegativeTarget { pc, rel } => {
                write!(
                    f,
                    "branch at pc {pc} with displacement {rel} targets a negative index"
                )
            }
        }
    }
}

impl Error for DecodeError {}

fn op_code(op: Opcode) -> u32 {
    Opcode::ALL
        .iter()
        .position(|o| *o == op)
        .expect("opcode in ALL") as u32
}

fn op_from_code(code: u32) -> Option<Opcode> {
    Opcode::ALL.get(code as usize).copied()
}

fn field(word: u32, lo: u32, bits: u32) -> u32 {
    (word >> lo) & ((1 << bits) - 1)
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn check(what: &'static str, value: i64, lo: i64, hi: i64) -> Result<i64, EncodeError> {
    if (lo..=hi).contains(&value) {
        Ok(value)
    } else {
        Err(EncodeError {
            what,
            value,
            range: (lo, hi),
        })
    }
}

fn rel_from(pc: u32, target: u32) -> i64 {
    i64::from(target) - i64::from(pc)
}

impl Instruction {
    /// Encodes the instruction into its 32-bit word form.
    ///
    /// `pc` is the absolute index of this instruction within its program;
    /// branch targets are stored relative to it.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when an immediate, offset, shift amount, or
    /// branch displacement exceeds its field width.
    pub fn encode(&self, pc: u32) -> Result<u32, EncodeError> {
        let op = op_code(self.opcode()) << 28;
        match *self {
            Instruction::Alu { rd, rs1, src2, .. } => {
                let mut w = op | ((rd.index() as u32) << 23) | ((rs1.index() as u32) << 18);
                match src2 {
                    Src::Reg(r) => w |= (r.index() as u32) << 12,
                    Src::Imm(i) => {
                        let v = check("immediate", i64::from(i), -2048, 2047)?;
                        w |= 1 << 17;
                        w |= (v as u32) & 0xfff;
                    }
                }
                Ok(w)
            }
            Instruction::AluShf {
                rd,
                rs1,
                rs2,
                shift,
                ..
            } => {
                let dir = match shift.dir {
                    ShiftDir::Left => 0,
                    ShiftDir::Right => 1,
                };
                Ok(op
                    | ((rd.index() as u32) << 23)
                    | ((rs1.index() as u32) << 18)
                    | ((rs2.index() as u32) << 13)
                    | (dir << 12)
                    | ((shift.amount as u32) << 6))
            }
            Instruction::Ba { target } => {
                let rel = check("branch displacement", rel_from(pc, target), -32768, 32767)?;
                Ok(op | ((rel as u32) & 0xffff))
            }
            Instruction::Ble { rs1, src2, target } => {
                let rel = check("branch displacement", rel_from(pc, target), -128, 127)?;
                let mut w = op | ((rs1.index() as u32) << 18) | ((rel as u32) & 0xff);
                match src2 {
                    Src::Reg(r) => w |= (r.index() as u32) << 8,
                    Src::Imm(i) => {
                        let v = check("immediate", i64::from(i), -128, 127)?;
                        w |= 1 << 17;
                        w |= ((v as u32) & 0xff) << 8;
                    }
                }
                Ok(w)
            }
            Instruction::Ld {
                rd,
                base,
                offset,
                width,
            } => {
                let off = check("offset", i64::from(offset), -2048, 2047)?;
                Ok(op
                    | ((rd.index() as u32) << 23)
                    | ((base.index() as u32) << 18)
                    | (width.code() << 16)
                    | ((off as u32) & 0xfff))
            }
            Instruction::St {
                rs,
                base,
                offset,
                width,
            } => {
                let off = check("offset", i64::from(offset), -2048, 2047)?;
                Ok(op
                    | ((rs.index() as u32) << 23)
                    | ((base.index() as u32) << 18)
                    | (width.code() << 16)
                    | ((off as u32) & 0xfff))
            }
            Instruction::Touch { base, offset } => {
                let off = check("offset", i64::from(offset), -2048, 2047)?;
                Ok(op | ((base.index() as u32) << 18) | ((off as u32) & 0xfff))
            }
            Instruction::Halt => Ok(op),
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// `pc` is the absolute index the word was fetched from; it is used to
    /// reconstruct absolute branch targets from stored displacements.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for an unknown opcode field or a branch
    /// displacement that points before instruction 0.
    pub fn decode(word: u32, pc: u32) -> Result<Instruction, DecodeError> {
        let opcode =
            op_from_code(field(word, 28, 4)).ok_or(DecodeError::BadOpcode(field(word, 28, 4)))?;
        let reg = |lo: u32| Reg::new(field(word, lo, 5) as u8);
        let abs_target = |rel: i32| -> Result<u32, DecodeError> {
            let t = i64::from(pc) + i64::from(rel);
            u32::try_from(t).map_err(|_| DecodeError::NegativeTarget { pc, rel })
        };
        match opcode {
            Opcode::Add
            | Opcode::And
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::Cmp
            | Opcode::CmpLe => {
                let src2 = if field(word, 17, 1) == 1 {
                    Src::Imm(sext(field(word, 0, 12), 12) as i16)
                } else {
                    Src::Reg(reg(12))
                };
                Ok(Instruction::Alu {
                    op: opcode,
                    rd: reg(23),
                    rs1: reg(18),
                    src2,
                })
            }
            Opcode::AddShf | Opcode::AndShf | Opcode::XorShf => {
                let dir = if field(word, 12, 1) == 1 {
                    ShiftDir::Right
                } else {
                    ShiftDir::Left
                };
                Ok(Instruction::AluShf {
                    op: opcode,
                    rd: reg(23),
                    rs1: reg(18),
                    rs2: reg(13),
                    shift: Shift {
                        dir,
                        amount: field(word, 6, 6) as u8,
                    },
                })
            }
            Opcode::Ba => {
                let rel = sext(field(word, 0, 16), 16);
                Ok(Instruction::Ba {
                    target: abs_target(rel)?,
                })
            }
            Opcode::Ble => {
                let rel = sext(field(word, 0, 8), 8);
                let src2 = if field(word, 17, 1) == 1 {
                    Src::Imm(sext(field(word, 8, 8), 8) as i16)
                } else {
                    Src::Reg(reg(8))
                };
                Ok(Instruction::Ble {
                    rs1: reg(18),
                    src2,
                    target: abs_target(rel)?,
                })
            }
            Opcode::Ld => Ok(Instruction::Ld {
                rd: reg(23),
                base: reg(18),
                offset: sext(field(word, 0, 12), 12) as i16,
                width: Width::from_code(field(word, 16, 2)),
            }),
            Opcode::St => Ok(Instruction::St {
                rs: reg(23),
                base: reg(18),
                offset: sext(field(word, 0, 12), 12) as i16,
                width: Width::from_code(field(word, 16, 2)),
            }),
            Opcode::Touch => Ok(Instruction::Touch {
                base: reg(18),
                offset: sext(field(word, 0, 12), 12) as i16,
            }),
            Opcode::Halt => Ok(Instruction::Halt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(inst: Instruction, pc: u32) {
        let word = inst.encode(pc).expect("encode");
        let back = Instruction::decode(word, pc).expect("decode");
        assert_eq!(inst, back, "round trip at pc {pc} (word {word:#010x})");
    }

    #[test]
    fn alu_reg_round_trip() {
        round_trip(
            Instruction::Alu {
                op: Opcode::Add,
                rd: Reg::R3,
                rs1: Reg::R1,
                src2: Src::Reg(Reg::OUT),
            },
            0,
        );
    }

    #[test]
    fn alu_imm_extremes() {
        for imm in [-2048i16, -1, 0, 1, 2047] {
            round_trip(
                Instruction::Alu {
                    op: Opcode::Xor,
                    rd: Reg::R9,
                    rs1: Reg::IN,
                    src2: Src::Imm(imm),
                },
                5,
            );
        }
    }

    #[test]
    fn alu_imm_overflow_errors() {
        let i = Instruction::Alu {
            op: Opcode::Add,
            rd: Reg::R1,
            rs1: Reg::R1,
            src2: Src::Imm(2048),
        };
        assert!(i.encode(0).is_err());
    }

    #[test]
    fn fused_shift_round_trip() {
        for (dir, amount) in [
            (ShiftDir::Left, 0u8),
            (ShiftDir::Right, 33),
            (ShiftDir::Left, 63),
        ] {
            round_trip(
                Instruction::AluShf {
                    op: Opcode::XorShf,
                    rd: Reg::R1,
                    rs1: Reg::R2,
                    rs2: Reg::R3,
                    shift: Shift { dir, amount },
                },
                9,
            );
        }
    }

    #[test]
    fn branch_round_trips() {
        round_trip(Instruction::Ba { target: 0 }, 100);
        round_trip(Instruction::Ba { target: 200 }, 100);
        round_trip(
            Instruction::Ble {
                rs1: Reg::R4,
                src2: Src::Imm(0),
                target: 3,
            },
            10,
        );
        round_trip(
            Instruction::Ble {
                rs1: Reg::R4,
                src2: Src::Reg(Reg::R5),
                target: 130,
            },
            10,
        );
    }

    #[test]
    fn branch_out_of_range_errors() {
        // BLE has only 8 bits of displacement.
        let b = Instruction::Ble {
            rs1: Reg::R1,
            src2: Src::Imm(0),
            target: 1000,
        };
        assert!(b.encode(0).is_err());
        // BA has 16 bits of signed displacement.
        let ba = Instruction::Ba { target: 30000 };
        assert!(ba.encode(0).is_ok());
        let ba_far = Instruction::Ba { target: 40000 };
        assert!(ba_far.encode(0).is_err());
    }

    #[test]
    fn negative_displacement_decode() {
        // A backwards branch from pc 50 to 40.
        let w = Instruction::Ba { target: 40 }.encode(50).unwrap();
        assert_eq!(
            Instruction::decode(w, 50).unwrap(),
            Instruction::Ba { target: 40 }
        );
        // The same word decoded at pc 5 would target -5: error.
        assert!(matches!(
            Instruction::decode(w, 5),
            Err(DecodeError::NegativeTarget { .. })
        ));
    }

    #[test]
    fn memory_round_trips() {
        for off in [-2048i16, -64, 0, 8, 2047] {
            for width in Width::ALL {
                round_trip(
                    Instruction::Ld {
                        rd: Reg::R5,
                        base: Reg::R4,
                        offset: off,
                        width,
                    },
                    0,
                );
                round_trip(
                    Instruction::St {
                        rs: Reg::R5,
                        base: Reg::R4,
                        offset: off,
                        width,
                    },
                    0,
                );
            }
            round_trip(
                Instruction::Touch {
                    base: Reg::R2,
                    offset: off,
                },
                0,
            );
        }
    }

    #[test]
    fn halt_round_trip() {
        round_trip(Instruction::Halt, 1234);
    }

    #[test]
    fn bad_opcode_rejected() {
        // No opcode uses no-op high bits beyond ALL's length.
        assert!(Instruction::decode(u32::MAX, 0).is_err() || op_from_code(0xf).is_some());
    }
}
