use std::fmt;

use crate::Reg;

/// Access width of a memory instruction.
///
/// The paper's programming model must support "a variety of ... data
/// types" (Section 4.2) — e.g. the hash-join kernel of the evaluation uses
/// 4-byte keys while MonetDB columns use 8-byte object identifiers — so
/// `LD`/`ST` carry an explicit width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Width {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    #[default]
    D,
}

impl Width {
    /// The number of bytes transferred.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            Width::B => 1,
            Width::H => 2,
            Width::W => 4,
            Width::D => 8,
        }
    }

    /// All widths, smallest first.
    pub const ALL: [Width; 4] = [Width::B, Width::H, Width::W, Width::D];

    pub(crate) fn code(self) -> u32 {
        match self {
            Width::B => 0,
            Width::H => 1,
            Width::W => 2,
            Width::D => 3,
        }
    }

    pub(crate) fn from_code(code: u32) -> Width {
        match code & 0b11 {
            0 => Width::B,
            1 => Width::H,
            2 => Width::W,
            _ => Width::D,
        }
    }

    /// The assembler suffix (`.b`, `.h`, `.w`, `.d`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Width::B => ".b",
            Width::H => ".h",
            Width::W => ".w",
            Width::D => ".d",
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Direction of the shift embedded in a fused `*-SHF` instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShiftDir {
    /// Logical shift left.
    Left,
    /// Logical shift right.
    Right,
}

/// The shift half of a fused ALU-shift instruction.
///
/// Fused instructions were added to the Widx ISA specifically "to
/// accelerate hash functions" (Section 4.1): robust hash mixers are chains
/// of `x op (x >> k)` steps that would otherwise take two ALU operations
/// each. The three-operand ALU of Figure 7 performs the shift and the
/// logic operation in one pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shift {
    /// Shift direction.
    pub dir: ShiftDir,
    /// Shift amount in bits, `0..64`.
    pub amount: u8,
}

impl Shift {
    /// A left shift by `amount` bits.
    ///
    /// # Panics
    ///
    /// Panics if `amount >= 64`.
    #[must_use]
    pub fn left(amount: u8) -> Shift {
        assert!(amount < 64, "shift amount {amount} out of range (0..64)");
        Shift {
            dir: ShiftDir::Left,
            amount,
        }
    }

    /// A right shift by `amount` bits.
    ///
    /// # Panics
    ///
    /// Panics if `amount >= 64`.
    #[must_use]
    pub fn right(amount: u8) -> Shift {
        assert!(amount < 64, "shift amount {amount} out of range (0..64)");
        Shift {
            dir: ShiftDir::Right,
            amount,
        }
    }

    /// Applies the shift to a value.
    #[must_use]
    pub fn apply(self, value: u64) -> u64 {
        match self.dir {
            ShiftDir::Left => value << self.amount,
            ShiftDir::Right => value >> self.amount,
        }
    }
}

impl fmt::Display for Shift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dir {
            ShiftDir::Left => write!(f, "<<{}", self.amount),
            ShiftDir::Right => write!(f, ">>{}", self.amount),
        }
    }
}

/// Second source operand of an ALU or branch instruction: a register or a
/// sign-extended 12-bit immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Src {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand in `-2048..=2047`.
    Imm(i16),
}

impl Src {
    /// Smallest representable immediate.
    pub const IMM_MIN: i16 = -2048;
    /// Largest representable immediate.
    pub const IMM_MAX: i16 = 2047;

    /// Whether an immediate value fits in the 12-bit encoding.
    #[must_use]
    pub fn imm_fits(value: i16) -> bool {
        (Src::IMM_MIN..=Src::IMM_MAX).contains(&value)
    }

    /// The register, if this operand is a register.
    #[must_use]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Src::Reg(r) => Some(r),
            Src::Imm(_) => None,
        }
    }
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Src {
        Src::Reg(r)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Opcode tags for the Widx ISA (Table 1 plus the `HALT` status write).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Opcode {
    Add,
    And,
    Ba,
    Ble,
    Cmp,
    CmpLe,
    Ld,
    Shl,
    Shr,
    St,
    Touch,
    Xor,
    AddShf,
    AndShf,
    XorShf,
    Halt,
}

impl Opcode {
    /// All opcodes in Table 1 order (with `HALT` appended).
    pub const ALL: [Opcode; 16] = [
        Opcode::Add,
        Opcode::And,
        Opcode::Ba,
        Opcode::Ble,
        Opcode::Cmp,
        Opcode::CmpLe,
        Opcode::Ld,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::St,
        Opcode::Touch,
        Opcode::Xor,
        Opcode::AddShf,
        Opcode::AndShf,
        Opcode::XorShf,
        Opcode::Halt,
    ];

    /// The assembler mnemonic, matching Table 1 of the paper.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::And => "and",
            Opcode::Ba => "ba",
            Opcode::Ble => "ble",
            Opcode::Cmp => "cmp",
            Opcode::CmpLe => "cmp-le",
            Opcode::Ld => "ld",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::St => "st",
            Opcode::Touch => "touch",
            Opcode::Xor => "xor",
            Opcode::AddShf => "add-shf",
            Opcode::AndShf => "and-shf",
            Opcode::XorShf => "xor-shf",
            Opcode::Halt => "halt",
        }
    }

    /// Whether this is one of the fused ALU-shift forms.
    #[must_use]
    pub fn is_fused_shift(self) -> bool {
        matches!(self, Opcode::AddShf | Opcode::AndShf | Opcode::XorShf)
    }

    /// Whether this instruction accesses memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::St | Opcode::Touch)
    }

    /// Whether this instruction may redirect the PC.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Ba | Opcode::Ble)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A Widx instruction.
///
/// Semantics (all arithmetic is on 64-bit unsigned values):
///
/// | Form | Effect |
/// |---|---|
/// | `ADD rd, rs1, src2` | `rd = rs1 + src2` |
/// | `AND rd, rs1, src2` | `rd = rs1 & src2` |
/// | `XOR rd, rs1, src2` | `rd = rs1 ^ src2` |
/// | `SHL rd, rs1, src2` | `rd = rs1 << (src2 & 63)` |
/// | `SHR rd, rs1, src2` | `rd = rs1 >> (src2 & 63)` |
/// | `CMP rd, rs1, src2` | `rd = (rs1 == src2) ? 1 : 0` |
/// | `CMP-LE rd, rs1, src2` | `rd = (rs1 <= src2) ? 1 : 0` |
/// | `BA target` | unconditional relative branch |
/// | `BLE rs1, src2, target` | branch if `rs1 <= src2` |
/// | `LD.w rd, [base + off]` | load `w` bytes, zero-extended |
/// | `ST.w rs, [base + off]` | store low `w` bytes (producer only) |
/// | `TOUCH [base + off]` | non-binding prefetch of the enclosing block |
/// | `ADD-SHF rd, rs1, rs2, sh` | `rd = rs1 + (rs2 SHIFT sh)` |
/// | `AND-SHF rd, rs1, rs2, sh` | `rd = rs1 & (rs2 SHIFT sh)` |
/// | `XOR-SHF rd, rs1, rs2, sh` | `rd = rs1 ^ (rs2 SHIFT sh)` |
/// | `HALT` | unit signals completion to the host |
///
/// Branch targets are *absolute instruction indices* within a
/// [`Program`](crate::Program); the binary encoding stores them
/// PC-relative, matching the paper's note that "the critical path of our
/// design is the branch address calculation with relative addressing".
///
/// Reading [`Reg::IN`] pops the unit's input queue; writing [`Reg::OUT`]
/// pushes its output queue (see [`Reg`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Instruction {
    /// Three-operand ALU operation (`ADD`/`AND`/`XOR`/`SHL`/`SHR`/`CMP`/`CMP-LE`).
    Alu {
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        src2: Src,
    },
    /// Fused ALU + shift (`ADD-SHF`/`AND-SHF`/`XOR-SHF`).
    AluShf {
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        shift: Shift,
    },
    /// Unconditional branch to an absolute instruction index.
    Ba { target: u32 },
    /// Branch to `target` if `rs1 <= src2` (unsigned).
    Ble { rs1: Reg, src2: Src, target: u32 },
    /// Load `width` bytes from `[base + offset]` into `rd` (zero-extended).
    Ld {
        rd: Reg,
        base: Reg,
        offset: i16,
        width: Width,
    },
    /// Store the low `width` bytes of `rs` to `[base + offset]`.
    St {
        rs: Reg,
        base: Reg,
        offset: i16,
        width: Width,
    },
    /// Non-binding prefetch of the cache block containing `[base + offset]`.
    Touch { base: Reg, offset: i16 },
    /// Signal completion of the unit's program.
    Halt,
}

impl Instruction {
    /// Maximum load/store/touch offset (12-bit signed).
    pub const OFFSET_MAX: i16 = 2047;
    /// Minimum load/store/touch offset (12-bit signed).
    pub const OFFSET_MIN: i16 = -2048;

    /// The instruction's opcode tag.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::Alu { op, .. } | Instruction::AluShf { op, .. } => *op,
            Instruction::Ba { .. } => Opcode::Ba,
            Instruction::Ble { .. } => Opcode::Ble,
            Instruction::Ld { .. } => Opcode::Ld,
            Instruction::St { .. } => Opcode::St,
            Instruction::Touch { .. } => Opcode::Touch,
            Instruction::Halt => Opcode::Halt,
        }
    }

    /// The destination register, if the instruction writes one.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instruction::Alu { rd, .. }
            | Instruction::AluShf { rd, .. }
            | Instruction::Ld { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// Source registers read by the instruction (excluding queue-port
    /// semantics, which are a property of the registers themselves).
    #[must_use]
    pub fn sources(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(2);
        match self {
            Instruction::Alu { rs1, src2, .. } => {
                out.push(*rs1);
                if let Src::Reg(r) = src2 {
                    out.push(*r);
                }
            }
            Instruction::AluShf { rs1, rs2, .. } => {
                out.push(*rs1);
                out.push(*rs2);
            }
            Instruction::Ba { .. } => {}
            Instruction::Ble { rs1, src2, .. } => {
                out.push(*rs1);
                if let Src::Reg(r) = src2 {
                    out.push(*r);
                }
            }
            Instruction::Ld { base, .. } => out.push(*base),
            Instruction::St { rs, base, .. } => {
                out.push(*rs);
                out.push(*base);
            }
            Instruction::Touch { base, .. } => out.push(*base),
            Instruction::Halt => {}
        }
        out
    }

    /// The branch target, if the instruction is a branch.
    #[must_use]
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instruction::Ba { target } | Instruction::Ble { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Rewrites the branch target of a branch instruction.
    ///
    /// Returns the instruction unchanged when it is not a branch.
    #[must_use]
    pub fn with_branch_target(self, target: u32) -> Instruction {
        match self {
            Instruction::Ba { .. } => Instruction::Ba { target },
            Instruction::Ble { rs1, src2, .. } => Instruction::Ble { rs1, src2, target },
            other => other,
        }
    }

    /// Number of input-queue pops performed (reads of [`Reg::IN`]).
    #[must_use]
    pub fn in_port_reads(&self) -> usize {
        self.sources().iter().filter(|r| r.is_in_port()).count()
    }

    /// Whether the instruction pushes the output queue (writes [`Reg::OUT`]).
    #[must_use]
    pub fn writes_out_port(&self) -> bool {
        self.dest().is_some_and(Reg::is_out_port)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Alu { op, rd, rs1, src2 } => {
                write!(f, "{op} {rd}, {rs1}, {src2}")
            }
            Instruction::AluShf {
                op,
                rd,
                rs1,
                rs2,
                shift,
            } => {
                write!(f, "{op} {rd}, {rs1}, {rs2}, {shift}")
            }
            Instruction::Ba { target } => write!(f, "ba @{target}"),
            Instruction::Ble { rs1, src2, target } => {
                write!(f, "ble {rs1}, {src2}, @{target}")
            }
            Instruction::Ld {
                rd,
                base,
                offset,
                width,
            } => {
                write!(f, "ld{width} {rd}, [{base}{offset:+}]")
            }
            Instruction::St {
                rs,
                base,
                offset,
                width,
            } => {
                write!(f, "st{width} {rs}, [{base}{offset:+}]")
            }
            Instruction::Touch { base, offset } => write!(f, "touch [{base}{offset:+}]"),
            Instruction::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B.bytes(), 1);
        assert_eq!(Width::H.bytes(), 2);
        assert_eq!(Width::W.bytes(), 4);
        assert_eq!(Width::D.bytes(), 8);
    }

    #[test]
    fn width_code_round_trip() {
        for w in Width::ALL {
            assert_eq!(Width::from_code(w.code()), w);
        }
    }

    #[test]
    fn shift_apply() {
        assert_eq!(Shift::left(4).apply(0b1), 0b10000);
        assert_eq!(Shift::right(4).apply(0b10000), 0b1);
        assert_eq!(Shift::right(63).apply(u64::MAX), 1);
        assert_eq!(Shift::left(0).apply(42), 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shift_rejects_64() {
        let _ = Shift::left(64);
    }

    #[test]
    fn src_imm_fits() {
        assert!(Src::imm_fits(0));
        assert!(Src::imm_fits(2047));
        assert!(Src::imm_fits(-2048));
        assert!(!Src::imm_fits(2048));
        assert!(!Src::imm_fits(-2049));
    }

    #[test]
    fn opcode_classes() {
        assert!(Opcode::AddShf.is_fused_shift());
        assert!(!Opcode::Add.is_fused_shift());
        assert!(Opcode::Ld.is_memory());
        assert!(Opcode::Touch.is_memory());
        assert!(!Opcode::Cmp.is_memory());
        assert!(Opcode::Ba.is_branch());
        assert!(Opcode::Ble.is_branch());
        assert!(!Opcode::Halt.is_branch());
    }

    #[test]
    fn mnemonics_match_table_1() {
        // Spot-check the exact mnemonics listed in Table 1 of the paper.
        assert_eq!(Opcode::CmpLe.mnemonic(), "cmp-le");
        assert_eq!(Opcode::XorShf.mnemonic(), "xor-shf");
        assert_eq!(Opcode::Touch.mnemonic(), "touch");
    }

    #[test]
    fn instruction_dest_and_sources() {
        let i = Instruction::Alu {
            op: Opcode::Add,
            rd: Reg::R3,
            rs1: Reg::R1,
            src2: Src::Reg(Reg::R2),
        };
        assert_eq!(i.dest(), Some(Reg::R3));
        assert_eq!(i.sources(), vec![Reg::R1, Reg::R2]);

        let st = Instruction::St {
            rs: Reg::R4,
            base: Reg::R5,
            offset: 8,
            width: Width::D,
        };
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), vec![Reg::R4, Reg::R5]);
    }

    #[test]
    fn queue_port_detection() {
        let pop = Instruction::Alu {
            op: Opcode::Add,
            rd: Reg::R1,
            rs1: Reg::IN,
            src2: Src::Imm(0),
        };
        assert_eq!(pop.in_port_reads(), 1);
        assert!(!pop.writes_out_port());

        let push = Instruction::Alu {
            op: Opcode::Add,
            rd: Reg::OUT,
            rs1: Reg::R1,
            src2: Src::Imm(0),
        };
        assert!(push.writes_out_port());
        assert_eq!(push.in_port_reads(), 0);
    }

    #[test]
    fn with_branch_target_rewrites() {
        let b = Instruction::Ba { target: 0 };
        assert_eq!(b.with_branch_target(7).branch_target(), Some(7));
        let n = Instruction::Halt;
        assert_eq!(n.with_branch_target(7), Instruction::Halt);
    }

    #[test]
    fn display_formats() {
        let i = Instruction::Ld {
            rd: Reg::R5,
            base: Reg::R4,
            offset: 8,
            width: Width::W,
        };
        assert_eq!(i.to_string(), "ld.w r5, [r4+8]");
        let s = Instruction::AluShf {
            op: Opcode::XorShf,
            rd: Reg::R1,
            rs1: Reg::R2,
            rs2: Reg::R3,
            shift: Shift::right(33),
        };
        assert_eq!(s.to_string(), "xor-shf r1, r2, r3, >>33");
    }
}
