use crate::inst::{Instruction, Opcode, Shift, Src, Width};
use crate::reg::Reg;
use crate::{Program, RegImage, UnitClass, VerifyError};

/// A forward-referenceable instruction label used by [`ProgramBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Label-aware builder for Widx unit programs.
///
/// Branch instructions may reference labels before they are bound;
/// [`ProgramBuilder::build`] patches all targets and runs the static
/// verifier.
///
/// # Example
///
/// ```
/// use widx_isa::{ProgramBuilder, Reg, Src, UnitClass};
///
/// # fn main() -> Result<(), widx_isa::VerifyError> {
/// let mut b = ProgramBuilder::new(UnitClass::Producer);
/// b.init_reg(Reg::R1, 0x1000);        // output cursor
/// let head = b.new_label();
/// b.bind(head);
/// b.add(Reg::R2, Reg::IN, Src::Imm(0));   // pop a result word
/// b.st_d(Reg::R2, Reg::R1, 0);            // store it
/// b.add(Reg::R1, Reg::R1, Src::Imm(8));   // bump cursor
/// b.ba(head);
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    class: UnitClass,
    code: Vec<Instruction>,
    init: RegImage,
    /// For each label id: its bound pc, if bound.
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs awaiting patch.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates a builder for a program targeting `class`.
    #[must_use]
    pub fn new(class: UnitClass) -> ProgramBuilder {
        ProgramBuilder {
            class,
            code: Vec::new(),
            init: RegImage::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// The unit class this builder targets.
    #[must_use]
    pub fn class(&self) -> UnitClass {
        self.class
    }

    /// Current instruction count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instruction has been emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Sets the initial (control-block-loaded) value of a register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is the zero register or a queue port.
    pub fn init_reg(&mut self, reg: Reg, value: u64) -> &mut ProgramBuilder {
        self.init.set(reg, value);
        self
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound or belongs to another builder.
    pub fn bind(&mut self, label: Label) -> &mut ProgramBuilder {
        let slot = self
            .labels
            .get_mut(label.0)
            .expect("label belongs to this builder");
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len() as u32);
        self
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut ProgramBuilder {
        self.code.push(inst);
        self
    }

    fn push_branch(&mut self, inst: Instruction, label: Label) -> &mut ProgramBuilder {
        assert!(label.0 < self.labels.len(), "label belongs to this builder");
        self.fixups.push((self.code.len(), label));
        self.code.push(inst);
        self
    }

    /// Emits `ADD rd, rs1, src2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, src2: Src) -> &mut ProgramBuilder {
        self.push(Instruction::Alu {
            op: Opcode::Add,
            rd,
            rs1,
            src2,
        })
    }

    /// Emits `AND rd, rs1, src2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, src2: Src) -> &mut ProgramBuilder {
        self.push(Instruction::Alu {
            op: Opcode::And,
            rd,
            rs1,
            src2,
        })
    }

    /// Emits `XOR rd, rs1, src2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, src2: Src) -> &mut ProgramBuilder {
        self.push(Instruction::Alu {
            op: Opcode::Xor,
            rd,
            rs1,
            src2,
        })
    }

    /// Emits `SHL rd, rs1, src2`.
    pub fn shl(&mut self, rd: Reg, rs1: Reg, src2: Src) -> &mut ProgramBuilder {
        self.push(Instruction::Alu {
            op: Opcode::Shl,
            rd,
            rs1,
            src2,
        })
    }

    /// Emits `SHR rd, rs1, src2`.
    pub fn shr(&mut self, rd: Reg, rs1: Reg, src2: Src) -> &mut ProgramBuilder {
        self.push(Instruction::Alu {
            op: Opcode::Shr,
            rd,
            rs1,
            src2,
        })
    }

    /// Emits `CMP rd, rs1, src2` (`rd = rs1 == src2`).
    pub fn cmp(&mut self, rd: Reg, rs1: Reg, src2: Src) -> &mut ProgramBuilder {
        self.push(Instruction::Alu {
            op: Opcode::Cmp,
            rd,
            rs1,
            src2,
        })
    }

    /// Emits `CMP-LE rd, rs1, src2` (`rd = rs1 <= src2`).
    pub fn cmp_le(&mut self, rd: Reg, rs1: Reg, src2: Src) -> &mut ProgramBuilder {
        self.push(Instruction::Alu {
            op: Opcode::CmpLe,
            rd,
            rs1,
            src2,
        })
    }

    /// Emits `ADD-SHF rd, rs1, rs2, shift`.
    pub fn add_shf(&mut self, rd: Reg, rs1: Reg, rs2: Reg, shift: Shift) -> &mut ProgramBuilder {
        self.push(Instruction::AluShf {
            op: Opcode::AddShf,
            rd,
            rs1,
            rs2,
            shift,
        })
    }

    /// Emits `AND-SHF rd, rs1, rs2, shift`.
    pub fn and_shf(&mut self, rd: Reg, rs1: Reg, rs2: Reg, shift: Shift) -> &mut ProgramBuilder {
        self.push(Instruction::AluShf {
            op: Opcode::AndShf,
            rd,
            rs1,
            rs2,
            shift,
        })
    }

    /// Emits `XOR-SHF rd, rs1, rs2, shift`.
    pub fn xor_shf(&mut self, rd: Reg, rs1: Reg, rs2: Reg, shift: Shift) -> &mut ProgramBuilder {
        self.push(Instruction::AluShf {
            op: Opcode::XorShf,
            rd,
            rs1,
            rs2,
            shift,
        })
    }

    /// Emits `BA label`.
    pub fn ba(&mut self, label: Label) -> &mut ProgramBuilder {
        self.push_branch(Instruction::Ba { target: 0 }, label)
    }

    /// Emits `BLE rs1, src2, label` (branch if `rs1 <= src2`).
    pub fn ble(&mut self, rs1: Reg, src2: Src, label: Label) -> &mut ProgramBuilder {
        self.push_branch(
            Instruction::Ble {
                rs1,
                src2,
                target: 0,
            },
            label,
        )
    }

    /// Emits `BEQ rs1, rs2, label` as the two-instruction `CMP` +
    /// `BLE 1 <= tmp` idiom, using `tmp` as scratch.
    ///
    /// The Widx ISA has no direct equality branch; this is the canonical
    /// expansion (compare produces 0/1, branch when the flag is 1).
    pub fn beq_via(&mut self, tmp: Reg, rs1: Reg, src2: Src, label: Label) -> &mut ProgramBuilder {
        self.cmp(tmp, rs1, src2);
        self.ble(Reg::new(1), Src::Reg(tmp), label);
        self
    }

    /// Emits a load of `width` bytes.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i16, width: Width) -> &mut ProgramBuilder {
        self.push(Instruction::Ld {
            rd,
            base,
            offset,
            width,
        })
    }

    /// Emits `LD.D rd, [base+offset]`.
    pub fn ld_d(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut ProgramBuilder {
        self.ld(rd, base, offset, Width::D)
    }

    /// Emits `LD.W rd, [base+offset]`.
    pub fn ld_w(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut ProgramBuilder {
        self.ld(rd, base, offset, Width::W)
    }

    /// Emits a store of `width` bytes.
    pub fn st(&mut self, rs: Reg, base: Reg, offset: i16, width: Width) -> &mut ProgramBuilder {
        self.push(Instruction::St {
            rs,
            base,
            offset,
            width,
        })
    }

    /// Emits `ST.D rs, [base+offset]`.
    pub fn st_d(&mut self, rs: Reg, base: Reg, offset: i16) -> &mut ProgramBuilder {
        self.st(rs, base, offset, Width::D)
    }

    /// Emits `ST.W rs, [base+offset]`.
    pub fn st_w(&mut self, rs: Reg, base: Reg, offset: i16) -> &mut ProgramBuilder {
        self.st(rs, base, offset, Width::W)
    }

    /// Emits `TOUCH [base+offset]`.
    pub fn touch(&mut self, base: Reg, offset: i16) -> &mut ProgramBuilder {
        self.push(Instruction::Touch { base, offset })
    }

    /// Emits `HALT`.
    pub fn halt(&mut self) -> &mut ProgramBuilder {
        self.push(Instruction::Halt)
    }

    /// Emits a register move (`ADD rd, rs, 0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut ProgramBuilder {
        self.add(rd, rs, Src::Imm(0))
    }

    /// Emits a small-immediate load (`ADD rd, r0, imm`). Larger constants
    /// belong in the initial register image ([`ProgramBuilder::init_reg`]).
    pub fn li(&mut self, rd: Reg, imm: i16) -> &mut ProgramBuilder {
        self.add(rd, Reg::ZERO, Src::Imm(imm))
    }

    /// Patches branch targets and verifies the finished program.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the program violates the Widx
    /// programming model.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn build(&self) -> Result<Program, VerifyError> {
        let mut code = self.code.clone();
        for (pc, label) in &self.fixups {
            let target = self.labels[label.0].expect("all referenced labels must be bound");
            code[*pc] = code[*pc].with_branch_target(target);
        }
        Program::from_parts(self.class, code, self.init.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        let end = b.new_label();
        let top = b.new_label();
        b.bind(top);
        b.add(Reg::R1, Reg::R1, Src::Imm(1));
        b.ble(Reg::R1, Src::Imm(5), top); // backward
        b.ba(end); // forward
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.code()[1].branch_target(), Some(0));
        assert_eq!(p.code()[2].branch_target(), Some(3));
    }

    #[test]
    #[should_panic(expected = "must be bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        let l = b.new_label();
        b.ba(l);
        b.halt();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        let l = b.new_label();
        b.bind(l);
        b.halt();
        b.bind(l);
    }

    #[test]
    fn class_restrictions_surface_in_build() {
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        b.st_d(Reg::R1, Reg::R2, 0);
        b.halt();
        assert!(b.build().is_err());
    }

    #[test]
    fn beq_via_expansion() {
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        let hit = b.new_label();
        b.beq_via(Reg::R9, Reg::R1, Src::Reg(Reg::R2), hit);
        b.bind(hit);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.code()[0].opcode(), Opcode::Cmp);
        assert_eq!(p.code()[1].opcode(), Opcode::Ble);
    }

    #[test]
    fn init_regs_flow_through() {
        let mut b = ProgramBuilder::new(UnitClass::Dispatcher);
        b.init_reg(Reg::R10, 0xdead_beef);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.init().get(Reg::R10), 0xdead_beef);
    }
}
