use std::fmt;

/// One of the 32 software-exposed registers of a Widx unit.
///
/// The paper motivates the "relatively large number of registers" by the
/// need to hold hashing constants, which are pre-loaded from the Widx
/// control block before execution starts.
///
/// Three registers have architectural meaning:
///
/// * [`Reg::ZERO`] (`r0`) reads as zero; writes are discarded.
/// * [`Reg::IN`]   (`r30`) is the input-queue port: each read pops one
///   64-bit word from the unit's input queue, blocking while it is empty.
/// * [`Reg::OUT`]  (`r31`) is the output-queue port: each write pushes one
///   64-bit word to the unit's output queue, blocking while it is full.
///
/// The queue ports are how the decoupled units of Figure 6 communicate
/// (dispatcher → walkers → output producer) without the ISA of Table 1
/// needing explicit enqueue/dequeue instructions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of software-exposed registers per unit.
    pub const COUNT: usize = 32;

    /// The hardwired zero register (`r0`).
    pub const ZERO: Reg = Reg(0);
    /// The input-queue port (`r30`): reads pop the unit's input queue.
    pub const IN: Reg = Reg(30);
    /// The output-queue port (`r31`): writes push the unit's output queue.
    pub const OUT: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range (0..32)"
        );
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Reg> {
        ((index as usize) < Reg::COUNT).then_some(Reg(index))
    }

    /// The register's index in `0..32`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO
    }

    /// Whether this is the input-queue port.
    #[must_use]
    pub fn is_in_port(self) -> bool {
        self == Reg::IN
    }

    /// Whether this is the output-queue port.
    #[must_use]
    pub fn is_out_port(self) -> bool {
        self == Reg::OUT
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

macro_rules! named_regs {
    ($($name:ident = $idx:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("General-purpose register `r", stringify!($idx), "`.")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

named_regs! {
    R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7, R8 = 8,
    R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22,
    R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::IN => write!(f, "in"),
            Reg::OUT => write!(f, "out"),
            _ => write!(f, "r{}", self.0),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_all_valid_indices() {
        for i in 0..32 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn try_new_boundary() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
        assert!(Reg::try_new(255).is_none());
    }

    #[test]
    fn special_registers() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::IN.is_in_port());
        assert!(Reg::OUT.is_out_port());
        assert!(!Reg::R5.is_zero());
        assert!(!Reg::R5.is_in_port());
        assert!(!Reg::R5.is_out_port());
        assert_eq!(Reg::IN.index(), 30);
        assert_eq!(Reg::OUT.index(), 31);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::ZERO.to_string(), "r0");
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(Reg::IN.to_string(), "in");
        assert_eq!(Reg::OUT.to_string(), "out");
    }

    #[test]
    fn all_yields_32_distinct() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
