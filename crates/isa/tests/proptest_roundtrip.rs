//! Property tests: every representable instruction survives the
//! encode → decode and disassemble → assemble round trips.

use proptest::prelude::*;
use widx_isa::{
    asm, Instruction, Opcode, Program, Reg, RegImage, Shift, ShiftDir, Src, UnitClass, Width,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_gpr() -> impl Strategy<Value = Reg> {
    // A general-purpose register: excludes the queue ports and r0 so the
    // generated instructions are also valid in contexts that restrict
    // port usage (e.g. memory bases).
    (1u8..30).prop_map(Reg::new)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B),
        Just(Width::H),
        Just(Width::W),
        Just(Width::D)
    ]
}

fn arb_shift() -> impl Strategy<Value = Shift> {
    (
        (0u8..64),
        prop_oneof![Just(ShiftDir::Left), Just(ShiftDir::Right)],
    )
        .prop_map(|(amount, dir)| Shift { dir, amount })
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        arb_reg().prop_map(Src::Reg),
        (-2048i16..=2047).prop_map(Src::Imm),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Add),
        Just(Opcode::And),
        Just(Opcode::Xor),
        Just(Opcode::Shl),
        Just(Opcode::Shr),
        Just(Opcode::Cmp),
        Just(Opcode::CmpLe),
    ]
}

fn arb_fused_op() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::AddShf),
        Just(Opcode::AndShf),
        Just(Opcode::XorShf)
    ]
}

/// Instructions whose encodings are pc-independent.
fn arb_straightline() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_src())
            .prop_map(|(op, rd, rs1, src2)| Instruction::Alu { op, rd, rs1, src2 }),
        (arb_fused_op(), arb_reg(), arb_reg(), arb_reg(), arb_shift()).prop_map(
            |(op, rd, rs1, rs2, shift)| Instruction::AluShf {
                op,
                rd,
                rs1,
                rs2,
                shift
            }
        ),
        (arb_reg(), arb_gpr(), -2048i16..=2047, arb_width()).prop_map(
            |(rd, base, offset, width)| Instruction::Ld {
                rd,
                base,
                offset,
                width
            }
        ),
        (arb_reg(), arb_gpr(), -2048i16..=2047, arb_width()).prop_map(
            |(rs, base, offset, width)| Instruction::St {
                rs,
                base,
                offset,
                width
            }
        ),
        (arb_gpr(), -2048i16..=2047).prop_map(|(base, offset)| Instruction::Touch { base, offset }),
        Just(Instruction::Halt),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(inst in arb_straightline(), pc in 0u32..1000) {
        let word = inst.encode(pc).expect("straightline instructions always encode");
        let back = Instruction::decode(word, pc).expect("decode");
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn ba_round_trip(pc in 0u32..200, target in 0u32..200) {
        let inst = Instruction::Ba { target };
        let word = inst.encode(pc).unwrap();
        prop_assert_eq!(Instruction::decode(word, pc).unwrap(), inst);
    }

    #[test]
    fn ble_round_trip(
        pc in 0u32..100,
        delta in -100i32..100,
        rs1 in arb_reg(),
        src2 in prop_oneof![arb_reg().prop_map(Src::Reg), (-128i16..=127).prop_map(Src::Imm)],
    ) {
        let t = i64::from(pc) + i64::from(delta);
        prop_assume!(t >= 0);
        let inst = Instruction::Ble { rs1, src2, target: t as u32 };
        let word = inst.encode(pc).unwrap();
        prop_assert_eq!(Instruction::decode(word, pc).unwrap(), inst);
    }

    /// Any decodable word re-encodes to itself up to canonical field
    /// zeroing (we only assert decode(encode(decode(w))) == decode(w)).
    #[test]
    fn decode_is_stable(word in any::<u32>(), pc in 0u32..64) {
        if let Ok(inst) = Instruction::decode(word, pc) {
            let re = inst.encode(pc).expect("decoded instructions re-encode");
            let inst2 = Instruction::decode(re, pc).expect("re-decode");
            prop_assert_eq!(inst, inst2);
        }
    }
}

/// Builds a random verifiable straight-line program for the given class.
fn arb_program(class: UnitClass) -> impl Strategy<Value = Program> {
    let body = prop::collection::vec(arb_straightline(), 1..40);
    body.prop_filter_map("class-legal programs", move |mut code| {
        code.push(Instruction::Halt);
        Program::from_parts(class, code, RegImage::new()).ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn program_words_round_trip(p in arb_program(UnitClass::Producer)) {
        let words = p.encode_words().unwrap();
        let back = Program::decode_words(UnitClass::Producer, &words, RegImage::new()).unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn disassemble_assemble_fixpoint(p in arb_program(UnitClass::Dispatcher)) {
        let text = asm::disassemble(&p);
        let back = asm::assemble(UnitClass::Dispatcher, &text).expect("reassemble");
        prop_assert_eq!(p, back);
    }
}
