//! Serving telemetry: per-worker throughput/occupancy and service-wide
//! request latency, shaped for the `widx-bench` table machinery.

use std::time::Duration;

/// Counters one shard worker accumulates over its lifetime.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// The worker's shard id.
    pub shard: usize,
    /// Probe jobs (request shard-parts) processed.
    pub jobs: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Keys probed.
    pub keys: u64,
    /// Matches emitted.
    pub matches: u64,
    /// Batches closed because they reached the size target.
    pub size_flushes: u64,
    /// Batches closed by the deadline.
    pub deadline_flushes: u64,
    /// Final partial batches flushed at shutdown.
    pub shutdown_flushes: u64,
    /// Time spent probing (walker running).
    pub busy: Duration,
    /// Time spent waiting for work.
    pub idle: Duration,
}

impl WorkerStats {
    /// Fraction of the worker's lifetime spent probing — the software
    /// analogue of the paper's walker-utilization figure (Figure 5).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let total = self.busy.as_secs_f64() + self.idle.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / total
        }
    }

    /// Keys probed per second of *busy* time (per-walker service rate).
    #[must_use]
    pub fn busy_throughput(&self) -> f64 {
        let busy = self.busy.as_secs_f64();
        if busy == 0.0 {
            0.0
        } else {
            self.keys as f64 / busy
        }
    }

    /// Mean keys per flushed batch.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.keys as f64 / self.batches as f64
        }
    }
}

/// Per-worker latency sample store with bounded memory: systematic
/// decimation keeps at most [`LatencyRecorder::CAP`] samples. Once the
/// store fills, every other retained sample is dropped and the sampling
/// stride doubles, so a service that completes requests indefinitely
/// (the crate's whole point) records evenly spaced samples forever in
/// ~0.5 MB per worker instead of growing without bound. Workers own
/// their recorder — no cross-shard lock on the completion path.
#[derive(Clone, Debug)]
pub(crate) struct LatencyRecorder {
    samples: Vec<u64>,
    stride: u64,
    seen: u64,
}

impl LatencyRecorder {
    /// Maximum retained samples (before stride doubling kicks in).
    const CAP: usize = 1 << 16;

    pub(crate) fn new() -> LatencyRecorder {
        LatencyRecorder {
            samples: Vec::new(),
            stride: 1,
            seen: 0,
        }
    }

    /// Records one completion latency.
    pub(crate) fn record(&mut self, latency: Duration) {
        if self.seen.is_multiple_of(self.stride) {
            let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
            self.samples.push(ns);
            if self.samples.len() >= Self::CAP {
                let mut keep = false;
                self.samples.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.seen = self.seen.wrapping_add(1);
    }

    /// Completions observed (recorded or not).
    pub(crate) fn seen(&self) -> u64 {
        self.seen
    }

    pub(crate) fn into_samples(self) -> Vec<u64> {
        self.samples
    }
}

/// Order statistics over per-request completion latencies.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Completed requests measured.
    pub count: usize,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds — the tail the network
    /// tier's idle/tail experiments watch (a lost completion wakeup
    /// shows up here long before it moves the p99).
    pub p999_ns: u64,
    /// Smallest observed latency in nanoseconds.
    pub min_ns: u64,
    /// Largest observed latency in nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes a sample set (nanoseconds). Percentiles use the
    /// nearest-rank method.
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let rank = |p: f64| -> u64 {
            let idx = ((p * count as f64).ceil() as usize).clamp(1, count) - 1;
            samples[idx]
        };
        LatencySummary {
            count,
            mean_ns: samples.iter().map(|s| *s as f64).sum::<f64>() / count as f64,
            p50_ns: rank(0.50),
            p95_ns: rank(0.95),
            p99_ns: rank(0.99),
            p999_ns: rank(0.999),
            min_ns: samples[0],
            max_ns: samples[count - 1],
        }
    }
}

/// Counters for the network front-end tier (`widx-net`), when the
/// service is exposed over a socket. The serving crate defines the
/// shape so [`ServiceStats`] can carry it without depending on the
/// network layer; the `widx-net` server fills it in and attaches it via
/// [`ServiceStats::with_net`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Well-formed request frames decoded.
    pub frames_in: u64,
    /// Reply frames written (responses *and* error frames).
    pub frames_out: u64,
    /// Requests refused with a `Busy` error frame — either a shard
    /// queue at capacity or a connection over its in-flight cap.
    pub busy_rejects: u64,
    /// Frames that failed to decode (bad version/opcode/payload).
    pub decode_errors: u64,
}

impl NetStats {
    /// Whether any traffic was observed at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == NetStats::default()
    }
}

/// Everything the service measured, returned by
/// [`ProbeService::shutdown`](crate::ProbeService::shutdown).
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Per-worker counters for the point-probe (hash) tier, in shard
    /// order. `keys` counts probe keys.
    pub workers: Vec<WorkerStats>,
    /// Per-worker counters for the ordered (range-scan) tier, in shard
    /// order — empty on services built without one. `keys` counts scan
    /// cursors fed; `matches` counts entries emitted.
    pub range_workers: Vec<WorkerStats>,
    /// Completion-latency summary across every finished request (both
    /// tiers).
    pub latency: LatencySummary,
    /// Network front-end counters — all zero unless a `widx-net` server
    /// snapshot was attached with [`ServiceStats::with_net`].
    pub net: NetStats,
    /// Wall-clock time from service start to shutdown completion.
    pub wall: Duration,
}

impl ServiceStats {
    /// Attaches a network-tier snapshot (from `widx_net::WidxServer`) to
    /// the service's own counters, completing the full serving picture:
    /// sockets → frames → queues → walkers.
    #[must_use]
    pub fn with_net(mut self, net: NetStats) -> ServiceStats {
        self.net = net;
        self
    }

    /// Total keys probed across point-probe workers.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.workers.iter().map(|w| w.keys).sum()
    }

    /// Total matches across point-probe workers.
    #[must_use]
    pub fn total_matches(&self) -> u64 {
        self.workers.iter().map(|w| w.matches).sum()
    }

    /// Total scan cursors driven across range workers (one per shard a
    /// scan's interval overlapped).
    #[must_use]
    pub fn total_scan_cursors(&self) -> u64 {
        self.range_workers.iter().map(|w| w.keys).sum()
    }

    /// Total entries emitted across range workers (before any gather
    /// truncation at the request's `limit`).
    #[must_use]
    pub fn total_scan_entries(&self) -> u64 {
        self.range_workers.iter().map(|w| w.matches).sum()
    }

    /// Service-level throughput: keys probed per wall-clock second.
    #[must_use]
    pub fn wall_throughput(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.total_keys() as f64 / wall
        }
    }

    /// Service-level scan throughput: entries emitted per wall-clock
    /// second.
    #[must_use]
    pub fn scan_throughput(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.total_scan_entries() as f64 / wall
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_rates() {
        let w = WorkerStats {
            shard: 0,
            jobs: 10,
            batches: 4,
            keys: 100,
            matches: 80,
            busy: Duration::from_millis(30),
            idle: Duration::from_millis(10),
            ..WorkerStats::default()
        };
        assert!((w.occupancy() - 0.75).abs() < 1e-9);
        assert!((w.mean_batch() - 25.0).abs() < 1e-9);
        assert!((w.busy_throughput() - 100.0 / 0.03).abs() < 1e-6);
    }

    #[test]
    fn empty_worker_is_all_zeroes() {
        let w = WorkerStats::default();
        assert_eq!(w.occupancy(), 0.0);
        assert_eq!(w.busy_throughput(), 0.0);
        assert_eq!(w.mean_batch(), 0.0);
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.p999_ns, 100, "nearest rank rounds 99.9 up");
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_of_empty_sample_set() {
        let s = LatencySummary::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn recorder_keeps_everything_below_cap() {
        let mut r = LatencyRecorder::new();
        for i in 0..1000u64 {
            r.record(Duration::from_nanos(i));
        }
        assert_eq!(r.seen(), 1000);
        assert_eq!(r.into_samples(), (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recorder_bounds_memory_and_keeps_spread() {
        let mut r = LatencyRecorder::new();
        let n = (LatencyRecorder::CAP as u64) * 4;
        for i in 0..n {
            r.record(Duration::from_nanos(i));
        }
        assert_eq!(r.seen(), n);
        let samples = r.into_samples();
        assert!(
            samples.len() < LatencyRecorder::CAP,
            "decimated: {}",
            samples.len()
        );
        assert!(!samples.is_empty());
        // Samples still span the full range, not just the warm-up.
        assert!(
            *samples.last().unwrap() > n * 3 / 4,
            "tail retained: {}",
            samples.last().unwrap()
        );
    }

    #[test]
    fn service_totals() {
        let stats = ServiceStats {
            workers: vec![
                WorkerStats {
                    keys: 60,
                    matches: 50,
                    ..WorkerStats::default()
                },
                WorkerStats {
                    keys: 40,
                    matches: 30,
                    ..WorkerStats::default()
                },
            ],
            range_workers: vec![WorkerStats {
                keys: 6,
                matches: 90,
                ..WorkerStats::default()
            }],
            latency: LatencySummary::default(),
            net: NetStats::default(),
            wall: Duration::from_secs(2),
        };
        assert_eq!(stats.total_keys(), 100);
        assert_eq!(stats.total_matches(), 80);
        assert_eq!(stats.total_scan_cursors(), 6);
        assert_eq!(stats.total_scan_entries(), 90);
        assert!((stats.wall_throughput() - 50.0).abs() < 1e-9);
        assert!((stats.scan_throughput() - 45.0).abs() < 1e-9);
    }
}
