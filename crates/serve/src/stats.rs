//! Serving telemetry: per-worker throughput/occupancy and service-wide
//! request latency, shaped for the `widx-bench` table machinery.
//!
//! Since the live-telemetry refactor the numbers here are *views*: workers
//! publish into lock-free `widx_obs` registry cells as they run, and both
//! [`ProbeService::live_stats`](crate::ProbeService::live_stats) and the
//! shutdown join materialize a [`ServiceStats`] from the same snapshot
//! path, so the post-mortem report is just the last scrape.

use std::time::Duration;

use widx_obs::{
    HistogramSnapshot, ProfSnapshot, PromText, RecorderStats, Stage, StageSnapshot,
    WorkerCellSnapshot,
};

/// Counters one shard worker accumulates over its lifetime.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// The worker's shard id.
    pub shard: usize,
    /// Probe jobs (request shard-parts) processed.
    pub jobs: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Keys probed.
    pub keys: u64,
    /// Matches emitted.
    pub matches: u64,
    /// Batches closed because they reached the size target.
    pub size_flushes: u64,
    /// Batches closed by the deadline.
    pub deadline_flushes: u64,
    /// Final partial batches flushed at shutdown.
    pub shutdown_flushes: u64,
    /// Mutation operations applied at write barriers (insert/delete/update).
    pub write_ops: u64,
    /// Mutation operations that took effect (insert always; delete/update
    /// only when the key existed).
    pub write_applied: u64,
    /// Write barriers executed (batches of mutations applied under the
    /// shard's write guard).
    pub write_batches: u64,
    /// Time spent probing (walker running).
    pub busy: Duration,
    /// Time spent waiting for work.
    pub idle: Duration,
}

impl WorkerStats {
    /// Materializes worker stats from a live registry cell snapshot.
    pub(crate) fn from_cell(shard: usize, cell: &WorkerCellSnapshot) -> WorkerStats {
        WorkerStats {
            shard,
            jobs: cell.jobs,
            batches: cell.batches,
            keys: cell.keys,
            matches: cell.matches,
            size_flushes: cell.size_flushes,
            deadline_flushes: cell.deadline_flushes,
            shutdown_flushes: cell.shutdown_flushes,
            write_ops: cell.write_ops,
            write_applied: cell.write_applied,
            write_batches: cell.write_batches,
            busy: Duration::from_nanos(cell.busy_ns),
            idle: Duration::from_nanos(cell.idle_ns),
        }
    }

    /// Fraction of the worker's lifetime spent probing — the software
    /// analogue of the paper's walker-utilization figure (Figure 5).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let total = self.busy.as_secs_f64() + self.idle.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / total
        }
    }

    /// Keys probed per second of *busy* time (per-walker service rate).
    #[must_use]
    pub fn busy_throughput(&self) -> f64 {
        let busy = self.busy.as_secs_f64();
        if busy == 0.0 {
            0.0
        } else {
            self.keys as f64 / busy
        }
    }

    /// Mean keys per flushed batch.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.keys as f64 / self.batches as f64
        }
    }
}

/// Order statistics over per-request completion latencies.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Completed requests measured.
    pub count: usize,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds — the tail the network
    /// tier's idle/tail experiments watch (a lost completion wakeup
    /// shows up here long before it moves the p99).
    pub p999_ns: u64,
    /// Smallest observed latency in nanoseconds.
    pub min_ns: u64,
    /// Largest observed latency in nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes a sample set (nanoseconds). Percentiles use the
    /// nearest-rank method.
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let rank = |p: f64| -> u64 {
            let idx = ((p * count as f64).ceil() as usize).clamp(1, count) - 1;
            samples[idx]
        };
        LatencySummary {
            count,
            mean_ns: samples.iter().map(|s| *s as f64).sum::<f64>() / count as f64,
            p50_ns: rank(0.50),
            p95_ns: rank(0.95),
            p99_ns: rank(0.99),
            p999_ns: rank(0.999),
            min_ns: samples[0],
            max_ns: samples[count - 1],
        }
    }

    /// Summarizes a live histogram snapshot. Percentiles are quantized to
    /// the histogram's log2 bucket edges (clamped to the observed
    /// min/max); count, mean, min, and max are exact.
    #[must_use]
    pub fn from_histogram(hist: &HistogramSnapshot) -> LatencySummary {
        LatencySummary {
            count: usize::try_from(hist.count()).unwrap_or(usize::MAX),
            mean_ns: hist.mean_ns(),
            p50_ns: hist.quantile(0.50),
            p95_ns: hist.quantile(0.95),
            p99_ns: hist.quantile(0.99),
            p999_ns: hist.quantile(0.999),
            min_ns: hist.min(),
            max_ns: hist.max(),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            self.count,
            self.mean_ns,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.p999_ns,
            self.min_ns,
            self.max_ns
        )
    }
}

/// Per-stage latency summaries: where a request's life goes between
/// `submit` and the reply bytes leaving the server.
///
/// Counts differ per stage by design: queue-wait counts shard-parts,
/// batch-wait and walk count batches, gather counts completed requests,
/// and reply-write counts reply frames (zero unless a `widx-net` server
/// is attached).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageStats {
    /// Submit to first worker admission, per request shard-part.
    pub queue_wait: LatencySummary,
    /// Batch open to flush decision, per batch.
    pub batch_wait: LatencySummary,
    /// Index-walking time, per batch.
    pub walk: LatencySummary,
    /// Write-application time at batch barriers, per write batch.
    pub write: LatencySummary,
    /// First shard-part done to last shard-part done, per request.
    pub gather: LatencySummary,
    /// Reply frame encoded to bytes flushed to the socket, per frame.
    pub reply_write: LatencySummary,
}

impl StageStats {
    /// Materializes stage summaries from a live stage-times snapshot.
    #[must_use]
    pub fn from_snapshot(snap: &StageSnapshot) -> StageStats {
        StageStats {
            queue_wait: LatencySummary::from_histogram(snap.get(Stage::QueueWait)),
            batch_wait: LatencySummary::from_histogram(snap.get(Stage::BatchWait)),
            walk: LatencySummary::from_histogram(snap.get(Stage::Walk)),
            write: LatencySummary::from_histogram(snap.get(Stage::Write)),
            gather: LatencySummary::from_histogram(snap.get(Stage::Gather)),
            reply_write: LatencySummary::from_histogram(snap.get(Stage::ReplyWrite)),
        }
    }

    /// `(name, summary)` pairs in pipeline order.
    #[must_use]
    pub fn named(&self) -> [(&'static str, LatencySummary); 6] {
        [
            (Stage::QueueWait.name(), self.queue_wait),
            (Stage::BatchWait.name(), self.batch_wait),
            (Stage::Walk.name(), self.walk),
            (Stage::Write.name(), self.write),
            (Stage::Gather.name(), self.gather),
            (Stage::ReplyWrite.name(), self.reply_write),
        ]
    }
}

/// One reactor's gauge pair, as snapshot into a [`NetStats`]. Each
/// reactor thread of a multi-reactor `widx-net` server re-publishes its
/// pair every event-loop pass; the totals in [`NetStats`] are the sums.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections currently pinned to this reactor.
    pub open_connections: u64,
    /// Bytes currently buffered for write across this reactor's
    /// connections.
    pub write_backlog_bytes: u64,
}

/// Counters for the network front-end tier (`widx-net`), when the
/// service is exposed over a socket. The serving crate defines the
/// shape so [`ServiceStats`] can carry it without depending on the
/// network layer; the `widx-net` server fills it in and attaches it via
/// [`ServiceStats::with_net`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Well-formed request frames decoded.
    pub frames_in: u64,
    /// Reply frames written (responses *and* error frames).
    pub frames_out: u64,
    /// Requests refused with a `Busy` error frame — either a shard
    /// queue at capacity or a connection over its in-flight cap.
    pub busy_rejects: u64,
    /// Frames that failed to decode (bad version/opcode/payload).
    pub decode_errors: u64,
    /// Gauge: connections currently open across every reactor
    /// (published by the event loops each iteration, so a live scrape
    /// sees the current fleet).
    pub open_connections: u64,
    /// Gauge: bytes currently buffered for write across all open
    /// connections (reply backpressure).
    pub write_backlog_bytes: u64,
    /// Per-reactor gauge breakdown, in reactor order — one entry per
    /// event-loop thread. The two gauge totals above are the sums over
    /// this vector. Empty when no server is attached.
    pub reactors: Vec<ReactorStats>,
}

impl NetStats {
    /// Whether any traffic was observed at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.connections == 0
            && self.frames_in == 0
            && self.frames_out == 0
            && self.busy_rejects == 0
            && self.decode_errors == 0
            && self.open_connections == 0
            && self.write_backlog_bytes == 0
            && self.reactors.iter().all(|r| *r == ReactorStats::default())
    }
}

/// Everything the service measured, returned by
/// [`ProbeService::live_stats`](crate::ProbeService::live_stats) at any
/// moment and by [`ProbeService::shutdown`](crate::ProbeService::shutdown)
/// as the final snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceStats {
    /// Per-worker counters for the point-probe (hash) tier, in shard
    /// order. `keys` counts probe keys.
    pub workers: Vec<WorkerStats>,
    /// Per-worker counters for the ordered (range-scan) tier, in shard
    /// order — empty on services built without one. `keys` counts scan
    /// cursors fed; `matches` counts entries emitted.
    pub range_workers: Vec<WorkerStats>,
    /// Completion-latency summary across every finished request (both
    /// tiers).
    pub latency: LatencySummary,
    /// Per-stage breakdown of where request time goes.
    pub stages: StageStats,
    /// Network front-end counters — all zero unless a `widx-net` server
    /// snapshot was attached with [`ServiceStats::with_net`].
    pub net: NetStats,
    /// Flight-recorder gauges: ring depth and record/drop/slow totals.
    /// All zero unless per-request tracing is armed.
    pub trace: RecorderStats,
    /// Hardware-profiling snapshot merged across every worker: per-stage
    /// cycles/instructions/misses with derived IPC / MPKI / stall
    /// fraction / effective MLP, plus the software walker cross-check.
    /// `None` unless the service was built with
    /// `ServeConfig::with_profile(true)`.
    pub prof: Option<ProfSnapshot>,
    /// Epoch-reclamation gauge: nodes retired by mutations over the
    /// service's lifetime (superseded bucket arrays, split/merged
    /// leaves) awaiting a safe epoch.
    pub epoch_retired: u64,
    /// Epoch-reclamation gauge: retired nodes actually freed once no
    /// walker could still hold a reference. At quiescence this equals
    /// [`ServiceStats::epoch_retired`].
    pub epoch_reclaimed: u64,
    /// Wall-clock time from service start to this snapshot.
    pub wall: Duration,
}

impl ServiceStats {
    /// Attaches a network-tier snapshot (from `widx_net::WidxServer`) to
    /// the service's own counters, completing the full serving picture:
    /// sockets → frames → queues → walkers.
    #[must_use]
    pub fn with_net(mut self, net: NetStats) -> ServiceStats {
        self.net = net;
        self
    }

    /// Total keys probed across point-probe workers.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.workers.iter().map(|w| w.keys).sum()
    }

    /// Total matches across point-probe workers.
    #[must_use]
    pub fn total_matches(&self) -> u64 {
        self.workers.iter().map(|w| w.matches).sum()
    }

    /// Total scan cursors driven across range workers (one per shard a
    /// scan's interval overlapped).
    #[must_use]
    pub fn total_scan_cursors(&self) -> u64 {
        self.range_workers.iter().map(|w| w.keys).sum()
    }

    /// Total entries emitted across range workers (before any gather
    /// truncation at the request's `limit`).
    #[must_use]
    pub fn total_scan_entries(&self) -> u64 {
        self.range_workers.iter().map(|w| w.matches).sum()
    }

    /// Total mutation operations applied across both tiers.
    #[must_use]
    pub fn total_write_ops(&self) -> u64 {
        self.workers
            .iter()
            .chain(self.range_workers.iter())
            .map(|w| w.write_ops)
            .sum()
    }

    /// Total mutation operations that took effect across both tiers.
    #[must_use]
    pub fn total_write_applied(&self) -> u64 {
        self.workers
            .iter()
            .chain(self.range_workers.iter())
            .map(|w| w.write_applied)
            .sum()
    }

    /// Total write barriers executed across both tiers.
    #[must_use]
    pub fn total_write_batches(&self) -> u64 {
        self.workers
            .iter()
            .chain(self.range_workers.iter())
            .map(|w| w.write_batches)
            .sum()
    }

    /// Service-level throughput: keys probed per wall-clock second.
    #[must_use]
    pub fn wall_throughput(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.total_keys() as f64 / wall
        }
    }

    /// Service-level scan throughput: entries emitted per wall-clock
    /// second.
    #[must_use]
    pub fn scan_throughput(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.total_scan_entries() as f64 / wall
        }
    }

    /// Renders the snapshot as a flat JSON document — the payload of the
    /// wire protocol's `Stats` reply. Hand-rolled (the workspace carries
    /// no serde); `widx_obs::json` can read the numeric fields back.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        let host_cpus = std::thread::available_parallelism().map_or(0, usize::from);
        out.push_str(&format!(
            "{{\"wall_ms\": {:.3}, \"uptime_ms\": {:.3}, \"host_cpus\": {}, \
             \"version\": \"{}\", \"total_keys\": {}, \"total_matches\": {}, \
             \"total_scan_cursors\": {}, \"total_scan_entries\": {}, \
             \"total_write_ops\": {}, \"total_write_applied\": {}, \
             \"total_write_batches\": {}, \"epoch_retired\": {}, \
             \"epoch_reclaimed\": {},",
            self.wall.as_secs_f64() * 1e3,
            self.wall.as_secs_f64() * 1e3,
            host_cpus,
            env!("CARGO_PKG_VERSION"),
            self.total_keys(),
            self.total_matches(),
            self.total_scan_cursors(),
            self.total_scan_entries(),
            self.total_write_ops(),
            self.total_write_applied(),
            self.total_write_batches(),
            self.epoch_retired,
            self.epoch_reclaimed
        ));
        out.push_str(&format!(
            " \"trace\": {{\"capacity\": {}, \"depth\": {}, \"recorded\": {}, \
             \"dropped\": {}, \"slow\": {}}},",
            self.trace.capacity,
            self.trace.depth,
            self.trace.recorded,
            self.trace.dropped,
            self.trace.slow
        ));
        if let Some(prof) = &self.prof {
            out.push_str(&format!(" \"prof\": {},", prof.to_json()));
        }
        out.push_str(&format!(" \"latency\": {},", self.latency.to_json()));
        out.push_str(" \"stages\": {");
        for (i, (name, summary)) in self.stages.named().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(" \"{}\": {}", name, summary.to_json()));
        }
        out.push_str("},");
        for (field, tier) in [
            ("workers", &self.workers),
            ("range_workers", &self.range_workers),
        ] {
            out.push_str(&format!(" \"{field}\": ["));
            for (i, w) in tier.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    " {{\"shard\": {}, \"jobs\": {}, \"batches\": {}, \"keys\": {}, \
                     \"matches\": {}, \"size_flushes\": {}, \"deadline_flushes\": {}, \
                     \"shutdown_flushes\": {}, \"write_ops\": {}, \
                     \"write_applied\": {}, \"write_batches\": {}, \
                     \"busy_ns\": {}, \"idle_ns\": {}, \
                     \"occupancy\": {:.4}}}",
                    w.shard,
                    w.jobs,
                    w.batches,
                    w.keys,
                    w.matches,
                    w.size_flushes,
                    w.deadline_flushes,
                    w.shutdown_flushes,
                    w.write_ops,
                    w.write_applied,
                    w.write_batches,
                    w.busy.as_nanos(),
                    w.idle.as_nanos(),
                    w.occupancy()
                ));
            }
            out.push_str("],");
        }
        out.push_str(&format!(
            " \"net\": {{\"connections\": {}, \"frames_in\": {}, \"frames_out\": {}, \
             \"busy_rejects\": {}, \"decode_errors\": {}, \"open_connections\": {}, \
             \"write_backlog_bytes\": {}, \"reactors\": [",
            self.net.connections,
            self.net.frames_in,
            self.net.frames_out,
            self.net.busy_rejects,
            self.net.decode_errors,
            self.net.open_connections,
            self.net.write_backlog_bytes
        ));
        for (i, r) in self.net.reactors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                " {{\"reactor\": {}, \"open\": {}, \"backlog_bytes\": {}}}",
                i, r.open_connections, r.write_backlog_bytes
            ));
        }
        out.push_str("]}}");
        out
    }

    /// Renders the snapshot in Prometheus text-exposition format (0.0.4),
    /// suitable for a scrape endpoint or `curl`-style inspection.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut p = PromText::new();
        p.help("widx_wall_seconds", "Service uptime at snapshot time.")
            .type_("widx_wall_seconds", "gauge")
            .sample("widx_wall_seconds", &[], self.wall.as_secs_f64());
        p.help(
            "widx_worker_keys_total",
            "Keys probed / scan cursors fed per worker.",
        )
        .type_("widx_worker_keys_total", "counter");
        p.help(
            "widx_worker_matches_total",
            "Matches / scan entries emitted per worker.",
        )
        .type_("widx_worker_matches_total", "counter");
        p.help("widx_worker_batches_total", "Batches flushed per worker.")
            .type_("widx_worker_batches_total", "counter");
        p.help(
            "widx_worker_occupancy",
            "Fraction of worker lifetime spent walking.",
        )
        .type_("widx_worker_occupancy", "gauge");
        p.help(
            "widx_write_ops_total",
            "Mutation operations applied per worker.",
        )
        .type_("widx_write_ops_total", "counter");
        p.help(
            "widx_write_applied_total",
            "Mutation operations that took effect per worker.",
        )
        .type_("widx_write_applied_total", "counter");
        p.help(
            "widx_write_batches_total",
            "Write barriers executed per worker.",
        )
        .type_("widx_write_batches_total", "counter");
        for (tier, workers) in [("point", &self.workers), ("range", &self.range_workers)] {
            for w in workers.iter() {
                let shard = w.shard.to_string();
                let labels = [("tier", tier), ("shard", shard.as_str())];
                p.sample_u64("widx_worker_keys_total", &labels, w.keys);
                p.sample_u64("widx_worker_matches_total", &labels, w.matches);
                p.sample_u64("widx_worker_batches_total", &labels, w.batches);
                p.sample("widx_worker_occupancy", &labels, w.occupancy());
                p.sample_u64("widx_write_ops_total", &labels, w.write_ops);
                p.sample_u64("widx_write_applied_total", &labels, w.write_applied);
                p.sample_u64("widx_write_batches_total", &labels, w.write_batches);
            }
        }
        for (name, help, value) in [
            (
                "widx_epoch_retired",
                "Nodes retired by mutations, awaiting a safe epoch.",
                self.epoch_retired,
            ),
            (
                "widx_epoch_reclaimed",
                "Retired nodes freed after every walker moved past them.",
                self.epoch_reclaimed,
            ),
        ] {
            p.help(name, help)
                .type_(name, "gauge")
                .sample_u64(name, &[], value);
        }
        p.help(
            "widx_request_latency_ns",
            "End-to-end request completion latency.",
        )
        .type_("widx_request_latency_ns", "summary");
        for (q, v) in [
            ("0.5", self.latency.p50_ns),
            ("0.95", self.latency.p95_ns),
            ("0.99", self.latency.p99_ns),
            ("0.999", self.latency.p999_ns),
        ] {
            p.sample_u64("widx_request_latency_ns", &[("quantile", q)], v);
        }
        p.sample(
            "widx_request_latency_ns_sum",
            &[],
            self.latency.mean_ns * self.latency.count as f64,
        );
        p.sample_u64(
            "widx_request_latency_ns_count",
            &[],
            self.latency.count as u64,
        );
        p.help("widx_stage_ns", "Per-stage latency breakdown.")
            .type_("widx_stage_ns", "summary");
        for (name, summary) in self.stages.named() {
            for (q, v) in [("0.5", summary.p50_ns), ("0.99", summary.p99_ns)] {
                p.sample_u64("widx_stage_ns", &[("stage", name), ("quantile", q)], v);
            }
            p.sample(
                "widx_stage_ns_sum",
                &[("stage", name)],
                summary.mean_ns * summary.count as f64,
            );
            p.sample_u64(
                "widx_stage_ns_count",
                &[("stage", name)],
                summary.count as u64,
            );
        }
        for (name, help, value) in [
            (
                "widx_net_connections_total",
                "Connections accepted.",
                self.net.connections,
            ),
            (
                "widx_net_frames_in_total",
                "Request frames decoded.",
                self.net.frames_in,
            ),
            (
                "widx_net_frames_out_total",
                "Reply frames written.",
                self.net.frames_out,
            ),
            (
                "widx_net_busy_rejects_total",
                "Requests refused Busy.",
                self.net.busy_rejects,
            ),
            (
                "widx_net_decode_errors_total",
                "Frames that failed to decode.",
                self.net.decode_errors,
            ),
        ] {
            p.help(name, help)
                .type_(name, "counter")
                .sample_u64(name, &[], value);
        }
        for (name, help, value) in [
            (
                "widx_net_open_connections",
                "Connections currently open.",
                self.net.open_connections,
            ),
            (
                "widx_net_write_backlog_bytes",
                "Bytes buffered for write across open connections.",
                self.net.write_backlog_bytes,
            ),
        ] {
            p.help(name, help)
                .type_(name, "gauge")
                .sample_u64(name, &[], value);
        }
        for (name, help, value) in [
            (
                "widx_trace_capacity",
                "Flight-recorder ring capacity in traces.",
                self.trace.capacity,
            ),
            (
                "widx_trace_depth",
                "Traces currently held by the flight recorder.",
                self.trace.depth,
            ),
        ] {
            p.help(name, help)
                .type_(name, "gauge")
                .sample_u64(name, &[], value);
        }
        for (name, help, value) in [
            (
                "widx_trace_recorded_total",
                "Request traces recorded (head-sampled or slow).",
                self.trace.recorded,
            ),
            (
                "widx_trace_dropped_total",
                "Traces evicted from a full flight-recorder ring.",
                self.trace.dropped,
            ),
            (
                "widx_trace_slow_total",
                "Recorded traces that exceeded the slow threshold.",
                self.trace.slow,
            ),
        ] {
            p.help(name, help)
                .type_(name, "counter")
                .sample_u64(name, &[], value);
        }
        if let Some(prof) = &self.prof {
            self.render_prof_prometheus(&mut p, prof);
        }
        if !self.net.reactors.is_empty() {
            p.help(
                "widx_net_reactor_open_connections",
                "Connections pinned to each reactor.",
            )
            .type_("widx_net_reactor_open_connections", "gauge");
            p.help(
                "widx_net_reactor_write_backlog_bytes",
                "Bytes buffered for write per reactor.",
            )
            .type_("widx_net_reactor_write_backlog_bytes", "gauge");
            for (i, r) in self.net.reactors.iter().enumerate() {
                let reactor = i.to_string();
                let labels = [("reactor", reactor.as_str())];
                p.sample_u64(
                    "widx_net_reactor_open_connections",
                    &labels,
                    r.open_connections,
                );
                p.sample_u64(
                    "widx_net_reactor_write_backlog_bytes",
                    &labels,
                    r.write_backlog_bytes,
                );
            }
        }
        p.finish()
    }

    /// The `widx_prof_*` series: per-stage hardware counters, derived
    /// memory-boundedness gauges (only when their denominators ticked —
    /// the `soft` backend emits none), and the software walker
    /// cross-check.
    fn render_prof_prometheus(&self, p: &mut PromText, prof: &ProfSnapshot) {
        use widx_obs::ProfStageSnapshot;

        p.help(
            "widx_prof_workers",
            "Worker counter groups merged into the profile.",
        )
        .type_("widx_prof_workers", "gauge")
        .sample_u64("widx_prof_workers", &[], prof.workers);
        p.help(
            "widx_prof_hw",
            "1 when the profile carries real hardware counts.",
        )
        .type_("widx_prof_hw", "gauge")
        .sample_u64("widx_prof_hw", &[], u64::from(prof.hw));
        for (name, help) in [
            (
                "widx_prof_cycles_total",
                "Core cycles attributed per stage.",
            ),
            (
                "widx_prof_instructions_total",
                "Instructions retired per stage.",
            ),
            ("widx_prof_llc_misses_total", "LLC misses per stage."),
            ("widx_prof_dtlb_misses_total", "dTLB misses per stage."),
            (
                "widx_prof_windows_total",
                "Counter windows recorded per stage.",
            ),
        ] {
            p.help(name, help).type_(name, "counter");
        }
        for stage in Stage::ALL {
            let s = prof.get(stage);
            let labels = [("stage", stage.name())];
            p.sample_u64("widx_prof_cycles_total", &labels, s.cycles);
            p.sample_u64("widx_prof_instructions_total", &labels, s.instructions);
            p.sample_u64("widx_prof_llc_misses_total", &labels, s.llc_misses);
            p.sample_u64("widx_prof_dtlb_misses_total", &labels, s.dtlb_misses);
            p.sample_u64("widx_prof_windows_total", &labels, s.windows);
        }
        type Derived = fn(&ProfStageSnapshot) -> Option<f64>;
        let derived: [(&str, &str, Derived); 4] = [
            (
                "widx_prof_ipc",
                "Instructions per cycle per stage.",
                ProfStageSnapshot::ipc,
            ),
            (
                "widx_prof_llc_mpki",
                "LLC misses per thousand instructions per stage.",
                ProfStageSnapshot::llc_mpki,
            ),
            (
                "widx_prof_stall_fraction",
                "First-order fraction of stage cycles under an LLC miss.",
                ProfStageSnapshot::stall_fraction,
            ),
            (
                "widx_prof_effective_mlp",
                "Miss-latency-weighted cycles over actual cycles per stage.",
                ProfStageSnapshot::effective_mlp,
            ),
        ];
        for (name, help, get) in derived {
            if Stage::ALL.into_iter().all(|s| get(prof.get(s)).is_none()) {
                continue;
            }
            p.help(name, help).type_(name, "gauge");
            for stage in Stage::ALL {
                if let Some(v) = get(prof.get(stage)) {
                    p.sample(name, &[("stage", stage.name())], v);
                }
            }
        }
        for (name, help, value) in [
            (
                "widx_prof_walk_nodes_total",
                "Index nodes visited by profiled walkers.",
                prof.walk.nodes,
            ),
            (
                "widx_prof_walk_rounds_total",
                "Walker ring rounds across profiled batches.",
                prof.walk.rounds,
            ),
            (
                "widx_prof_walk_occupancy_total",
                "Live walker slots summed over rounds.",
                prof.walk.occupancy,
            ),
            (
                "widx_prof_walk_prefetches_total",
                "Prefetches issued by profiled walkers.",
                prof.walk.prefetches,
            ),
        ] {
            p.help(name, help)
                .type_(name, "counter")
                .sample_u64(name, &[], value);
        }
        if let Some(mlp) = prof.soft_mlp() {
            p.help(
                "widx_prof_soft_mlp",
                "Software MLP cross-check: walker occupancy per round.",
            )
            .type_("widx_prof_soft_mlp", "gauge")
            .sample("widx_prof_soft_mlp", &[], mlp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_rates() {
        let w = WorkerStats {
            shard: 0,
            jobs: 10,
            batches: 4,
            keys: 100,
            matches: 80,
            busy: Duration::from_millis(30),
            idle: Duration::from_millis(10),
            ..WorkerStats::default()
        };
        assert!((w.occupancy() - 0.75).abs() < 1e-9);
        assert!((w.mean_batch() - 25.0).abs() < 1e-9);
        assert!((w.busy_throughput() - 100.0 / 0.03).abs() < 1e-6);
    }

    #[test]
    fn empty_worker_is_all_zeroes() {
        let w = WorkerStats::default();
        assert_eq!(w.occupancy(), 0.0);
        assert_eq!(w.busy_throughput(), 0.0);
        assert_eq!(w.mean_batch(), 0.0);
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.p999_ns, 100, "nearest rank rounds 99.9 up");
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_of_empty_sample_set() {
        let s = LatencySummary::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn latency_from_histogram_tracks_exact_fields() {
        let h = widx_obs::AtomicHistogram::new();
        for ns in [100u64, 200, 400, 800] {
            h.record(ns);
        }
        let s = LatencySummary::from_histogram(&h.snapshot());
        assert_eq!(s.count, 4);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 800);
        assert!((s.mean_ns - 375.0).abs() < 1e-9);
        // Quantiles are bucket-quantized but bounded by the true range.
        assert!(s.p50_ns >= 100 && s.p50_ns <= 800);
        assert!(s.p99_ns >= s.p50_ns && s.p99_ns <= 800);

        let empty = LatencySummary::from_histogram(&widx_obs::HistogramSnapshot::default());
        assert_eq!(empty, LatencySummary::default());
    }

    #[test]
    fn service_totals() {
        let stats = ServiceStats {
            workers: vec![
                WorkerStats {
                    keys: 60,
                    matches: 50,
                    write_ops: 12,
                    write_applied: 9,
                    write_batches: 3,
                    ..WorkerStats::default()
                },
                WorkerStats {
                    keys: 40,
                    matches: 30,
                    write_ops: 8,
                    write_applied: 8,
                    write_batches: 2,
                    ..WorkerStats::default()
                },
            ],
            range_workers: vec![WorkerStats {
                keys: 6,
                matches: 90,
                ..WorkerStats::default()
            }],
            latency: LatencySummary::default(),
            stages: StageStats::default(),
            net: NetStats::default(),
            trace: RecorderStats::default(),
            prof: None,
            epoch_retired: 7,
            epoch_reclaimed: 7,
            wall: Duration::from_secs(2),
        };
        assert_eq!(stats.total_keys(), 100);
        assert_eq!(stats.total_matches(), 80);
        assert_eq!(stats.total_scan_cursors(), 6);
        assert_eq!(stats.total_scan_entries(), 90);
        assert_eq!(stats.total_write_ops(), 20);
        assert_eq!(stats.total_write_applied(), 17);
        assert_eq!(stats.total_write_batches(), 5);
        assert!((stats.wall_throughput() - 50.0).abs() < 1e-9);
        assert!((stats.scan_throughput() - 45.0).abs() < 1e-9);

        let json = stats.to_json();
        assert_eq!(widx_obs::json::find_u64(&json, "total_keys"), Some(100));
        assert_eq!(
            widx_obs::json::find_u64(&json, "total_scan_entries"),
            Some(90)
        );
        assert_eq!(widx_obs::json::find_f64(&json, "wall_ms"), Some(2000.0));
        assert_eq!(widx_obs::json::find_f64(&json, "uptime_ms"), Some(2000.0));
        assert_eq!(widx_obs::json::find_u64(&json, "total_write_ops"), Some(20));
        assert_eq!(
            widx_obs::json::find_u64(&json, "total_write_applied"),
            Some(17)
        );
        assert_eq!(widx_obs::json::find_u64(&json, "epoch_retired"), Some(7));
        assert_eq!(widx_obs::json::find_u64(&json, "epoch_reclaimed"), Some(7));
        assert!(
            widx_obs::json::find_u64(&json, "host_cpus").is_some_and(|n| n >= 1),
            "host_cpus should report at least one CPU"
        );
        assert!(json.contains(&format!("\"version\": \"{}\"", env!("CARGO_PKG_VERSION"))));
        assert!(json.contains("\"trace\": {\"capacity\": 0, \"depth\": 0,"));

        assert!(
            !json.contains("\"prof\""),
            "no prof block without profiling"
        );

        let prom = stats.render_prometheus();
        assert!(prom.contains("widx_worker_keys_total{tier=\"point\",shard=\"0\"} 60"));
        assert!(prom.contains("widx_worker_matches_total{tier=\"range\",shard=\"0\"} 90"));
        assert!(prom.contains("widx_write_ops_total{tier=\"point\",shard=\"0\"} 12"));
        assert!(prom.contains("widx_write_applied_total{tier=\"point\",shard=\"0\"} 9"));
        assert!(prom.contains("widx_write_batches_total{tier=\"range\",shard=\"0\"} 0"));
        assert!(prom.contains("widx_epoch_retired 7"));
        assert!(prom.contains("widx_epoch_reclaimed 7"));
        assert!(prom.contains("widx_stage_ns_count{stage=\"write\"} 0"));
        assert!(prom.contains("# TYPE widx_request_latency_ns summary"));
        assert!(prom.contains("widx_stage_ns_count{stage=\"walk\"} 0"));
        assert!(prom.contains("widx_net_open_connections 0"));
        assert!(prom.contains("# TYPE widx_trace_depth gauge"));
        assert!(prom.contains("widx_trace_recorded_total 0"));
        assert!(
            widx_obs::lint_exposition(&prom).is_empty(),
            "exposition must pass the Prometheus lint"
        );
        assert!(
            !prom.contains("widx_net_reactor_open_connections"),
            "no per-reactor series without an attached server"
        );
        assert!(
            !prom.contains("widx_prof_"),
            "no prof series without profiling"
        );
    }

    #[test]
    fn prof_snapshot_renders_in_json_and_prometheus() {
        let mut prof = ProfSnapshot {
            backend: "linux",
            hw: true,
            workers: 2,
            ..ProfSnapshot::default()
        };
        // Index 2 is `Stage::Walk` in `Stage::ALL` order.
        prof.stages[2] = widx_obs::ProfStageSnapshot {
            windows: 4,
            cycles: 10_000,
            instructions: 5_000,
            llc_misses: 100,
            dtlb_misses: 10,
            time_ns: 7_000,
        };
        prof.walk = widx_obs::WalkCounters {
            nodes: 400,
            max_chain: 3,
            rounds: 100,
            occupancy: 380,
            prefetches: 400,
        };
        let stats = ServiceStats {
            workers: vec![],
            range_workers: vec![],
            latency: LatencySummary::default(),
            stages: StageStats::default(),
            net: NetStats::default(),
            trace: RecorderStats::default(),
            prof: Some(prof),
            epoch_retired: 0,
            epoch_reclaimed: 0,
            wall: Duration::from_secs(1),
        };

        let json = stats.to_json();
        assert!(json.contains("\"prof\": {\"backend\":\"linux\",\"hw\":true,"));
        assert!(json.contains("\"soft_mlp\":3.8000"));

        let prom = stats.render_prometheus();
        assert!(prom.contains("widx_prof_workers 2"));
        assert!(prom.contains("widx_prof_hw 1"));
        assert!(prom.contains("widx_prof_cycles_total{stage=\"walk\"} 10000"));
        assert!(prom.contains("widx_prof_ipc{stage=\"walk\"} 0.5"));
        assert!(prom.contains("widx_prof_effective_mlp{stage=\"walk\"} 2"));
        assert!(prom.contains("widx_prof_stall_fraction{stage=\"walk\"} 1"));
        assert!(prom.contains("widx_prof_walk_prefetches_total 400"));
        assert!(prom.contains("widx_prof_soft_mlp 3.8"));
        assert!(
            widx_obs::lint_exposition(&prom).is_empty(),
            "prof series must pass the Prometheus lint"
        );

        // A soft-backend profile emits the counter series (all zero)
        // but none of the derived gauges — their denominators never
        // ticked — and still lints clean.
        let soft = ServiceStats {
            prof: Some(ProfSnapshot {
                backend: "soft",
                workers: 1,
                ..ProfSnapshot::default()
            }),
            ..stats
        };
        let prom = soft.render_prometheus();
        assert!(prom.contains("widx_prof_hw 0"));
        assert!(prom.contains("widx_prof_cycles_total{stage=\"walk\"} 0"));
        assert!(!prom.contains("widx_prof_ipc"), "no IPC without cycles");
        assert!(
            !prom.contains("widx_prof_soft_mlp"),
            "no MLP without rounds"
        );
        assert!(widx_obs::lint_exposition(&prom).is_empty());
    }

    #[test]
    fn per_reactor_gauges_render_in_json_and_prometheus() {
        let stats = ServiceStats {
            workers: vec![],
            range_workers: vec![],
            latency: LatencySummary::default(),
            stages: StageStats::default(),
            net: NetStats {
                connections: 3,
                open_connections: 3,
                write_backlog_bytes: 700,
                reactors: vec![
                    ReactorStats {
                        open_connections: 2,
                        write_backlog_bytes: 512,
                    },
                    ReactorStats {
                        open_connections: 1,
                        write_backlog_bytes: 188,
                    },
                ],
                ..NetStats::default()
            },
            trace: RecorderStats::default(),
            prof: None,
            epoch_retired: 0,
            epoch_reclaimed: 0,
            wall: Duration::from_secs(1),
        };
        let json = stats.to_json();
        // The *total* stays the first "open_connections" occurrence, so
        // existing scrapers keep reading it.
        assert_eq!(widx_obs::json::find_u64(&json, "open_connections"), Some(3));
        assert!(
            json.contains("\"reactors\": [ {\"reactor\": 0, \"open\": 2, \"backlog_bytes\": 512}")
        );
        assert!(json.contains("{\"reactor\": 1, \"open\": 1, \"backlog_bytes\": 188}"));

        let prom = stats.render_prometheus();
        assert!(prom.contains("widx_net_open_connections 3"));
        assert!(prom.contains("widx_net_reactor_open_connections{reactor=\"0\"} 2"));
        assert!(prom.contains("widx_net_reactor_write_backlog_bytes{reactor=\"1\"} 188"));

        assert!(!stats.net.is_empty());
        let idle = NetStats {
            reactors: vec![ReactorStats::default(); 4],
            ..NetStats::default()
        };
        assert!(idle.is_empty(), "zeroed reactors still count as no traffic");
    }
}
