//! The sharded index: N independent [`HashIndex`] partitions routed by
//! [`HashRecipe::shard_of`], built through the shard-aware build path in
//! `widx_db::index`.
//!
//! Since the serving tier accepts online writes, each shard sits behind
//! its own `RwLock`. The lock is *structurally* uncontended: the shard
//! worker is the sole writer for its shard and takes the write guard
//! only at batch barriers, while readers (walker batches, stats
//! scrapes, oracles) share the read guard. The lock's job is to make
//! the `&mut` visible to the borrow checker and memory model, not to
//! arbitrate between competing writers — there are none.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use widx_db::epoch::EpochDomain;
use widx_db::hash::HashRecipe;
use widx_db::index::{build_sharded, HashIndex, IndexStats};

/// A hash index partitioned into independent shards, one per serving
/// worker. Probes route by `recipe.shard_of(key, shards)`; builds size
/// each shard's bucket array for its own entry count. Every shard
/// retires replaced nodes into the same [`EpochDomain`].
pub struct ShardedIndex {
    recipe: HashRecipe,
    shards: Vec<RwLock<HashIndex>>,
}

impl ShardedIndex {
    /// Partitions `pairs` into `shards` indexes, each sized for ~`load`
    /// entries per bucket with at least `min_buckets` buckets, all
    /// retiring into `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `min_buckets` is zero, or `load` is not
    /// positive.
    #[must_use]
    pub fn build(
        recipe: HashRecipe,
        shards: usize,
        min_buckets: usize,
        load: f64,
        domain: &Arc<EpochDomain>,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) -> ShardedIndex {
        let built = build_sharded(&recipe, shards, min_buckets, load, pairs);
        ShardedIndex {
            recipe,
            shards: built
                .into_iter()
                .map(|mut s| {
                    s.set_domain(Arc::clone(domain));
                    RwLock::new(s)
                })
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `key` — reads and writes route identically,
    /// so a shard worker is the sole writer for everything it serves.
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        self.recipe.shard_of(key, self.shards.len() as u64) as usize
    }

    /// Read access to shard `shard`. Walker batches hold this guard for
    /// the duration of one batch.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned (a worker panicked mid-write).
    pub fn read(&self, shard: usize) -> RwLockReadGuard<'_, HashIndex> {
        self.shards[shard].read().expect("hash shard lock")
    }

    /// Write access to shard `shard` — reserved for the shard's owning
    /// worker at batch barriers.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn write(&self, shard: usize) -> RwLockWriteGuard<'_, HashIndex> {
        self.shards[shard].write().expect("hash shard lock")
    }

    /// The routing/bucketing recipe.
    #[must_use]
    pub fn recipe(&self) -> &HashRecipe {
        &self.recipe
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|s| self.read(s).len()).sum()
    }

    /// Whether the sharded index holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every payload stored under `key` — the single-threaded oracle for
    /// the whole sharded structure.
    #[must_use]
    pub fn lookup_all(&self, key: u64) -> Vec<u64> {
        self.read(self.shard_of(key)).lookup_all(key)
    }

    /// Per-shard shape statistics, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<IndexStats> {
        (0..self.shards.len())
            .map(|s| self.read(s).stats())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(shards: usize, entries: u64) -> ShardedIndex {
        ShardedIndex::build(
            HashRecipe::robust64(),
            shards,
            8,
            1.0,
            &EpochDomain::new(),
            (0..entries).map(|k| (k, k + 1000)),
        )
    }

    #[test]
    fn every_key_found_in_exactly_its_shard() {
        let idx = sharded(4, 2000);
        assert_eq!(idx.shard_count(), 4);
        assert_eq!(idx.len(), 2000);
        for k in 0..2000 {
            assert_eq!(idx.lookup_all(k), vec![k + 1000]);
            let owner = idx.shard_of(k);
            for s in 0..idx.shard_count() {
                assert_eq!(
                    idx.read(s).lookup(k).is_some(),
                    s == owner,
                    "key {k} shard {s}"
                );
            }
        }
    }

    #[test]
    fn shards_are_load_balanced() {
        let idx = sharded(8, 16_384);
        let sizes: Vec<usize> = (0..idx.shard_count()).map(|s| idx.read(s).len()).collect();
        let mean = 16_384 / 8;
        for (s, size) in sizes.iter().enumerate() {
            assert!(
                *size > mean / 2 && *size < mean * 2,
                "shard {s} imbalanced: {sizes:?}"
            );
        }
    }

    #[test]
    fn duplicates_stay_colocated() {
        let pairs = vec![(7u64, 1u64), (7, 2), (7, 3), (9, 4)];
        let idx = ShardedIndex::build(
            HashRecipe::robust64(),
            3,
            4,
            1.0,
            &EpochDomain::new(),
            pairs,
        );
        let mut got = idx.lookup_all(7);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn single_shard_is_degenerate_but_valid() {
        let idx = sharded(1, 100);
        assert_eq!(idx.shard_count(), 1);
        assert_eq!(idx.shard_of(42), 0);
        assert_eq!(idx.lookup_all(42), vec![1042]);
    }

    #[test]
    fn empty_build() {
        let idx = ShardedIndex::build(
            HashRecipe::robust64(),
            2,
            4,
            1.0,
            &EpochDomain::new(),
            std::iter::empty(),
        );
        assert!(idx.is_empty());
        assert_eq!(idx.lookup_all(5), Vec::<u64>::new());
    }

    #[test]
    fn writes_through_the_shard_locks_stay_routed() {
        let idx = sharded(4, 100);
        // Insert/delete/update through the owner shard's write guard —
        // exactly what the shard worker does at a batch barrier.
        for k in 200..260u64 {
            idx.write(idx.shard_of(k)).insert(k, k * 2);
        }
        for k in 200..260u64 {
            assert_eq!(idx.lookup_all(k), vec![k * 2]);
        }
        assert_eq!(idx.write(idx.shard_of(210)).delete(210), 1);
        assert!(idx.lookup_all(210).is_empty());
        assert!(idx.write(idx.shard_of(220)).update(220, 9));
        assert_eq!(idx.lookup_all(220), vec![9]);
        assert_eq!(idx.len(), 100 + 60 - 1);
    }
}
