//! Bounded per-shard request queues with blocking backpressure and
//! poison-pill shutdown.
//!
//! Capacity is counted in *keys*, not jobs: a shard's queue admits new
//! work until `capacity_keys` keys are waiting, then
//! [`push`](ShardQueue::push) blocks the submitting client — the
//! service-level analogue of the accelerator's 2-entry inter-unit
//! queues stalling the dispatcher. One oversized job (more keys than the
//! whole capacity) is admitted when the queue is empty, so a request can
//! never deadlock against its own size.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use widx_core::POISON_KEY;
use widx_soft::ScanRange;

use crate::request::{ResponseState, WriteOp};

/// One unit of shard work.
pub(crate) enum Job {
    /// Probe `entries` (`(probe row, key)` pairs) on behalf of `reply`.
    Probe {
        entries: Vec<(u32, u64)>,
        reply: Arc<ResponseState>,
    },
    /// Run `scans` (`(scatter rank, range)` pairs) on behalf of `reply`
    /// — one cursor per scan on the shard's B+-tree walker. Only range
    /// workers' queues carry this variant.
    Scan {
        scans: Vec<(u32, ScanRange)>,
        reply: Arc<ResponseState>,
    },
    /// Apply `ops` (`(request op index, op)` pairs, every key owned by
    /// this shard) under the shard's write guard at the worker's next
    /// batch barrier. `ack` marks the authoritative tier: hash-tier
    /// parts report per-op `(op, key, applied)` rows back to the reply;
    /// ordered-tier parts apply the same mutations but complete empty
    /// (the hash tier owns the acks, so a dual-tier write never
    /// double-reports).
    Write {
        ops: Vec<(u32, WriteOp)>,
        ack: bool,
        reply: Arc<ResponseState>,
    },
    /// Poison pill: the worker finishes queued work, then halts. Carries
    /// [`widx_core::POISON_KEY`] to mirror the accelerator's termination
    /// protocol (being an enum variant, it cannot collide with a real
    /// probe of key `u64::MAX` the way a reserved key value would).
    Poison { key: u64 },
}

impl Job {
    /// Queue-occupancy weight: probe keys, scan cursors, or write ops —
    /// all are "walker slots' worth of work" for capacity accounting.
    fn key_count(&self) -> usize {
        match self {
            Job::Probe { entries, .. } => entries.len(),
            Job::Scan { scans, .. } => scans.len(),
            Job::Write { ops, .. } => ops.len(),
            Job::Poison { .. } => 0,
        }
    }
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The service has begun shutdown; no new work is accepted.
    Stopped,
}

/// Why a non-blocking push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TryPushError {
    /// A target queue is over capacity, or blocked pushers hold earlier
    /// FIFO tickets (a try-push never jumps the admission queue).
    Full,
}

/// Atomically try-pushes every `(queue, job)` pair without blocking:
/// all queues are locked together, admission is checked on every part,
/// and jobs are enqueued only when every one fits — all or nothing.
/// This is the submission primitive a non-blocking front-end needs to
/// turn queue backpressure into a typed `Busy` reply instead of a
/// stalled event loop.
///
/// Callers must pass queues in a single consistent order (shard order)
/// so concurrent multi-queue pushers cannot deadlock, and must hold the
/// service's stop gate open (read-locked), which is what keeps the
/// queues unpoisoned for the duration of the call.
pub(crate) fn try_push_all(parts: Vec<(&ShardQueue, Job)>) -> Result<(), TryPushError> {
    let mut guards = Vec::with_capacity(parts.len());
    for (queue, job) in &parts {
        let inner = queue.inner.lock().expect("queue lock");
        // Admission mirrors `push` minus the blocking: the job must fit
        // (or be oversized into an empty queue), and nobody may already
        // be waiting on a ticket. Poisoning cannot race in here — it
        // only happens under the stop gate's write guard.
        debug_assert!(!inner.poisoned, "try_push raced the stop gate");
        let no_waiters = inner.serving == inner.next_ticket;
        let fits =
            inner.queued_keys + job.key_count() <= queue.capacity_keys || inner.jobs.is_empty();
        if inner.poisoned || !no_waiters || !fits {
            return Err(TryPushError::Full); // guards drop; nothing was enqueued
        }
        guards.push(inner);
    }
    for ((queue, job), mut inner) in parts.into_iter().zip(guards) {
        inner.queued_keys += job.key_count();
        inner.jobs.push_back(job);
        queue.not_empty.notify_one();
    }
    Ok(())
}

struct QueueInner {
    jobs: VecDeque<Job>,
    queued_keys: usize,
    poisoned: bool,
    /// FIFO push fairness: next ticket to hand out / ticket being served.
    next_ticket: u64,
    serving: u64,
}

/// A bounded MPSC job queue for one shard worker.
pub(crate) struct ShardQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity_keys: usize,
}

impl ShardQueue {
    pub(crate) fn new(capacity_keys: usize) -> ShardQueue {
        assert!(capacity_keys > 0, "queue capacity must be positive");
        ShardQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                queued_keys: 0,
                poisoned: false,
                next_ticket: 0,
                serving: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity_keys,
        }
    }

    /// Enqueues a probe job, blocking while the queue is over capacity
    /// (backpressure). Blocked pushers are admitted strictly FIFO (a
    /// ticket lock), so an oversized job cannot be starved by a stream
    /// of small ones slipping in whenever a key's worth of space opens.
    /// Fails once the queue has been poisoned.
    pub(crate) fn push(&self, job: Job) -> Result<(), PushError> {
        let n = job.key_count();
        let mut inner = self.inner.lock().expect("queue lock");
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        loop {
            if inner.serving == ticket {
                if inner.poisoned {
                    inner.serving += 1;
                    self.not_full.notify_all();
                    return Err(PushError::Stopped);
                }
                let fits = inner.queued_keys + n <= self.capacity_keys;
                // Escape hatch: one oversized job may enter an empty
                // queue, so a job larger than the whole capacity can
                // never deadlock against it.
                if fits || inner.jobs.is_empty() {
                    inner.jobs.push_back(job);
                    inner.queued_keys += n;
                    inner.serving += 1;
                    self.not_empty.notify_one();
                    // Hand the turn to the next waiting ticket.
                    self.not_full.notify_all();
                    return Ok(());
                }
            }
            inner = self.not_full.wait(inner).expect("queue wait");
        }
    }

    /// Enqueues the poison pill (ignores capacity; marks the queue so
    /// later pushes fail fast).
    pub(crate) fn push_poison(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.poisoned {
            return;
        }
        inner.poisoned = true;
        inner.jobs.push_back(Job::Poison { key: POISON_KEY });
        self.not_empty.notify_all();
        // Clients blocked on a full queue must wake to observe Stopped.
        self.not_full.notify_all();
    }

    /// Blocking pop: waits until a job is available.
    pub(crate) fn pop(&self) -> Job {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                inner.queued_keys -= job.key_count();
                self.not_full.notify_all();
                return job;
            }
            inner = self.not_empty.wait(inner).expect("queue wait");
        }
    }

    /// Pop with a deadline: returns `None` if no job arrives by
    /// `deadline` (used by workers to close a batch on time).
    pub(crate) fn pop_until(&self, deadline: Instant) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                inner.queued_keys -= job.key_count();
                self.not_full.notify_all();
                return Some(job);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("queue wait");
            inner = guard;
            if timeout.timed_out() && inner.jobs.is_empty() {
                return None;
            }
        }
    }

    /// Keys currently waiting (for occupancy/backlog introspection).
    pub(crate) fn backlog_keys(&self) -> usize {
        self.inner.lock().expect("queue lock").queued_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;
    use std::time::Duration;

    fn probe_job(keys: &[u64]) -> Job {
        Job::Probe {
            entries: keys
                .iter()
                .enumerate()
                .map(|(i, k)| (i as u32, *k))
                .collect(),
            reply: Arc::new(ResponseState::new(RequestKind::MultiLookup, 1)),
        }
    }

    #[test]
    fn fifo_order_and_key_accounting() {
        let q = ShardQueue::new(16);
        q.push(probe_job(&[1, 2])).unwrap();
        q.push(probe_job(&[3])).unwrap();
        assert_eq!(q.backlog_keys(), 3);
        match q.pop() {
            Job::Probe { entries, .. } => assert_eq!(entries.len(), 2),
            _ => panic!("unexpected job kind"),
        }
        assert_eq!(q.backlog_keys(), 1);
    }

    #[test]
    fn scan_jobs_count_cursors_toward_capacity() {
        let q = ShardQueue::new(4);
        let reply = Arc::new(ResponseState::new(RequestKind::RangeScan { limit: 9 }, 1));
        q.push(Job::Scan {
            scans: vec![(0, ScanRange::new(1, 5)), (1, ScanRange::new(7, 9))],
            reply,
        })
        .unwrap();
        assert_eq!(q.backlog_keys(), 2, "one unit per cursor");
        match q.pop() {
            Job::Scan { scans, .. } => assert_eq!(scans.len(), 2),
            _ => panic!("unexpected job kind"),
        }
        assert_eq!(q.backlog_keys(), 0);
    }

    #[test]
    fn write_jobs_count_ops_toward_capacity() {
        let q = ShardQueue::new(4);
        let reply = Arc::new(ResponseState::new(RequestKind::Write { ops: 3 }, 1));
        q.push(Job::Write {
            ops: vec![
                (0, WriteOp::Insert { key: 1, payload: 2 }),
                (1, WriteOp::Delete { key: 9 }),
                (2, WriteOp::Update { key: 1, payload: 3 }),
            ],
            ack: true,
            reply,
        })
        .unwrap();
        assert_eq!(q.backlog_keys(), 3, "one unit per write op");
        match q.pop() {
            Job::Write { ops, ack, .. } => {
                assert_eq!(ops.len(), 3);
                assert!(ack);
            }
            _ => panic!("unexpected job kind"),
        }
        assert_eq!(q.backlog_keys(), 0);
    }

    #[test]
    fn backpressure_blocks_until_pop() {
        let q = Arc::new(ShardQueue::new(4));
        q.push(probe_job(&[1, 2, 3, 4])).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            q2.push(probe_job(&[5, 6])).unwrap();
            Instant::now()
        });
        std::thread::sleep(Duration::from_millis(50));
        let popped_at = Instant::now();
        let _ = q.pop();
        let pushed_at = pusher.join().unwrap();
        assert!(
            pushed_at >= popped_at,
            "push must have blocked until space opened"
        );
        assert_eq!(q.backlog_keys(), 2);
    }

    #[test]
    fn oversized_job_admitted_when_empty() {
        let q = ShardQueue::new(2);
        q.push(probe_job(&[1, 2, 3, 4, 5])).unwrap();
        assert_eq!(q.backlog_keys(), 5);
    }

    #[test]
    fn poison_drains_after_queued_work() {
        let q = ShardQueue::new(8);
        q.push(probe_job(&[1])).unwrap();
        q.push_poison();
        assert!(matches!(q.pop(), Job::Probe { .. }), "work before poison");
        match q.pop() {
            Job::Poison { key } => assert_eq!(key, POISON_KEY),
            _ => panic!("expected poison"),
        }
        assert_eq!(q.push(probe_job(&[9])), Err(PushError::Stopped));
    }

    #[test]
    fn oversized_push_is_not_starved_by_small_ones() {
        // cap 4; an oversized job blocks, then a small job arrives. FIFO
        // tickets require the oversized job to be admitted first even
        // though the small one would fit sooner.
        let q = Arc::new(ShardQueue::new(4));
        q.push(probe_job(&[1, 2, 3])).unwrap();
        let qa = Arc::clone(&q);
        let a = std::thread::spawn(move || qa.push(probe_job(&[10; 6])).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        let qb = Arc::clone(&q);
        let b = std::thread::spawn(move || qb.push(probe_job(&[7])).unwrap());
        std::thread::sleep(Duration::from_millis(30));

        // Drain: first the pre-filled job, then A's oversized job, then B's.
        let sizes: Vec<usize> = (0..3)
            .map(|_| match q.pop() {
                Job::Probe { entries, .. } => entries.len(),
                _ => panic!("unexpected job kind"),
            })
            .collect();
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(sizes, vec![3, 6, 1], "FIFO admission order");
    }

    #[test]
    fn try_push_all_is_all_or_nothing() {
        let roomy = ShardQueue::new(16);
        let tight = ShardQueue::new(2);
        tight.push(probe_job(&[1, 2])).unwrap(); // tight is now full
        let parts = vec![(&roomy, probe_job(&[5])), (&tight, probe_job(&[6]))];
        assert_eq!(try_push_all(parts), Err(TryPushError::Full));
        assert_eq!(roomy.backlog_keys(), 0, "no partial enqueue");
        let _ = tight.pop();
        let parts = vec![(&roomy, probe_job(&[5])), (&tight, probe_job(&[6]))];
        assert_eq!(try_push_all(parts), Ok(()));
        assert_eq!((roomy.backlog_keys(), tight.backlog_keys()), (1, 1));
    }

    #[test]
    fn try_push_all_admits_oversized_into_empty_queue() {
        let q = ShardQueue::new(2);
        assert_eq!(
            try_push_all(vec![(&q, probe_job(&[1, 2, 3, 4, 5]))]),
            Ok(())
        );
        assert_eq!(q.backlog_keys(), 5);
        // ... but refuses anything more while the queue is over capacity.
        assert_eq!(
            try_push_all(vec![(&q, probe_job(&[9]))]),
            Err(TryPushError::Full)
        );
    }

    #[test]
    fn try_push_all_defers_to_waiting_tickets() {
        // A blocked pusher holds a FIFO ticket; a try-push that would
        // otherwise fit must yield to it rather than jump the queue.
        let q = Arc::new(ShardQueue::new(4));
        q.push(probe_job(&[1, 2, 3, 4])).unwrap();
        let q2 = Arc::clone(&q);
        let blocked = std::thread::spawn(move || q2.push(probe_job(&[5, 6, 7])).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            try_push_all(vec![(&*q, probe_job(&[8]))]),
            Err(TryPushError::Full)
        );
        let _ = q.pop();
        blocked.join().unwrap();
        assert_eq!(q.backlog_keys(), 3);
        assert_eq!(try_push_all(vec![(&*q, probe_job(&[8]))]), Ok(()));
    }

    #[test]
    fn pop_until_times_out_when_idle() {
        let q = ShardQueue::new(8);
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(q.pop_until(deadline).is_none());
        assert!(Instant::now() >= deadline);
    }

    #[test]
    fn pop_until_returns_early_arrivals() {
        let q = Arc::new(ShardQueue::new(8));
        let q2 = Arc::clone(&q);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(probe_job(&[1])).unwrap();
        });
        let job = q.pop_until(Instant::now() + Duration::from_secs(5));
        assert!(job.is_some(), "job should arrive well before the deadline");
    }
}
