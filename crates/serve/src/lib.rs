//! # widx-serve — a sharded, batched probe-serving engine
//!
//! The paper's Widx accelerator puts *four walkers behind one
//! dispatcher* to mine the inter-key parallelism of index probes.
//! `widx-soft` reproduces that on one core with AMAC interleaving; this
//! crate scales the same shape to a whole socket and wraps it in the
//! request/response surface a production in-memory DB front-end needs —
//! a **software walker pool as a service**:
//!
//! * [`ShardedIndex`] — the index partitioned by
//!   [`HashRecipe::shard_of`](widx_db::hash::HashRecipe::shard_of) into
//!   independent per-worker [`HashIndex`](widx_db::index::HashIndex)es
//!   (the shard-aware build path of `widx_db::index`);
//! * [`ProbeService`] — one worker thread per shard (the dispatcher
//!   role), each driving a resumable
//!   [`AmacWalker`](widx_soft::AmacWalker) ring (the walkers) over
//!   *batches* assembled from a bounded queue: flush at
//!   [`batch_size`](ServeConfig::batch_size) keys or a deadline,
//!   backpressure when queues fill, and poison-pill shutdown mirroring
//!   [`widx_core::POISON_KEY`] — drain accepted work, then halt;
//! * [`OrderedShardedIndex`] — the *range-partitioned* counterpart:
//!   contiguous key spans split by boundary keys, one
//!   [`BTreeIndex`](widx_db::index::BTreeIndex) per shard, serving
//!   [`Request::RangeScan`] through per-shard
//!   [`BTreeRangeWalker`](widx_soft::BTreeRangeWalker) rings — scans
//!   scatter to the adjacent shards their interval overlaps and gather
//!   back into one key-ordered, limit-truncated reply;
//! * typed requests — [`Request::Lookup`], [`Request::MultiLookup`],
//!   [`Request::JoinProbe`], [`Request::RangeScan`] (ascending or
//!   `ORDER BY key DESC` via its `desc` flag) — with per-request
//!   completion latency and per-worker throughput/occupancy telemetry
//!   ([`ServiceStats`]) feeding the `widx-bench` reporting machinery;
//! * **streaming range replies** —
//!   [`range_stream`](ProbeService::range_stream) returns a
//!   [`PendingStream`] whose chunks the gather seam releases in merged
//!   key order *while shards are still scanning* (per-shard walkers
//!   push a chunk every [`stream_chunk`](ServeConfig::stream_chunk)
//!   entries; the request's limit still applies at the seam), with a
//!   completion-wakeup hook ([`PendingStream::set_waker`] /
//!   [`PendingResponse::set_waker`]) so a polling front-end learns
//!   "chunk ready" without scanning its pending lists.
//!
//! Batching across *concurrent requests* is what makes the pool a
//! service rather than a loop: a single `Lookup` arriving alone would
//! waste the walker ring, but dozens of independent requests batched at
//! a shard fill every in-flight slot, exactly like the paper's
//! dispatcher keeping all four walkers busy.
//!
//! # Example
//!
//! ```
//! use widx_db::hash::HashRecipe;
//! use widx_serve::{ProbeService, ServeConfig};
//!
//! let config = ServeConfig::default().with_shards(2).with_batch_size(16);
//! let service = ProbeService::build_with_range(
//!     HashRecipe::robust64(),
//!     (0..10_000u64).map(|k| (k, k + 1)),
//!     &config,
//! );
//! assert_eq!(service.lookup(41).unwrap(), vec![42]);
//!
//! let mut pairs = service.join_probe(&[5, 99_999, 5]).unwrap();
//! pairs.sort_unstable();
//! assert_eq!(pairs, vec![(0, 6), (2, 6)]); // rows 0 and 2 hit, row 1 missed
//!
//! // Ordered serving: key-ordered, limit-truncated range scans.
//! let entries = service.range_scan(100, 5_000, 3).unwrap();
//! assert_eq!(entries, vec![(100, 101), (101, 102), (102, 103)]);
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.total_keys(), 4); // one lookup key + three join rows
//! assert!(stats.total_scan_entries() >= 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod ordered;
mod queue;
mod request;
mod service;
mod shard;
mod stats;
mod worker;

pub use batch::{BatchPolicy, FlushReason};
pub use ordered::OrderedShardedIndex;
pub use queue::PushError;
pub use request::{
    PendingResponse, PendingStream, Request, Response, StreamConsumed, StreamPoll, TraceFinisher,
};
pub use service::{NetTraceCtx, ProbeService, ServeConfig, SubmitError};
pub use shard::ShardedIndex;
pub use stats::{LatencySummary, NetStats, ReactorStats, ServiceStats, StageStats, WorkerStats};
// Re-exported telemetry primitives, so front-ends (the `widx-net`
// server records the reply-write stage) need no direct `widx-obs`
// dependency.
pub use widx_obs::{
    AtomicHistogram, FlightRecorder, HistogramSnapshot, ReactorGauges, RecorderStats, RequestTrace,
    Span, Stage, StageSnapshot, StageTimes, TraceStage, WalkCounters,
};
