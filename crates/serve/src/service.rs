//! The probe service: shard router, worker pool, and client API.

use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use widx_db::hash::HashRecipe;

use crate::batch::BatchPolicy;
use crate::queue::{Job, PushError, ShardQueue};
use crate::request::{PendingResponse, Request, RequestKind, Response, ResponseState};
use crate::shard::ShardedIndex;
use crate::stats::{LatencyRecorder, LatencySummary, ServiceStats, WorkerStats};
use crate::worker::{run_worker, WorkerContext};

/// Tuning knobs for a [`ProbeService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker/shard count (the "walker pool" width across the socket).
    pub shards: usize,
    /// AMAC in-flight depth per worker (walkers per shard).
    pub inflight: usize,
    /// Keys per batch before a size flush.
    pub batch_size: usize,
    /// Longest a batch waits for company before a deadline flush.
    pub batch_deadline: Duration,
    /// Per-shard queue capacity in keys (backpressure threshold).
    pub queue_capacity: usize,
    /// Bucket floor per shard at build time.
    pub min_buckets: usize,
    /// Target entries per bucket at build time.
    pub load: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 4,
            inflight: 8,
            batch_size: 64,
            batch_deadline: Duration::from_micros(200),
            queue_capacity: 4096,
            min_buckets: 64,
            load: 1.0,
        }
    }
}

impl ServeConfig {
    /// Sets the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> ServeConfig {
        self.shards = shards;
        self
    }

    /// Sets the per-worker AMAC in-flight depth.
    #[must_use]
    pub fn with_inflight(mut self, inflight: usize) -> ServeConfig {
        self.inflight = inflight;
        self
    }

    /// Sets the size-flush threshold.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> ServeConfig {
        self.batch_size = batch_size;
        self
    }

    /// Sets the deadline-flush bound.
    #[must_use]
    pub fn with_batch_deadline(mut self, deadline: Duration) -> ServeConfig {
        self.batch_deadline = deadline;
        self
    }

    /// Sets the per-shard queue capacity (keys).
    #[must_use]
    pub fn with_queue_capacity(mut self, keys: usize) -> ServeConfig {
        self.queue_capacity = keys;
        self
    }
}

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The service has shut down (or is in the middle of doing so).
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Stopped => write!(f, "probe service is stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A running probe-serving engine: one worker thread per shard, each
/// driving AMAC walkers over its own index partition.
///
/// Shutdown mirrors the accelerator's poison-pill protocol
/// ([`widx_core::POISON_KEY`]): [`stop`](ProbeService::stop) (or
/// [`shutdown`](ProbeService::shutdown)) enqueues one pill per shard
/// *behind* all accepted work, so every request submitted before the
/// stop still completes — drain, then halt. After `stop`, new
/// submissions fail with [`SubmitError::Stopped`].
pub struct ProbeService {
    sharded: Arc<ShardedIndex>,
    queues: Vec<Arc<ShardQueue>>,
    workers: Vec<JoinHandle<(WorkerStats, LatencyRecorder)>>,
    started: Instant,
    /// Stop gate: `submit` holds a read guard across all of its queue
    /// pushes; `stop` flips the flag and poisons the queues under the
    /// write guard. A request is therefore accepted (every shard part
    /// enqueued) or refused atomically — it can never be half-enqueued
    /// by racing with `stop`.
    stopped: RwLock<bool>,
}

impl ProbeService {
    /// Builds the sharded index from `pairs` and starts serving.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration (zero shards/inflight/batch
    /// size/queue capacity) or if a worker thread cannot be spawned.
    #[must_use]
    pub fn build(
        recipe: HashRecipe,
        pairs: impl IntoIterator<Item = (u64, u64)>,
        config: &ServeConfig,
    ) -> ProbeService {
        let sharded = ShardedIndex::build(
            recipe,
            config.shards,
            config.min_buckets,
            config.load,
            pairs,
        );
        ProbeService::start(sharded, config)
    }

    /// Starts serving an already-built [`ShardedIndex`]. The worker
    /// count is the index's shard count; `config.shards` is ignored.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration or if a worker thread cannot
    /// be spawned.
    #[must_use]
    pub fn start(sharded: ShardedIndex, config: &ServeConfig) -> ProbeService {
        assert!(config.inflight > 0, "need at least one in-flight probe");
        let policy = BatchPolicy::new(config.batch_size, config.batch_deadline);
        let sharded = Arc::new(sharded);
        let queues: Vec<Arc<ShardQueue>> = (0..sharded.shard_count())
            .map(|_| Arc::new(ShardQueue::new(config.queue_capacity)))
            .collect();
        let workers = queues
            .iter()
            .enumerate()
            .map(|(shard, queue)| {
                let ctx = WorkerContext {
                    shard,
                    queue: Arc::clone(queue),
                    sharded: Arc::clone(&sharded),
                    policy,
                    inflight: config.inflight,
                };
                std::thread::Builder::new()
                    .name(format!("widx-serve-{shard}"))
                    .spawn(move || run_worker(&ctx))
                    .expect("spawn shard worker")
            })
            .collect();
        ProbeService {
            sharded,
            queues,
            workers,
            started: Instant::now(),
            stopped: RwLock::new(false),
        }
    }

    /// The served index.
    #[must_use]
    pub fn sharded(&self) -> &ShardedIndex {
        &self.sharded
    }

    /// Keys currently queued per shard (backlog snapshot).
    #[must_use]
    pub fn backlog(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.backlog_keys()).collect()
    }

    /// Submits a request, blocking only when a target shard queue is
    /// over capacity (backpressure). The returned handle resolves once
    /// every involved shard has answered.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once [`stop`](ProbeService::stop) or
    /// shutdown has begun.
    pub fn submit(&self, request: Request) -> Result<PendingResponse, SubmitError> {
        let kind = match &request {
            Request::Lookup { key } => RequestKind::Lookup { key: *key },
            Request::MultiLookup { .. } => RequestKind::MultiLookup,
            Request::JoinProbe { .. } => RequestKind::JoinProbe,
        };
        self.submit_keys(kind, request.keys())
    }

    /// The real submission path: partitions `keys` by shard and
    /// enqueues every part while holding the stop gate's read guard, so
    /// acceptance is all-or-nothing with respect to `stop`.
    fn submit_keys(&self, kind: RequestKind, keys: &[u64]) -> Result<PendingResponse, SubmitError> {
        let stopped = self.stopped.read().expect("stop gate");
        if *stopped {
            return Err(SubmitError::Stopped);
        }
        assert!(
            u32::try_from(keys.len()).is_ok(),
            "request exceeds u32 row space"
        );
        let state;
        if let [key] = keys {
            // Fast path: a single-key request touches exactly one shard
            // — skip the per-shard partition scaffolding.
            state = Arc::new(ResponseState::new(kind, 1));
            let job = Job::Probe {
                entries: vec![(0, *key)],
                reply: Arc::clone(&state),
            };
            self.push_part(self.sharded.shard_of(*key), job);
        } else {
            let shard_count = self.sharded.shard_count();
            let mut parts: Vec<Vec<(u32, u64)>> = vec![Vec::new(); shard_count];
            for (row, key) in keys.iter().enumerate() {
                parts[self.sharded.shard_of(*key)].push((row as u32, *key));
            }
            let live_parts = parts.iter().filter(|p| !p.is_empty()).count();
            state = Arc::new(ResponseState::new(kind, live_parts));
            for (shard, entries) in parts.into_iter().enumerate() {
                if entries.is_empty() {
                    continue;
                }
                let job = Job::Probe {
                    entries,
                    reply: Arc::clone(&state),
                };
                self.push_part(shard, job);
            }
        }
        drop(stopped);
        Ok(PendingResponse { state })
    }

    fn push_part(&self, shard: usize, job: Job) {
        match self.queues[shard].push(job) {
            Ok(()) => {}
            // Queues are poisoned only under the stop gate's write
            // guard, which cannot be held while we hold the read guard.
            Err(PushError::Stopped) => unreachable!("queue poisoned while stop gate held open"),
        }
    }

    /// Blocking convenience: all payloads under `key`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn lookup(&self, key: u64) -> Result<Vec<u64>, SubmitError> {
        match self
            .submit_keys(RequestKind::Lookup { key }, &[key])?
            .wait()
        {
            Response::Lookup { payloads, .. } => Ok(payloads),
            _ => unreachable!("lookup requests assemble lookup responses"),
        }
    }

    /// Blocking convenience: `(key, payload)` matches for `keys`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn multi_lookup(&self, keys: &[u64]) -> Result<Vec<(u64, u64)>, SubmitError> {
        match self.submit_keys(RequestKind::MultiLookup, keys)?.wait() {
            Response::MultiLookup { matches } => Ok(matches),
            _ => unreachable!("multi-lookup requests assemble multi-lookup responses"),
        }
    }

    /// Blocking convenience: `(probe row, payload)` join pairs for the
    /// outer column `keys`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn join_probe(&self, keys: &[u64]) -> Result<Vec<(u64, u64)>, SubmitError> {
        match self.submit_keys(RequestKind::JoinProbe, keys)?.wait() {
            Response::JoinProbe { pairs } => Ok(pairs),
            _ => unreachable!("join-probe requests assemble join-probe responses"),
        }
    }

    /// Begins shutdown without consuming the service: marks the service
    /// stopped (subsequent [`submit`](ProbeService::submit)s fail with
    /// [`SubmitError::Stopped`]) and enqueues one poison pill per shard
    /// behind all accepted work. Workers drain, then halt; call
    /// [`shutdown`](ProbeService::shutdown) to join them and collect
    /// statistics. Idempotent.
    pub fn stop(&self) {
        let mut stopped = self.stopped.write().expect("stop gate");
        if !*stopped {
            *stopped = true;
            for queue in &self.queues {
                queue.push_poison();
            }
        }
    }

    /// Drains all accepted work, halts every worker (poison pill per
    /// shard), and returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked (after joining the rest).
    /// [`Drop`] performs the same join but swallows worker panics, so a
    /// service dropped during unwinding never aborts the process.
    #[must_use]
    pub fn shutdown(mut self) -> ServiceStats {
        let (stats, panicked) = self
            .shutdown_inner()
            .expect("first shutdown always yields stats");
        assert!(panicked == 0, "{panicked} shard worker(s) panicked");
        stats
    }

    fn shutdown_inner(&mut self) -> Option<(ServiceStats, usize)> {
        self.stop();
        if self.workers.is_empty() {
            return None; // Already joined by a prior shutdown.
        }
        let mut panicked = 0usize;
        let mut joined: Vec<(WorkerStats, LatencyRecorder)> = std::mem::take(&mut self.workers)
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(out) => Some(out),
                Err(_) => {
                    panicked += 1;
                    None
                }
            })
            .collect();
        joined.sort_by_key(|(w, _)| w.shard);
        let mut completions = 0u64;
        let mut samples = Vec::new();
        let mut workers = Vec::with_capacity(joined.len());
        for (w, recorder) in joined {
            completions += recorder.seen();
            samples.extend(recorder.into_samples());
            workers.push(w);
        }
        // Percentiles come from the (possibly decimated) samples;
        // `count` reports true completions.
        let mut latency = LatencySummary::from_samples(samples);
        latency.count = usize::try_from(completions).unwrap_or(usize::MAX);
        Some((
            ServiceStats {
                workers,
                latency,
                wall: self.started.elapsed(),
            },
            panicked,
        ))
    }
}

impl Drop for ProbeService {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(entries: u64, config: &ServeConfig) -> ProbeService {
        ProbeService::build(
            HashRecipe::robust64(),
            (0..entries).map(|k| (k, k * 2)),
            config,
        )
    }

    #[test]
    fn lookup_hits_and_misses() {
        let s = service(1000, &ServeConfig::default());
        assert_eq!(s.lookup(7).unwrap(), vec![14]);
        assert_eq!(s.lookup(5000).unwrap(), Vec::<u64>::new());
        let stats = s.shutdown();
        assert_eq!(stats.total_keys(), 2);
        assert_eq!(stats.total_matches(), 1);
        assert_eq!(stats.latency.count, 2);
    }

    #[test]
    fn multi_lookup_spans_shards() {
        let s = service(1000, &ServeConfig::default().with_batch_size(8));
        let keys: Vec<u64> = (0..500).collect();
        let mut got = s.multi_lookup(&keys).unwrap();
        got.sort_unstable();
        let want: Vec<(u64, u64)> = (0..500).map(|k| (k, k * 2)).collect();
        assert_eq!(got, want);
        let stats = s.shutdown();
        assert_eq!(stats.total_keys(), 501 - 1);
        assert!(stats.workers.len() == 4);
        assert!(
            stats.workers.iter().all(|w| w.keys > 0),
            "all shards probed"
        );
    }

    #[test]
    fn join_probe_reports_rows() {
        let s = service(100, &ServeConfig::default());
        // Rows 0 and 2 hit the same key; row 1 misses.
        let mut got = s.join_probe(&[4, 7777, 4]).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 8), (2, 8)]);
    }

    #[test]
    fn duplicate_keys_in_one_request_all_answered() {
        let s = service(50, &ServeConfig::default());
        let mut got = s.multi_lookup(&[3, 3, 3]).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![(3, 6), (3, 6), (3, 6)]);
    }

    #[test]
    fn empty_request_completes_instantly() {
        let s = service(10, &ServeConfig::default());
        assert_eq!(s.multi_lookup(&[]).unwrap(), vec![]);
    }

    #[test]
    fn submit_after_stop_fails_but_accepted_work_completes() {
        let s = service(10, &ServeConfig::default());
        let pending = s.submit(Request::Lookup { key: 1 }).unwrap();
        s.stop();
        assert_eq!(
            s.submit(Request::Lookup { key: 2 }).err(),
            Some(SubmitError::Stopped),
            "post-stop submissions are refused"
        );
        assert_eq!(s.lookup(3), Err(SubmitError::Stopped));
        let stats = s.shutdown();
        assert_eq!(
            pending.wait(),
            Response::Lookup {
                key: 1,
                payloads: vec![2]
            }
        );
        assert!(stats.wall > Duration::ZERO);
        assert_eq!(stats.latency.count, 1, "only the accepted request ran");
    }

    #[test]
    fn stop_is_idempotent() {
        let s = service(10, &ServeConfig::default());
        s.stop();
        s.stop();
        let stats = s.shutdown();
        assert_eq!(stats.total_keys(), 0);
    }

    #[test]
    fn pipelined_submissions_all_resolve() {
        let s = service(2000, &ServeConfig::default().with_batch_size(32));
        let pendings: Vec<PendingResponse> = (0..200)
            .map(|i| s.submit(Request::Lookup { key: i }).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            match p.wait() {
                Response::Lookup { key, payloads } => {
                    assert_eq!(key, i as u64);
                    assert_eq!(payloads, vec![i as u64 * 2]);
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
        let stats = s.shutdown();
        assert_eq!(stats.latency.count, 200);
        // Batching must have occurred: fewer batches than requests.
        let batches: u64 = stats.workers.iter().map(|w| w.batches).sum();
        assert!(batches < 200, "batches {batches}");
    }

    #[test]
    fn drop_without_shutdown_halts_workers() {
        let s = service(10, &ServeConfig::default());
        let _ = s.lookup(1);
        drop(s); // must not hang
    }
}
