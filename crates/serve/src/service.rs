//! The probe service: shard router, worker pool, and client API.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use widx_db::epoch::EpochDomain;
use widx_db::hash::HashRecipe;
use widx_obs::{
    ActiveTrace, FlightRecorder, HistogramSnapshot, ProfCell, ProfSnapshot, StageTimes, TraceStage,
    WorkerCell,
};
use widx_soft::ScanRange;

use crate::batch::BatchPolicy;
use crate::ordered::OrderedShardedIndex;
use crate::queue::{Job, PushError, ShardQueue};
use crate::request::{
    PendingResponse, PendingStream, Request, RequestKind, Response, ResponseState, TraceState,
    WriteOp,
};
use crate::shard::ShardedIndex;
use crate::stats::{LatencySummary, ServiceStats, StageStats, WorkerStats};
use crate::worker::{run_range_worker, run_worker, RangeWorkerContext, WorkerContext};

/// Tuning knobs for a [`ProbeService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker/shard count (the "walker pool" width across the socket).
    /// Applies to the hashed tier and, when built, the ordered tier.
    pub shards: usize,
    /// In-flight depth per worker: AMAC probes on hash shards, resumable
    /// scan cursors on ordered shards (walkers per shard).
    pub inflight: usize,
    /// Keys per batch before a size flush.
    pub batch_size: usize,
    /// Longest a batch waits for company before a deadline flush.
    pub batch_deadline: Duration,
    /// Per-shard queue capacity in keys (backpressure threshold).
    pub queue_capacity: usize,
    /// Bucket floor per shard at build time.
    pub min_buckets: usize,
    /// Target entries per bucket at build time.
    pub load: f64,
    /// B+-tree fanout for the ordered tier at build time.
    pub fanout: usize,
    /// Entries per chunk on streaming range scans: a range worker
    /// pushes a chunk to the gather seam every `stream_chunk` entries
    /// its walker yields for one scan (the tail chunk may be smaller).
    /// Smaller chunks cut first-chunk latency; larger ones amortize
    /// seam and framing overhead.
    pub stream_chunk: usize,
    /// Head sampling rate for per-request traces: record every `N`th
    /// request into the flight recorder. `0` (the default) disables
    /// head sampling entirely — with no slow threshold either, the
    /// trace seam is never armed and requests carry zero tracing cost.
    pub trace_sample: u64,
    /// Tail sampling: any request whose end-to-end latency reaches this
    /// threshold is always recorded (regardless of head sampling) and
    /// emitted to the rate-limited slow-request log. `None` (the
    /// default) disables tail sampling.
    pub slow_threshold: Option<Duration>,
    /// Flight-recorder ring capacity in traces.
    pub trace_capacity: usize,
    /// Hardware profiling: when set, every worker thread opens a
    /// `perf-event` counter group (cycles, instructions, LLC misses,
    /// dTLB misses) and attributes windows to the stage seam, so
    /// [`ProbeService::live_stats`] and the `Profile` wire opcode carry
    /// a per-stage cycle breakdown with derived IPC / MPKI /
    /// stall-fraction / effective-MLP. On hosts without usable hardware
    /// counters the groups degrade to the software backend (the
    /// snapshot says so) — enabling this never fails. Off by default:
    /// unprofiled workers pay nothing.
    pub profile: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 4,
            inflight: 8,
            batch_size: 64,
            batch_deadline: Duration::from_micros(200),
            queue_capacity: 4096,
            min_buckets: 64,
            load: 1.0,
            fanout: 8,
            stream_chunk: 512,
            trace_sample: 0,
            slow_threshold: None,
            trace_capacity: 256,
            profile: false,
        }
    }
}

impl ServeConfig {
    /// Sets the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> ServeConfig {
        self.shards = shards;
        self
    }

    /// Sets the per-worker AMAC in-flight depth.
    #[must_use]
    pub fn with_inflight(mut self, inflight: usize) -> ServeConfig {
        self.inflight = inflight;
        self
    }

    /// Sets the size-flush threshold.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> ServeConfig {
        self.batch_size = batch_size;
        self
    }

    /// Sets the deadline-flush bound.
    #[must_use]
    pub fn with_batch_deadline(mut self, deadline: Duration) -> ServeConfig {
        self.batch_deadline = deadline;
        self
    }

    /// Sets the per-shard queue capacity (keys).
    #[must_use]
    pub fn with_queue_capacity(mut self, keys: usize) -> ServeConfig {
        self.queue_capacity = keys;
        self
    }

    /// Sets the ordered tier's B+-tree fanout.
    #[must_use]
    pub fn with_fanout(mut self, fanout: usize) -> ServeConfig {
        self.fanout = fanout;
        self
    }

    /// Sets the streaming chunk size (entries per chunk).
    #[must_use]
    pub fn with_stream_chunk(mut self, entries: usize) -> ServeConfig {
        self.stream_chunk = entries;
        self
    }

    /// Sets the head-sampling rate (`0` disables head sampling).
    #[must_use]
    pub fn with_trace_sample(mut self, one_in: u64) -> ServeConfig {
        self.trace_sample = one_in;
        self
    }

    /// Sets the tail-sampling slow threshold (`None` disables).
    #[must_use]
    pub fn with_slow_threshold(mut self, threshold: Option<Duration>) -> ServeConfig {
        self.slow_threshold = threshold;
        self
    }

    /// Sets the flight-recorder ring capacity in traces.
    #[must_use]
    pub fn with_trace_capacity(mut self, traces: usize) -> ServeConfig {
        self.trace_capacity = traces;
        self
    }

    /// Enables per-worker hardware profiling (see
    /// [`profile`](ServeConfig::profile)).
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> ServeConfig {
        self.profile = profile;
        self
    }
}

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The service has shut down (or is in the middle of doing so).
    Stopped,
    /// A [`Request::RangeScan`] was submitted to a service built without
    /// an ordered tier (see
    /// [`build_with_range`](ProbeService::build_with_range)).
    NoOrderedIndex,
    /// A non-blocking submission ([`try_submit`](ProbeService::try_submit))
    /// found a target shard queue at capacity. The request was *not*
    /// enqueued anywhere — retry later. Blocking paths never return
    /// this; they wait out the backpressure instead.
    Busy,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Stopped => write!(f, "probe service is stopped"),
            SubmitError::NoOrderedIndex => {
                write!(f, "probe service has no ordered index for range scans")
            }
            SubmitError::Busy => write!(f, "probe service shard queue is at capacity"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What the net tier knows about a request when it submits one on
/// behalf of a connection — passed to the `*_traced` submission surface
/// so an armed trace is anchored at the frame-decode instant, carries
/// the wire request id, and is *deferred*: the service leaves the
/// completed trace attached for the reactor to close with the
/// reply-write span (see `PendingResponse::take_trace`).
#[derive(Clone, Copy, Debug)]
pub struct NetTraceCtx {
    /// Index of the reactor that decoded the frame.
    pub reactor: u32,
    /// The wire request id.
    pub id: u64,
    /// When the frame finished decoding — the trace timeline's base, so
    /// the net-read (decode-to-submit) leg is on the record.
    pub decoded_at: Instant,
}

/// A running probe-serving engine: one worker thread per shard, each
/// driving AMAC walkers over its own index partition.
///
/// Shutdown mirrors the accelerator's poison-pill protocol
/// ([`widx_core::POISON_KEY`]): [`stop`](ProbeService::stop) (or
/// [`shutdown`](ProbeService::shutdown)) enqueues one pill per shard
/// *behind* all accepted work, so every request submitted before the
/// stop still completes — drain, then halt. After `stop`, new
/// submissions fail with [`SubmitError::Stopped`].
pub struct ProbeService {
    sharded: Arc<ShardedIndex>,
    queues: Vec<Arc<ShardQueue>>,
    workers: Vec<JoinHandle<()>>,
    /// The ordered (range-partitioned B+-tree) tier, when built: its
    /// index, per-shard queues, and worker handles. `None` on services
    /// built for point traffic only.
    ordered: Option<Arc<OrderedShardedIndex>>,
    range_queues: Vec<Arc<ShardQueue>>,
    range_workers: Vec<JoinHandle<()>>,
    /// Per-worker registry cells (shard order): each worker publishes
    /// its counters and latencies here while it runs, so stats are a
    /// read-only snapshot at any time — no join required.
    cells: Vec<Arc<WorkerCell>>,
    range_cells: Vec<Arc<WorkerCell>>,
    /// Per-worker hardware-profiling cells (shard order), populated only
    /// when the config enabled profiling — both empty otherwise, which
    /// is also how `snapshot_stats` knows profiling is off.
    prof_cells: Vec<Arc<ProfCell>>,
    range_prof_cells: Vec<Arc<ProfCell>>,
    /// The shared stage-timing seam (queue-wait / batch-wait / walk /
    /// write / gather / reply-write).
    stages: Arc<StageTimes>,
    /// The service-wide epoch-reclamation domain: every shard (both
    /// tiers) retires into it, every worker registers with it, and its
    /// retired/reclaimed gauges surface as `widx_epoch_*` metrics.
    domain: Arc<EpochDomain>,
    /// The per-request trace ring; always present, only written when
    /// the sampling knobs arm traces.
    recorder: Arc<FlightRecorder>,
    /// Head-sampling counter (every request ticks it while tracing is
    /// armed; every `trace_sample`th tick arms a trace).
    trace_seq: AtomicU64,
    trace_sample: u64,
    slow_threshold: Option<Duration>,
    started: Instant,
    /// Stop gate: `submit` holds a read guard across all of its queue
    /// pushes; `stop` flips the flag and poisons the queues under the
    /// write guard. A request is therefore accepted (every shard part
    /// enqueued) or refused atomically — it can never be half-enqueued
    /// by racing with `stop`.
    stopped: RwLock<bool>,
    /// The statistics from the join that already happened, kept so a
    /// second pass through `shutdown_inner` (an explicit `shutdown`
    /// followed by `Drop`, or a `stop` racing a concurrent shutdown
    /// path) returns them instead of panicking on "nothing to join".
    joined: Option<(ServiceStats, usize)>,
}

impl ProbeService {
    /// Builds the sharded index from `pairs` and starts serving.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration (zero shards/inflight/batch
    /// size/queue capacity) or if a worker thread cannot be spawned.
    #[must_use]
    pub fn build(
        recipe: HashRecipe,
        pairs: impl IntoIterator<Item = (u64, u64)>,
        config: &ServeConfig,
    ) -> ProbeService {
        let sharded = ShardedIndex::build(
            recipe,
            config.shards,
            config.min_buckets,
            config.load,
            &EpochDomain::new(),
            pairs,
        );
        ProbeService::start(sharded, config)
    }

    /// Builds *both* tiers over the same `pairs` — the hash-sharded
    /// index for point traffic and the range-partitioned B+-tree tier
    /// for [`Request::RangeScan`] — and starts serving. The production
    /// shape of a table with a hash index and an ordered index over the
    /// same column.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration or if a worker thread cannot
    /// be spawned.
    #[must_use]
    pub fn build_with_range(
        recipe: HashRecipe,
        pairs: impl IntoIterator<Item = (u64, u64)>,
        config: &ServeConfig,
    ) -> ProbeService {
        let pairs: Vec<(u64, u64)> = pairs.into_iter().collect();
        let domain = EpochDomain::new();
        let sharded = ShardedIndex::build(
            recipe,
            config.shards,
            config.min_buckets,
            config.load,
            &domain,
            pairs.iter().copied(),
        );
        let ordered = OrderedShardedIndex::build(config.fanout, config.shards, &domain, pairs);
        ProbeService::start_with_ordered(sharded, ordered, config)
    }

    /// Starts serving an already-built [`ShardedIndex`]. The worker
    /// count is the index's shard count; `config.shards` is ignored.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration or if a worker thread cannot
    /// be spawned.
    #[must_use]
    pub fn start(sharded: ShardedIndex, config: &ServeConfig) -> ProbeService {
        ProbeService::start_inner(sharded, None, config)
    }

    /// Starts serving already-built point and ordered tiers. Worker
    /// counts are the indexes' own shard counts; `config.shards` is
    /// ignored (the tiers need not even agree).
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configuration or if a worker thread cannot
    /// be spawned.
    #[must_use]
    pub fn start_with_ordered(
        sharded: ShardedIndex,
        ordered: OrderedShardedIndex,
        config: &ServeConfig,
    ) -> ProbeService {
        ProbeService::start_inner(sharded, Some(ordered), config)
    }

    fn start_inner(
        sharded: ShardedIndex,
        ordered: Option<OrderedShardedIndex>,
        config: &ServeConfig,
    ) -> ProbeService {
        assert!(config.inflight > 0, "need at least one in-flight probe");
        assert!(config.stream_chunk > 0, "need a positive stream chunk");
        let policy = BatchPolicy::new(config.batch_size, config.batch_deadline);
        // Re-home every shard onto one service-owned domain, whatever
        // domain(s) the tiers were built against: workers advance and
        // reclaim against *this* domain, so a foreign domain would
        // strand retired nodes. Freshly built tiers have retired
        // nothing, so re-homing is a pure pointer swap.
        let domain = EpochDomain::new();
        for shard in 0..sharded.shard_count() {
            sharded.write(shard).set_domain(Arc::clone(&domain));
        }
        if let Some(ordered) = &ordered {
            for shard in 0..ordered.shard_count() {
                ordered.write(shard).set_domain(Arc::clone(&domain));
            }
        }
        let sharded = Arc::new(sharded);
        let stages = Arc::new(StageTimes::new());
        let queues: Vec<Arc<ShardQueue>> = (0..sharded.shard_count())
            .map(|_| Arc::new(ShardQueue::new(config.queue_capacity)))
            .collect();
        let cells: Vec<Arc<WorkerCell>> = (0..sharded.shard_count())
            .map(|_| Arc::new(WorkerCell::new()))
            .collect();
        let prof_for = |count: usize| -> Vec<Arc<ProfCell>> {
            if config.profile {
                (0..count).map(|_| Arc::new(ProfCell::new())).collect()
            } else {
                Vec::new()
            }
        };
        let prof_cells = prof_for(sharded.shard_count());
        let workers = queues
            .iter()
            .enumerate()
            .map(|(shard, queue)| {
                let ctx = WorkerContext {
                    shard,
                    queue: Arc::clone(queue),
                    sharded: Arc::clone(&sharded),
                    policy,
                    inflight: config.inflight,
                    cell: Arc::clone(&cells[shard]),
                    stages: Arc::clone(&stages),
                    prof: prof_cells.get(shard).cloned(),
                    domain: Arc::clone(&domain),
                };
                std::thread::Builder::new()
                    .name(format!("widx-serve-{shard}"))
                    .spawn(move || run_worker(&ctx))
                    .expect("spawn shard worker")
            })
            .collect();
        let ordered = ordered.map(Arc::new);
        let mut range_queues = Vec::new();
        let mut range_cells = Vec::new();
        let mut range_prof_cells = Vec::new();
        let mut range_workers = Vec::new();
        if let Some(ordered) = &ordered {
            range_queues = (0..ordered.shard_count())
                .map(|_| Arc::new(ShardQueue::new(config.queue_capacity)))
                .collect();
            range_cells = (0..ordered.shard_count())
                .map(|_| Arc::new(WorkerCell::new()))
                .collect();
            range_prof_cells = prof_for(ordered.shard_count());
            range_workers = range_queues
                .iter()
                .enumerate()
                .map(|(shard, queue)| {
                    let ctx = RangeWorkerContext {
                        shard,
                        queue: Arc::clone(queue),
                        ordered: Arc::clone(ordered),
                        policy,
                        inflight: config.inflight,
                        stream_chunk: config.stream_chunk,
                        cell: Arc::clone(&range_cells[shard]),
                        stages: Arc::clone(&stages),
                        prof: range_prof_cells.get(shard).cloned(),
                        domain: Arc::clone(&domain),
                    };
                    std::thread::Builder::new()
                        .name(format!("widx-range-{shard}"))
                        .spawn(move || run_range_worker(&ctx))
                        .expect("spawn range shard worker")
                })
                .collect();
        }
        ProbeService {
            sharded,
            queues,
            workers,
            ordered,
            range_queues,
            range_workers,
            cells,
            range_cells,
            prof_cells,
            range_prof_cells,
            stages,
            domain,
            recorder: Arc::new(FlightRecorder::new(config.trace_capacity)),
            trace_seq: AtomicU64::new(0),
            trace_sample: config.trace_sample,
            slow_threshold: config.slow_threshold,
            started: Instant::now(),
            stopped: RwLock::new(false),
            joined: None,
        }
    }

    /// The served index.
    #[must_use]
    pub fn sharded(&self) -> &ShardedIndex {
        &self.sharded
    }

    /// The served ordered index, when the service has a range tier.
    #[must_use]
    pub fn ordered(&self) -> Option<&OrderedShardedIndex> {
        self.ordered.as_deref()
    }

    /// The service-wide epoch-reclamation domain (both tiers retire
    /// into it; its gauges back the `widx_epoch_*` metrics).
    #[must_use]
    pub fn epoch_domain(&self) -> Arc<EpochDomain> {
        Arc::clone(&self.domain)
    }

    /// Keys currently queued per shard (backlog snapshot).
    #[must_use]
    pub fn backlog(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.backlog_keys()).collect()
    }

    /// Scan cursors currently queued per ordered shard (empty without a
    /// range tier).
    #[must_use]
    pub fn range_backlog(&self) -> Vec<usize> {
        self.range_queues.iter().map(|q| q.backlog_keys()).collect()
    }

    /// Whether the sampling knobs can ever arm a trace — the cheap
    /// check front-ends use to skip building a [`NetTraceCtx`] when
    /// tracing is off.
    #[must_use]
    pub fn tracing_armed(&self) -> bool {
        self.trace_sample > 0 || self.slow_threshold.is_some()
    }

    /// The per-request flight recorder (always present; empty unless
    /// the sampling knobs arm traces).
    #[must_use]
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// The flight recorder's gauges plus recent traces as one JSON
    /// document — the payload of the `Trace` wire opcode.
    #[must_use]
    pub fn traces_json(&self) -> String {
        self.recorder.to_json()
    }

    /// Whether the service was built with hardware profiling enabled
    /// ([`ServeConfig::with_profile`]).
    #[must_use]
    pub fn profiling_enabled(&self) -> bool {
        !self.prof_cells.is_empty() || !self.range_prof_cells.is_empty()
    }

    /// The merged profiling snapshot across every worker, or `None`
    /// when the service was built without profiling.
    #[must_use]
    pub fn prof_snapshot(&self) -> Option<ProfSnapshot> {
        if !self.profiling_enabled() {
            return None;
        }
        let mut merged = ProfSnapshot::default();
        for cell in self.prof_cells.iter().chain(&self.range_prof_cells) {
            merged.merge(&cell.snapshot());
        }
        Some(merged)
    }

    /// The profiling snapshot as a self-describing JSON document — the
    /// payload of the `Profile` wire opcode. An unprofiled service
    /// answers `{"enabled": false}` rather than erroring, so a scraper
    /// can probe for the capability.
    #[must_use]
    pub fn profile_json(&self) -> String {
        match self.prof_snapshot() {
            Some(snap) => format!("{{\"enabled\": true, \"prof\": {}}}", snap.to_json()),
            None => "{\"enabled\": false}".to_owned(),
        }
    }

    /// Decide whether this request carries a trace, and build it. Runs
    /// at plan time, *before* the request is enqueued, which is what
    /// makes net-deferred commits race-free: the deferral policy is
    /// fixed before any worker can complete the request.
    fn arm_trace(&self, kind: &'static str, net: Option<&NetTraceCtx>) -> Option<Box<TraceState>> {
        if !self.tracing_armed() {
            return None;
        }
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        let sampled = self.trace_sample > 0 && seq.is_multiple_of(self.trace_sample);
        if !sampled && self.slow_threshold.is_none() {
            return None;
        }
        let (base, id, reactor) = match net {
            Some(ctx) => (ctx.decoded_at, ctx.id, Some(ctx.reactor)),
            None => (Instant::now(), seq, None),
        };
        let mut active = ActiveTrace::new(base, id, kind, sampled);
        if let Some(rix) = reactor {
            active.set_reactor(rix);
        }
        if net.is_some() {
            active.span_between(TraceStage::NetRead, base, Instant::now());
        }
        Some(Box::new(TraceState {
            active,
            recorder: Arc::clone(&self.recorder),
            slow_threshold: self.slow_threshold,
            deferred: net.is_some(),
            _commit_ticket: self.recorder.begin_commit(),
        }))
    }

    /// Submits a request, blocking only when a target shard queue is
    /// over capacity (backpressure). The returned handle resolves once
    /// every involved shard has answered.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once [`stop`](ProbeService::stop) or
    /// shutdown has begun.
    pub fn submit(&self, request: Request) -> Result<PendingResponse, SubmitError> {
        let kind = match &request {
            Request::Lookup { key } => RequestKind::Lookup { key: *key },
            Request::MultiLookup { .. } => RequestKind::MultiLookup,
            Request::JoinProbe { .. } => RequestKind::JoinProbe,
            Request::RangeScan {
                lo,
                hi,
                limit,
                desc,
            } => {
                return self.submit_scan(*lo, *hi, *limit, *desc);
            }
            Request::Insert { .. } | Request::Delete { .. } | Request::Update { .. } => {
                let ops = request.write_ops().expect("write request variant");
                return self.submit_write(Self::write_kind_name(&request), ops);
            }
        };
        self.submit_keys(kind, request.keys())
    }

    /// The trace kind label of a write request variant.
    fn write_kind_name(request: &Request) -> &'static str {
        match request {
            Request::Insert { .. } => "insert",
            Request::Delete { .. } => "delete",
            Request::Update { .. } => "update",
            _ => unreachable!("not a write request"),
        }
    }

    /// The blocking write submission path: scatters `ops` over both
    /// tiers' owning shards and enqueues every part under the stop
    /// gate's read guard (all-or-nothing with respect to `stop`).
    fn submit_write(
        &self,
        kind_name: &'static str,
        ops: Vec<WriteOp>,
    ) -> Result<PendingResponse, SubmitError> {
        let stopped = self.stopped.read().expect("stop gate");
        if *stopped {
            return Err(SubmitError::Stopped);
        }
        let (state, parts) = self.plan_write(kind_name, &ops, None);
        for (range_tier, shard, job) in parts {
            let queue = if range_tier {
                &self.range_queues[shard]
            } else {
                &self.queues[shard]
            };
            self.push_part(queue, job);
        }
        drop(stopped);
        Ok(PendingResponse { state })
    }

    /// Scatters a write over the shards that own its keys: the hash
    /// tier routes by `shard_of` and carries the acks (its parts report
    /// `(op, key, applied)` rows); the ordered tier, when built, routes
    /// by the *pure* `write_shard_of` and applies the same mutations
    /// silently (parts complete empty). Returned parts are `(range
    /// tier, shard, job)` in a fixed order — hash shards ascending,
    /// then ordered shards ascending — the single consistent lock
    /// order every multi-queue pusher must use.
    #[allow(clippy::type_complexity)]
    fn plan_write(
        &self,
        kind_name: &'static str,
        ops: &[WriteOp],
        net: Option<&NetTraceCtx>,
    ) -> (Arc<ResponseState>, Vec<(bool, usize, Job)>) {
        assert!(
            u32::try_from(ops.len()).is_ok(),
            "request exceeds u32 op space"
        );
        let kind = RequestKind::Write { ops: ops.len() };
        let mut hash_parts: Vec<Vec<(u32, WriteOp)>> = vec![Vec::new(); self.sharded.shard_count()];
        for (i, op) in ops.iter().enumerate() {
            hash_parts[self.sharded.shard_of(op.key())].push((i as u32, *op));
        }
        let mut ordered_parts: Vec<Vec<(u32, WriteOp)>> = Vec::new();
        if let Some(ordered) = &self.ordered {
            ordered_parts = vec![Vec::new(); ordered.shard_count()];
            for (i, op) in ops.iter().enumerate() {
                ordered_parts[ordered.write_shard_of(op.key())].push((i as u32, *op));
            }
        }
        let live = hash_parts.iter().filter(|p| !p.is_empty()).count()
            + ordered_parts.iter().filter(|p| !p.is_empty()).count();
        let state = ResponseState::new(kind, live).with_stages(&self.stages);
        let state = Arc::new(match self.arm_trace(kind_name, net) {
            Some(trace) => state.with_trace(trace),
            None => state,
        });
        let mut jobs = Vec::with_capacity(live);
        for (shard, part) in hash_parts.into_iter().enumerate() {
            if !part.is_empty() {
                let job = Job::Write {
                    ops: part,
                    ack: true,
                    reply: Arc::clone(&state),
                };
                jobs.push((false, shard, job));
            }
        }
        for (shard, part) in ordered_parts.into_iter().enumerate() {
            if !part.is_empty() {
                let job = Job::Write {
                    ops: part,
                    ack: false,
                    reply: Arc::clone(&state),
                };
                jobs.push((true, shard, job));
            }
        }
        (state, jobs)
    }

    /// The real submission path: partitions `keys` by shard and
    /// enqueues every part while holding the stop gate's read guard, so
    /// acceptance is all-or-nothing with respect to `stop`.
    fn submit_keys(&self, kind: RequestKind, keys: &[u64]) -> Result<PendingResponse, SubmitError> {
        let stopped = self.stopped.read().expect("stop gate");
        if *stopped {
            return Err(SubmitError::Stopped);
        }
        let (state, parts) = self.plan_keys(kind, keys, None);
        for (shard, job) in parts {
            self.push_part(&self.queues[shard], job);
        }
        drop(stopped);
        Ok(PendingResponse { state })
    }

    /// Partitions `keys` by shard into ready-to-enqueue jobs (shard
    /// index ascending) plus the shared completion state sized to the
    /// number of live parts.
    fn plan_keys(
        &self,
        kind: RequestKind,
        keys: &[u64],
        net: Option<&NetTraceCtx>,
    ) -> (Arc<ResponseState>, Vec<(usize, Job)>) {
        assert!(
            u32::try_from(keys.len()).is_ok(),
            "request exceeds u32 row space"
        );
        let kind_name = match kind {
            RequestKind::Lookup { .. } => "lookup",
            RequestKind::MultiLookup => "multi_lookup",
            RequestKind::JoinProbe => "join_probe",
            RequestKind::RangeScan { .. } => "range_scan",
            RequestKind::Write { .. } => unreachable!("writes plan through plan_write"),
        };
        let attach = |state: ResponseState| match self.arm_trace(kind_name, net) {
            Some(trace) => state.with_trace(trace),
            None => state,
        };
        if let [key] = keys {
            // Fast path: a single-key request touches exactly one shard
            // — skip the per-shard partition scaffolding.
            let state = Arc::new(attach(
                ResponseState::new(kind, 1).with_stages(&self.stages),
            ));
            let job = Job::Probe {
                entries: vec![(0, *key)],
                reply: Arc::clone(&state),
            };
            return (state, vec![(self.sharded.shard_of(*key), job)]);
        }
        let shard_count = self.sharded.shard_count();
        let mut parts: Vec<Vec<(u32, u64)>> = vec![Vec::new(); shard_count];
        for (row, key) in keys.iter().enumerate() {
            parts[self.sharded.shard_of(*key)].push((row as u32, *key));
        }
        let live_parts = parts.iter().filter(|p| !p.is_empty()).count();
        let state = Arc::new(attach(
            ResponseState::new(kind, live_parts).with_stages(&self.stages),
        ));
        let jobs = parts
            .into_iter()
            .enumerate()
            .filter(|(_, entries)| !entries.is_empty())
            .map(|(shard, entries)| {
                let job = Job::Probe {
                    entries,
                    reply: Arc::clone(&state),
                };
                (shard, job)
            })
            .collect();
        (state, jobs)
    }

    /// The range-scan submission path: scatters the scan over every
    /// ordered shard its key interval overlaps (each part carrying the
    /// full interval and limit — shard trees only hold their own span,
    /// and the global `limit` is re-applied at gather time), under the
    /// same all-or-nothing stop gate as `submit_keys`.
    fn submit_scan(
        &self,
        lo: u64,
        hi: u64,
        limit: usize,
        desc: bool,
    ) -> Result<PendingResponse, SubmitError> {
        let stopped = self.stopped.read().expect("stop gate");
        if *stopped {
            return Err(SubmitError::Stopped);
        }
        let (state, parts) = self.plan_scan(lo, hi, limit, desc, false, None)?;
        for (shard, job) in parts {
            self.push_part(&self.range_queues[shard], job);
        }
        drop(stopped);
        Ok(PendingResponse { state })
    }

    /// Scatters a scan into per-shard jobs (shard index ascending) plus
    /// the shared completion state; degenerate scans yield zero parts
    /// and a state that is born complete. Scatter *ranks* are assigned
    /// in output order — shard order ascending, or descending for a
    /// `desc` scan — so the gather side (buffered bucket concatenation
    /// and the streaming seam alike) never needs to know the direction:
    /// rank order *is* reply order.
    #[allow(clippy::type_complexity)]
    fn plan_scan(
        &self,
        lo: u64,
        hi: u64,
        limit: usize,
        desc: bool,
        streaming: bool,
        net: Option<&NetTraceCtx>,
    ) -> Result<(Arc<ResponseState>, Vec<(usize, Job)>), SubmitError> {
        let Some(ordered) = &self.ordered else {
            return Err(SubmitError::NoOrderedIndex);
        };
        let kind = RequestKind::RangeScan { limit };
        let kind_name = if streaming {
            "range_stream"
        } else {
            "range_scan"
        };
        let state_for = |parts: usize| {
            let state = if streaming {
                ResponseState::new_stream(kind, parts, limit)
            } else {
                ResponseState::new(kind, parts)
            };
            let state = state.with_stages(&self.stages);
            match self.arm_trace(kind_name, net) {
                Some(trace) => state.with_trace(trace),
                None => state,
            }
        };
        if lo > hi || limit == 0 {
            // Degenerate scans complete immediately: zero parts.
            return Ok((Arc::new(state_for(0)), Vec::new()));
        }
        let (first, last) = ordered.shard_span(lo, hi);
        let parts = last - first + 1;
        let state = Arc::new(state_for(parts));
        let jobs = (first..=last)
            .enumerate()
            .map(|(i, shard)| {
                let rank = if desc { parts - 1 - i } else { i } as u32;
                let job = Job::Scan {
                    scans: vec![(
                        rank,
                        ScanRange {
                            lo,
                            hi,
                            limit,
                            desc,
                        },
                    )],
                    reply: Arc::clone(&state),
                };
                (shard, job)
            })
            .collect();
        Ok((state, jobs))
    }

    /// Submits a chunk-streaming range scan, blocking only under queue
    /// backpressure: the returned [`PendingStream`] yields merged
    /// key-ordered chunks *while shards are still scanning*, instead of
    /// buffering the whole reply like [`range_scan`](Self::range_scan).
    /// The scatter, batching, walkers, and the limit-at-the-seam
    /// contract are identical to the buffered path — concatenating the
    /// chunks reproduces its reply exactly.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun, or
    /// [`SubmitError::NoOrderedIndex`] without a range tier.
    pub fn range_stream(
        &self,
        lo: u64,
        hi: u64,
        limit: usize,
        desc: bool,
    ) -> Result<PendingStream, SubmitError> {
        let stopped = self.stopped.read().expect("stop gate");
        if *stopped {
            return Err(SubmitError::Stopped);
        }
        let (state, parts) = self.plan_scan(lo, hi, limit, desc, true, None)?;
        for (shard, job) in parts {
            self.push_part(&self.range_queues[shard], job);
        }
        drop(stopped);
        Ok(PendingStream { state })
    }

    /// Non-blocking [`range_stream`](Self::range_stream): refuses with
    /// [`SubmitError::Busy`] instead of waiting out backpressure
    /// (all-or-nothing across shards) — the submission surface the
    /// `widx-net` event loop uses for the chunked reply opcodes.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] under backpressure, [`SubmitError::Stopped`]
    /// once shutdown has begun, or [`SubmitError::NoOrderedIndex`]
    /// without a range tier.
    pub fn try_range_stream(
        &self,
        lo: u64,
        hi: u64,
        limit: usize,
        desc: bool,
    ) -> Result<PendingStream, SubmitError> {
        self.try_range_stream_traced(lo, hi, limit, desc, None)
    }

    /// [`try_range_stream`](Self::try_range_stream) with an optional
    /// network trace context: when the front-end carries a sampled (or
    /// potentially slow) request, `net` anchors the trace at
    /// frame-decode time and tags it with the reactor that owns the
    /// connection. Pass `None` for in-process callers.
    ///
    /// # Errors
    ///
    /// Same contract as [`try_range_stream`](Self::try_range_stream).
    pub fn try_range_stream_traced(
        &self,
        lo: u64,
        hi: u64,
        limit: usize,
        desc: bool,
        net: Option<NetTraceCtx>,
    ) -> Result<PendingStream, SubmitError> {
        let stopped = self.stopped.read().expect("stop gate");
        if *stopped {
            return Err(SubmitError::Stopped);
        }
        let (state, parts) = self.plan_scan(lo, hi, limit, desc, true, net.as_ref())?;
        let targeted = parts
            .into_iter()
            .map(|(shard, job)| (&*self.range_queues[shard], job))
            .collect();
        crate::queue::try_push_all(targeted).map_err(|_| SubmitError::Busy)?;
        drop(stopped);
        Ok(PendingStream { state })
    }

    /// Non-blocking [`submit`](ProbeService::submit): never waits out
    /// backpressure. When any target shard queue is at capacity the
    /// request is refused with [`SubmitError::Busy`] and *nothing* is
    /// enqueued (all-or-nothing across shards), so a caller that cannot
    /// block — the `widx-net` event loop — can turn backpressure into a
    /// typed error reply instead of stalling every other connection.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] under backpressure, [`SubmitError::Stopped`]
    /// once shutdown has begun, or [`SubmitError::NoOrderedIndex`] for a
    /// [`Request::RangeScan`] without a range tier.
    pub fn try_submit(&self, request: Request) -> Result<PendingResponse, SubmitError> {
        self.try_submit_traced(request, None)
    }

    /// [`try_submit`](Self::try_submit) with an optional network trace
    /// context: when the front-end carries a sampled (or potentially
    /// slow) request, `net` anchors the trace at frame-decode time and
    /// tags it with the reactor that owns the connection. Pass `None`
    /// for in-process callers.
    ///
    /// # Errors
    ///
    /// Same contract as [`try_submit`](Self::try_submit).
    pub fn try_submit_traced(
        &self,
        request: Request,
        net: Option<NetTraceCtx>,
    ) -> Result<PendingResponse, SubmitError> {
        let stopped = self.stopped.read().expect("stop gate");
        if *stopped {
            return Err(SubmitError::Stopped);
        }
        let net = net.as_ref();
        if matches!(
            &request,
            Request::Insert { .. } | Request::Delete { .. } | Request::Update { .. }
        ) {
            let ops = request.write_ops().expect("write request variant");
            let (state, parts) = self.plan_write(Self::write_kind_name(&request), &ops, net);
            let targeted = parts
                .into_iter()
                .map(|(range_tier, shard, job)| {
                    let queue = if range_tier {
                        &*self.range_queues[shard]
                    } else {
                        &*self.queues[shard]
                    };
                    (queue, job)
                })
                .collect();
            crate::queue::try_push_all(targeted).map_err(|_| SubmitError::Busy)?;
            drop(stopped);
            return Ok(PendingResponse { state });
        }
        let (queues, (state, parts)) = match &request {
            Request::Lookup { key } => (
                &self.queues,
                self.plan_keys(RequestKind::Lookup { key: *key }, request.keys(), net),
            ),
            Request::MultiLookup { .. } => (
                &self.queues,
                self.plan_keys(RequestKind::MultiLookup, request.keys(), net),
            ),
            Request::JoinProbe { .. } => (
                &self.queues,
                self.plan_keys(RequestKind::JoinProbe, request.keys(), net),
            ),
            Request::RangeScan {
                lo,
                hi,
                limit,
                desc,
            } => (
                &self.range_queues,
                self.plan_scan(*lo, *hi, *limit, *desc, false, net)?,
            ),
            Request::Insert { .. } | Request::Delete { .. } | Request::Update { .. } => {
                unreachable!("write requests early-return above")
            }
        };
        let targeted = parts
            .into_iter()
            .map(|(shard, job)| (&*queues[shard], job))
            .collect();
        crate::queue::try_push_all(targeted).map_err(|_| SubmitError::Busy)?;
        drop(stopped);
        Ok(PendingResponse { state })
    }

    fn push_part(&self, queue: &ShardQueue, job: Job) {
        match queue.push(job) {
            Ok(()) => {}
            // Queues are poisoned only under the stop gate's write
            // guard, which cannot be held while we hold the read guard.
            Err(PushError::Stopped) => unreachable!("queue poisoned while stop gate held open"),
        }
    }

    /// Blocking convenience: all payloads under `key`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn lookup(&self, key: u64) -> Result<Vec<u64>, SubmitError> {
        match self
            .submit_keys(RequestKind::Lookup { key }, &[key])?
            .wait()
        {
            Response::Lookup { payloads, .. } => Ok(payloads),
            _ => unreachable!("lookup requests assemble lookup responses"),
        }
    }

    /// Blocking convenience: `(key, payload)` matches for `keys`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn multi_lookup(&self, keys: &[u64]) -> Result<Vec<(u64, u64)>, SubmitError> {
        match self.submit_keys(RequestKind::MultiLookup, keys)?.wait() {
            Response::MultiLookup { matches } => Ok(matches),
            _ => unreachable!("multi-lookup requests assemble multi-lookup responses"),
        }
    }

    /// Blocking convenience: `(probe row, payload)` join pairs for the
    /// outer column `keys`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn join_probe(&self, keys: &[u64]) -> Result<Vec<(u64, u64)>, SubmitError> {
        match self.submit_keys(RequestKind::JoinProbe, keys)?.wait() {
            Response::JoinProbe { pairs } => Ok(pairs),
            _ => unreachable!("join-probe requests assemble join-probe responses"),
        }
    }

    /// Blocking convenience: insert `payload` under `key` through the
    /// owning shard worker(s). Returns once the write has been applied
    /// to every tier (always `true` — inserts cannot miss).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn insert(&self, key: u64, payload: u64) -> Result<bool, SubmitError> {
        self.write_one(WriteOp::Insert { key, payload }, "insert")
    }

    /// Blocking convenience: delete every payload under `key`. `Ok(true)`
    /// when at least one entry existed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn delete(&self, key: u64) -> Result<bool, SubmitError> {
        self.write_one(WriteOp::Delete { key }, "delete")
    }

    /// Blocking convenience: replace every payload under `key` with
    /// `payload`. `Ok(true)` when the key existed; a miss changes
    /// nothing and returns `Ok(false)`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun.
    pub fn update(&self, key: u64, payload: u64) -> Result<bool, SubmitError> {
        self.write_one(WriteOp::Update { key, payload }, "update")
    }

    fn write_one(&self, op: WriteOp, kind_name: &'static str) -> Result<bool, SubmitError> {
        match self.submit_write(kind_name, vec![op])?.wait() {
            Response::Write { acks } => Ok(acks[0]),
            _ => unreachable!("write requests assemble write responses"),
        }
    }

    /// Blocking convenience: every `(key, payload)` with `lo <= key <=
    /// hi` in ascending key order, truncated to the first `limit`
    /// (`usize::MAX` for unbounded).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once shutdown has begun, or
    /// [`SubmitError::NoOrderedIndex`] when the service was built
    /// without a range tier.
    pub fn range_scan(
        &self,
        lo: u64,
        hi: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>, SubmitError> {
        match self.submit_scan(lo, hi, limit, false)?.wait() {
            Response::RangeScan { entries } => Ok(entries),
            _ => unreachable!("range-scan requests assemble range-scan responses"),
        }
    }

    /// Blocking convenience: [`range_scan`](Self::range_scan) in
    /// descending key order — the `ORDER BY key DESC` shape, with the
    /// *largest* keys surviving `limit` and duplicates in reverse build
    /// order.
    ///
    /// # Errors
    ///
    /// As [`range_scan`](Self::range_scan).
    pub fn range_scan_desc(
        &self,
        lo: u64,
        hi: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>, SubmitError> {
        match self.submit_scan(lo, hi, limit, true)?.wait() {
            Response::RangeScan { entries } => Ok(entries),
            _ => unreachable!("range-scan requests assemble range-scan responses"),
        }
    }

    /// A coherent [`ServiceStats`] snapshot of the *running* service —
    /// no shutdown, no join, no pause. Workers keep publishing into
    /// their lock-free registry cells while this reads them, so the
    /// numbers are at most one batch stale per worker; counts are
    /// internally consistent (every latency count is derived from the
    /// same histogram buckets the percentiles are).
    ///
    /// At quiescence (all submitted requests completed) this equals the
    /// final [`shutdown`](Self::shutdown) snapshot, field for field,
    /// except `wall` (which keeps advancing), each worker's `idle`
    /// (which accumulates while the worker blocks on an empty queue),
    /// and `net` (attached by the network tier, if any).
    #[must_use]
    pub fn live_stats(&self) -> ServiceStats {
        self.snapshot_stats()
    }

    /// The service's stage-timing seam, shared with whatever front-end
    /// wants to record phases the service itself cannot see (the
    /// `widx-net` server records [`reply-write`](widx_obs::Stage) here).
    #[must_use]
    pub fn stage_times(&self) -> Arc<StageTimes> {
        Arc::clone(&self.stages)
    }

    /// The one materialization path: both `live_stats` and the shutdown
    /// join read the same registry, so "final stats" is literally the
    /// last live scrape.
    fn snapshot_stats(&self) -> ServiceStats {
        let mut latency = HistogramSnapshot::default();
        let mut tier = |cells: &[Arc<WorkerCell>]| -> Vec<WorkerStats> {
            cells
                .iter()
                .enumerate()
                .map(|(shard, cell)| {
                    let snap = cell.snapshot();
                    latency.merge_from(&snap.latency);
                    WorkerStats::from_cell(shard, &snap)
                })
                .collect()
        };
        let workers = tier(&self.cells);
        let range_workers = tier(&self.range_cells);
        ServiceStats {
            workers,
            range_workers,
            latency: LatencySummary::from_histogram(&latency),
            stages: StageStats::from_snapshot(&self.stages.snapshot()),
            net: crate::stats::NetStats::default(),
            trace: self.recorder.stats(),
            prof: self.prof_snapshot(),
            epoch_retired: self.domain.retired(),
            epoch_reclaimed: self.domain.reclaimed(),
            wall: self.started.elapsed(),
        }
    }

    /// Begins shutdown without consuming the service: marks the service
    /// stopped (subsequent [`submit`](ProbeService::submit)s fail with
    /// [`SubmitError::Stopped`]) and enqueues one poison pill per shard
    /// behind all accepted work. Workers drain, then halt; call
    /// [`shutdown`](ProbeService::shutdown) to join them and collect
    /// statistics. Idempotent.
    pub fn stop(&self) {
        let mut stopped = self.stopped.write().expect("stop gate");
        if !*stopped {
            *stopped = true;
            for queue in self.queues.iter().chain(&self.range_queues) {
                queue.push_poison();
            }
        }
    }

    /// Drains all accepted work, halts every worker (poison pill per
    /// shard), and returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked (after joining the rest).
    /// [`Drop`] performs the same join but swallows worker panics, so a
    /// service dropped during unwinding never aborts the process.
    #[must_use]
    pub fn shutdown(mut self) -> ServiceStats {
        let (stats, panicked) = self.shutdown_inner();
        assert!(panicked == 0, "{panicked} shard worker(s) panicked");
        stats
    }

    fn shutdown_inner(&mut self) -> (ServiceStats, usize) {
        self.stop();
        if self.workers.is_empty() && self.range_workers.is_empty() {
            // Already joined by a prior pass (an explicit shutdown
            // followed by `Drop`, or concurrent shutdown paths racing a
            // `stop`): hand back the stats that pass produced instead
            // of re-snapshotting with a later wall clock.
            if let Some(prior) = self.joined.clone() {
                return prior;
            }
            return (self.snapshot_stats(), 0);
        }
        // Workers publish into the registry as they run, so the join is
        // purely a drain barrier: once every worker has halted, the
        // registry holds its final values and one more live snapshot
        // *is* the post-mortem report.
        let mut panicked = 0usize;
        for handle in self.workers.drain(..).chain(self.range_workers.drain(..)) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        // Every worker has halted, so no epoch pins remain: one final
        // advance makes every outstanding retirement safe, and a sweep
        // over both tiers drains the retire lists — the final snapshot
        // reports `epoch_retired == 0` whenever writes ever happened.
        self.domain.advance();
        for shard in 0..self.sharded.shard_count() {
            let _ = self.sharded.write(shard).reclaim();
        }
        if let Some(ordered) = &self.ordered {
            for shard in 0..ordered.shard_count() {
                let _ = ordered.write(shard).reclaim();
            }
        }
        let result = (self.snapshot_stats(), panicked);
        self.joined = Some(result.clone());
        result
    }
}

impl Drop for ProbeService {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(entries: u64, config: &ServeConfig) -> ProbeService {
        ProbeService::build(
            HashRecipe::robust64(),
            (0..entries).map(|k| (k, k * 2)),
            config,
        )
    }

    #[test]
    fn lookup_hits_and_misses() {
        let s = service(1000, &ServeConfig::default());
        assert_eq!(s.lookup(7).unwrap(), vec![14]);
        assert_eq!(s.lookup(5000).unwrap(), Vec::<u64>::new());
        let stats = s.shutdown();
        assert_eq!(stats.total_keys(), 2);
        assert_eq!(stats.total_matches(), 1);
        assert_eq!(stats.latency.count, 2);
    }

    #[test]
    fn multi_lookup_spans_shards() {
        let s = service(1000, &ServeConfig::default().with_batch_size(8));
        let keys: Vec<u64> = (0..500).collect();
        let mut got = s.multi_lookup(&keys).unwrap();
        got.sort_unstable();
        let want: Vec<(u64, u64)> = (0..500).map(|k| (k, k * 2)).collect();
        assert_eq!(got, want);
        let stats = s.shutdown();
        assert_eq!(stats.total_keys(), 501 - 1);
        assert!(stats.workers.len() == 4);
        assert!(
            stats.workers.iter().all(|w| w.keys > 0),
            "all shards probed"
        );
    }

    #[test]
    fn join_probe_reports_rows() {
        let s = service(100, &ServeConfig::default());
        // Rows 0 and 2 hit the same key; row 1 misses.
        let mut got = s.join_probe(&[4, 7777, 4]).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 8), (2, 8)]);
    }

    #[test]
    fn duplicate_keys_in_one_request_all_answered() {
        let s = service(50, &ServeConfig::default());
        let mut got = s.multi_lookup(&[3, 3, 3]).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![(3, 6), (3, 6), (3, 6)]);
    }

    #[test]
    fn empty_request_completes_instantly() {
        let s = service(10, &ServeConfig::default());
        assert_eq!(s.multi_lookup(&[]).unwrap(), vec![]);
    }

    #[test]
    fn submit_after_stop_fails_but_accepted_work_completes() {
        let s = service(10, &ServeConfig::default());
        let pending = s.submit(Request::Lookup { key: 1 }).unwrap();
        s.stop();
        assert_eq!(
            s.submit(Request::Lookup { key: 2 }).err(),
            Some(SubmitError::Stopped),
            "post-stop submissions are refused"
        );
        assert_eq!(s.lookup(3), Err(SubmitError::Stopped));
        let stats = s.shutdown();
        assert_eq!(
            pending.wait(),
            Response::Lookup {
                key: 1,
                payloads: vec![2]
            }
        );
        assert!(stats.wall > Duration::ZERO);
        assert_eq!(stats.latency.count, 1, "only the accepted request ran");
    }

    #[test]
    fn stop_is_idempotent() {
        let s = service(10, &ServeConfig::default());
        s.stop();
        s.stop();
        let stats = s.shutdown();
        assert_eq!(stats.total_keys(), 0);
    }

    #[test]
    fn pipelined_submissions_all_resolve() {
        let s = service(2000, &ServeConfig::default().with_batch_size(32));
        let pendings: Vec<PendingResponse> = (0..200)
            .map(|i| s.submit(Request::Lookup { key: i }).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            match p.wait() {
                Response::Lookup { key, payloads } => {
                    assert_eq!(key, i as u64);
                    assert_eq!(payloads, vec![i as u64 * 2]);
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
        let stats = s.shutdown();
        assert_eq!(stats.latency.count, 200);
        // Batching must have occurred: fewer batches than requests.
        let batches: u64 = stats.workers.iter().map(|w| w.batches).sum();
        assert!(batches < 200, "batches {batches}");
    }

    #[test]
    fn try_submit_serves_and_respects_stop() {
        let s = range_service(500, &ServeConfig::default());
        match s.try_submit(Request::Lookup { key: 20 }).unwrap().wait() {
            Response::Lookup { payloads, .. } => assert_eq!(payloads, vec![10]),
            other => panic!("wrong variant: {other:?}"),
        }
        match s
            .try_submit(Request::RangeScan {
                lo: 10,
                hi: 20,
                limit: usize::MAX,
                desc: false,
            })
            .unwrap()
            .wait()
        {
            Response::RangeScan { entries } => {
                assert_eq!(entries, (5..=10u64).map(|k| (k * 2, k)).collect::<Vec<_>>());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // Multi-shard fan-out through the non-blocking path.
        let keys: Vec<u64> = (0..200).collect();
        let mut got = match s.try_submit(Request::MultiLookup { keys }).unwrap().wait() {
            Response::MultiLookup { matches } => matches,
            other => panic!("wrong variant: {other:?}"),
        };
        got.sort_unstable();
        let want: Vec<(u64, u64)> = (0..100u64).map(|k| (k * 2, k)).collect();
        assert_eq!(got, want);
        s.stop();
        assert_eq!(
            s.try_submit(Request::Lookup { key: 1 }).err(),
            Some(SubmitError::Stopped)
        );
    }

    #[test]
    fn try_submit_without_ordered_tier_is_refused() {
        let s = service(50, &ServeConfig::default());
        assert_eq!(
            s.try_submit(Request::RangeScan {
                lo: 0,
                hi: 9,
                limit: 1,
                desc: false,
            })
            .err(),
            Some(SubmitError::NoOrderedIndex)
        );
    }

    #[test]
    fn second_shutdown_pass_returns_the_already_joined_stats() {
        // Regression: a shutdown pass entered after the workers were
        // already joined (Drop after an explicit shutdown, or a `stop`
        // racing concurrent shutdown paths) used to find nothing to
        // join and panic the consuming `shutdown()`; it must return the
        // first join's stats instead.
        let mut s = service(10, &ServeConfig::default());
        let _ = s.lookup(1);
        let (first, panicked) = s.shutdown_inner();
        assert_eq!(panicked, 0);
        assert_eq!(first.latency.count, 1);
        let (second, panicked) = s.shutdown_inner();
        assert_eq!(panicked, 0);
        assert_eq!(second.latency.count, first.latency.count);
        assert_eq!(second.workers.len(), first.workers.len());
        assert_eq!(second.total_keys(), first.total_keys());
    }

    #[test]
    fn drop_without_shutdown_halts_workers() {
        let s = service(10, &ServeConfig::default());
        let _ = s.lookup(1);
        drop(s); // must not hang
    }

    fn range_service(entries: u64, config: &ServeConfig) -> ProbeService {
        ProbeService::build_with_range(
            HashRecipe::robust64(),
            (0..entries).map(|k| (k * 2, k)),
            config,
        )
    }

    #[test]
    fn range_scan_spans_shards_in_key_order() {
        let s = range_service(2000, &ServeConfig::default());
        let got = s.range_scan(0, u64::MAX, usize::MAX).unwrap();
        assert_eq!(got, (0..2000u64).map(|k| (k * 2, k)).collect::<Vec<_>>());
        // Bounded scan with a limit cutting across a shard seam.
        let oracle = s.ordered().unwrap().scan(500, 3000, 700);
        assert_eq!(s.range_scan(500, 3000, 700).unwrap(), oracle);
        let stats = s.shutdown();
        assert!(
            stats.range_workers.iter().all(|w| w.keys > 0),
            "full-range scan drove every ordered shard"
        );
        assert!(stats.total_scan_entries() >= 2000);
    }

    #[test]
    fn range_scan_degenerate_and_miss_cases() {
        let s = range_service(100, &ServeConfig::default());
        assert_eq!(s.range_scan(50, 10, usize::MAX).unwrap(), vec![]);
        assert_eq!(s.range_scan(0, 100, 0).unwrap(), vec![]);
        assert_eq!(s.range_scan(1, 1, usize::MAX).unwrap(), vec![]); // odd keys miss
        assert_eq!(s.range_scan(100_000, 200_000, 5).unwrap(), vec![]);
        let stats = s.shutdown();
        // Degenerate scans complete client-side (zero parts) and never
        // reach a worker; only the two real scans record latencies.
        assert_eq!(stats.latency.count, 2);
    }

    #[test]
    fn range_and_point_traffic_interleave() {
        let s = range_service(500, &ServeConfig::default().with_batch_size(8));
        let scan = s
            .submit(Request::RangeScan {
                lo: 10,
                hi: 40,
                limit: usize::MAX,
                desc: false,
            })
            .unwrap();
        let point = s.submit(Request::Lookup { key: 20 }).unwrap();
        assert_eq!(
            scan.wait(),
            Response::RangeScan {
                entries: (5..=20u64).map(|k| (k * 2, k)).collect()
            }
        );
        assert_eq!(
            point.wait(),
            Response::Lookup {
                key: 20,
                payloads: vec![10]
            }
        );
    }

    #[test]
    fn range_scan_desc_matches_the_reverse_oracle_across_shards() {
        let s = range_service(2000, &ServeConfig::default());
        let got = s.range_scan_desc(0, u64::MAX, usize::MAX).unwrap();
        assert_eq!(
            got,
            (0..2000u64).rev().map(|k| (k * 2, k)).collect::<Vec<_>>()
        );
        // Bounded desc scan with a limit cutting across a shard seam:
        // the *largest* keys survive.
        let oracle = s.ordered().unwrap().scan_desc(500, 3000, 700);
        assert_eq!(oracle.len(), 700);
        assert_eq!(s.range_scan_desc(500, 3000, 700).unwrap(), oracle);
        assert_eq!(s.range_scan_desc(50, 10, usize::MAX).unwrap(), vec![]);
        assert_eq!(s.range_scan_desc(0, 100, 0).unwrap(), vec![]);
    }

    #[test]
    fn range_stream_concatenates_to_the_buffered_reply() {
        let s = range_service(3000, &ServeConfig::default().with_stream_chunk(64));
        for desc in [false, true] {
            let want = if desc {
                s.range_scan_desc(100, 4000, usize::MAX).unwrap()
            } else {
                s.range_scan(100, 4000, usize::MAX).unwrap()
            };
            let mut stream = s.range_stream(100, 4000, usize::MAX, desc).unwrap();
            let mut got = Vec::new();
            let mut chunks = 0usize;
            while let Some(chunk) = stream.next_chunk() {
                assert!(!chunk.is_empty(), "no empty chunks");
                assert!(chunk.len() <= 64, "chunk respects stream_chunk");
                got.extend(chunk);
                chunks += 1;
            }
            assert_eq!(got, want, "desc={desc}");
            assert!(chunks > 1, "a long scan streams in several chunks");
        }
        let _ = s.shutdown();
    }

    #[test]
    fn range_stream_limit_cuts_at_the_seam() {
        let s = range_service(1000, &ServeConfig::default().with_stream_chunk(16));
        let want = s.range_scan(0, u64::MAX, 333).unwrap();
        let mut stream = s.range_stream(0, u64::MAX, 333, false).unwrap();
        assert_eq!(stream.collect_remaining(), want);
        // Degenerate streams are born ended.
        let mut empty = s.range_stream(10, 3, usize::MAX, false).unwrap();
        assert_eq!(empty.next(), None);
        let mut zero = s.range_stream(0, 10, 0, true).unwrap();
        assert_eq!(zero.try_next(), crate::request::StreamPoll::End);
    }

    #[test]
    fn range_stream_respects_stop_and_missing_tier() {
        let s = service(100, &ServeConfig::default());
        assert_eq!(
            s.range_stream(0, 10, usize::MAX, false).err(),
            Some(SubmitError::NoOrderedIndex)
        );
        let s = range_service(100, &ServeConfig::default());
        let mut accepted = s.range_stream(0, u64::MAX, usize::MAX, false).unwrap();
        s.stop();
        assert_eq!(
            s.range_stream(0, 10, usize::MAX, false).err(),
            Some(SubmitError::Stopped)
        );
        assert_eq!(
            s.try_range_stream(0, 10, usize::MAX, false).err(),
            Some(SubmitError::Stopped)
        );
        let _ = s.shutdown();
        // Accepted streams drain fully through shutdown.
        assert_eq!(
            accepted.collect_remaining(),
            (0..100u64).map(|k| (k * 2, k)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn try_range_stream_serves_chunks() {
        let s = range_service(500, &ServeConfig::default().with_stream_chunk(32));
        let mut stream = s.try_range_stream(10, 600, usize::MAX, true).unwrap();
        assert_eq!(
            stream.collect_remaining(),
            s.ordered().unwrap().scan_desc(10, 600, usize::MAX)
        );
    }

    #[test]
    fn range_scan_without_ordered_tier_is_refused() {
        let s = service(100, &ServeConfig::default());
        assert_eq!(
            s.range_scan(0, 10, usize::MAX),
            Err(SubmitError::NoOrderedIndex)
        );
        assert_eq!(s.lookup(1).unwrap(), vec![2], "point path unaffected");
    }

    #[test]
    fn range_scan_after_stop_is_refused_but_accepted_scans_drain() {
        let s = range_service(1000, &ServeConfig::default());
        let pending = s
            .submit(Request::RangeScan {
                lo: 0,
                hi: 99,
                limit: usize::MAX,
                desc: false,
            })
            .unwrap();
        s.stop();
        assert_eq!(s.range_scan(0, 9, 1), Err(SubmitError::Stopped));
        let _stats = s.shutdown();
        assert_eq!(
            pending.wait(),
            Response::RangeScan {
                entries: (0..50u64).map(|k| (k * 2, k)).collect()
            }
        );
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let s = service(100, &ServeConfig::default());
        // Fresh key: miss, insert, hit, update, delete, miss again.
        assert_eq!(s.lookup(5000).unwrap(), Vec::<u64>::new());
        assert!(s.insert(5000, 42).unwrap());
        assert_eq!(s.lookup(5000).unwrap(), vec![42]);
        assert!(s.update(5000, 43).unwrap());
        assert_eq!(s.lookup(5000).unwrap(), vec![43]);
        assert!(s.delete(5000).unwrap());
        assert_eq!(s.lookup(5000).unwrap(), Vec::<u64>::new());
        assert!(!s.delete(5000).unwrap(), "second delete misses");
        // Update never inserts on miss.
        assert!(!s.update(6000, 1).unwrap());
        assert_eq!(s.lookup(6000).unwrap(), Vec::<u64>::new());
        // Duplicate inserts stack payloads; one delete clears them all.
        assert!(s.insert(7000, 1).unwrap());
        assert!(s.insert(7000, 2).unwrap());
        let mut got = s.lookup(7000).unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(s.delete(7000).unwrap());
        assert_eq!(s.lookup(7000).unwrap(), Vec::<u64>::new());
        let stats = s.shutdown();
        assert_eq!(stats.total_write_ops(), 8);
        assert_eq!(stats.total_write_applied(), 6, "two misses unacked");
        assert_eq!(stats.epoch_retired, 0, "final sweep drained retirements");
    }

    #[test]
    fn writes_propagate_to_both_tiers() {
        // range_service stores (k*2, k): odd keys are absent, so 2001
        // is a fresh key visible to both point probes and range scans.
        let s = range_service(1000, &ServeConfig::default());
        assert!(s.insert(2001, 555).unwrap());
        assert_eq!(s.lookup(2001).unwrap(), vec![555]);
        assert_eq!(
            s.range_scan(1996, 2002, usize::MAX).unwrap(),
            vec![(1996, 998), (1998, 999), (2001, 555)],
            "the ordered tier sees the insert, in key order"
        );
        assert!(s.update(2001, 556).unwrap());
        assert_eq!(
            s.range_scan_desc(2001, 2001, usize::MAX).unwrap(),
            vec![(2001, 556)]
        );
        assert!(s.delete(2001).unwrap());
        assert_eq!(s.lookup(2001).unwrap(), Vec::<u64>::new());
        assert_eq!(s.range_scan(2001, 2001, usize::MAX).unwrap(), vec![]);
        let stats = s.shutdown();
        assert!(
            stats.range_workers.iter().map(|w| w.write_ops).sum::<u64>() > 0,
            "ordered-tier workers applied writes"
        );
        assert_eq!(stats.epoch_retired, 0);
    }

    #[test]
    fn batched_writes_ack_positionally() {
        let s = service(100, &ServeConfig::default());
        // A batch spanning shards: acks come back in request order.
        let pairs: Vec<(u64, u64)> = (200..232).map(|k| (k, k + 1)).collect();
        let pending = s
            .submit(Request::Insert {
                pairs: pairs.clone(),
            })
            .unwrap();
        assert_eq!(
            pending.wait(),
            Response::Write {
                acks: vec![true; 32]
            }
        );
        // Delete interleaving hits (even positions) and misses.
        let keys: Vec<u64> = (0..32u64)
            .map(|i| if i % 2 == 0 { 200 + i } else { 900 + i })
            .collect();
        match s.submit(Request::Delete { keys }).unwrap().wait() {
            Response::Write { acks } => {
                assert_eq!(acks.len(), 32);
                for (i, ack) in acks.iter().enumerate() {
                    assert_eq!(*ack, i % 2 == 0, "ack {i} positional");
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
        // An empty batch completes instantly with no acks.
        assert_eq!(
            s.submit(Request::Update { pairs: vec![] }).unwrap().wait(),
            Response::Write { acks: vec![] }
        );
    }

    #[test]
    fn writes_after_stop_are_refused_but_accepted_writes_drain() {
        let s = service(100, &ServeConfig::default());
        let pending = s
            .submit(Request::Insert {
                pairs: vec![(300, 1), (301, 2)],
            })
            .unwrap();
        s.stop();
        assert_eq!(s.insert(302, 3), Err(SubmitError::Stopped));
        assert_eq!(s.delete(300), Err(SubmitError::Stopped));
        assert_eq!(
            pending.wait(),
            Response::Write {
                acks: vec![true, true]
            },
            "accepted writes drain before the halt"
        );
        let stats = s.shutdown();
        assert_eq!(stats.total_write_applied(), 2);
    }

    #[test]
    fn quiescent_live_stats_match_the_final_snapshot_for_writes() {
        // The drain-before-snapshot contract: once every submitted
        // response has resolved, the live write counters already equal
        // what shutdown will report — workers publish a write batch
        // into the registry *before* completing its reply.
        let s = range_service(500, &ServeConfig::default().with_batch_size(8));
        let mut pendings = Vec::new();
        for k in 0..200u64 {
            pendings.push(
                s.submit(Request::Insert {
                    pairs: vec![(3000 + k, k)],
                })
                .unwrap(),
            );
            pendings.push(s.submit(Request::Lookup { key: k * 2 }).unwrap());
            if k % 3 == 0 {
                pendings.push(
                    s.submit(Request::Delete {
                        keys: vec![3000 + k, 7],
                    })
                    .unwrap(),
                );
            }
        }
        for p in pendings {
            let _ = p.wait();
        }
        let live = s.live_stats();
        let total_ops = live.total_write_ops();
        let total_applied = live.total_write_applied();
        let total_batches = live.total_write_batches();
        // Each op lands in both tiers (one hash shard, one ordered
        // shard), so the cross-tier sum counts every op twice.
        assert_eq!(total_ops, (200 + 67 * 2) * 2, "every accepted op published");
        let stats = s.shutdown();
        assert_eq!(stats.total_write_ops(), total_ops);
        assert_eq!(stats.total_write_applied(), total_applied);
        assert_eq!(stats.total_write_batches(), total_batches);
        for (live_w, final_w) in live
            .workers
            .iter()
            .chain(live.range_workers.iter())
            .zip(stats.workers.iter().chain(stats.range_workers.iter()))
        {
            assert_eq!(live_w.write_ops, final_w.write_ops);
            assert_eq!(live_w.write_applied, final_w.write_applied);
            assert_eq!(live_w.write_batches, final_w.write_batches);
        }
        // Churn retired nodes; the final sweep reclaimed every one.
        assert!(stats.epoch_reclaimed > 0, "churn retired index nodes");
        assert_eq!(stats.epoch_retired, 0, "quiescence drains the lists");
        assert!(stats.epoch_reclaimed >= live.epoch_reclaimed);
    }
}
