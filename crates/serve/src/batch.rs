//! Batch-closure policy: a worker flushes its open batch when enough
//! keys have accumulated (*size flush*) or when the oldest queued
//! request has waited long enough (*deadline flush*).
//!
//! This is the classic throughput/latency dial of batched serving
//! systems: larger batches keep more independent probes in flight per
//! walker pass (more memory-level parallelism, the paper's whole
//! thesis), while the deadline bounds how long a lone request can be
//! held hostage waiting for company.

use std::time::{Duration, Instant};

/// Why a batch was closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached its size target.
    Size,
    /// The deadline expired first.
    Deadline,
    /// The service is shutting down; the final partial batch flushed.
    Shutdown,
}

/// The flush policy for one worker.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Flush once this many keys are batched.
    pub batch_size: usize,
    /// Flush this long after the batch's first key arrived.
    pub deadline: Duration,
}

impl BatchPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn new(batch_size: usize, deadline: Duration) -> BatchPolicy {
        assert!(batch_size > 0, "batch size must be positive");
        BatchPolicy {
            batch_size,
            deadline,
        }
    }

    /// Whether a batch holding `keys` keys, opened at `opened`, must
    /// flush now — and why.
    #[must_use]
    pub fn flush_due(&self, keys: usize, opened: Instant) -> Option<FlushReason> {
        if keys >= self.batch_size {
            Some(FlushReason::Size)
        } else if keys > 0 && opened.elapsed() >= self.deadline {
            Some(FlushReason::Deadline)
        } else {
            None
        }
    }

    /// The latest instant a batch opened at `opened` may keep waiting.
    #[must_use]
    pub fn flush_deadline(&self, opened: Instant) -> Instant {
        opened + self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_flush_fires_at_target() {
        let p = BatchPolicy::new(8, Duration::from_secs(3600));
        let opened = Instant::now();
        assert_eq!(p.flush_due(7, opened), None);
        assert_eq!(p.flush_due(8, opened), Some(FlushReason::Size));
        assert_eq!(p.flush_due(64, opened), Some(FlushReason::Size));
    }

    #[test]
    fn deadline_flush_fires_for_nonempty_stale_batches() {
        let p = BatchPolicy::new(1000, Duration::from_millis(1));
        let opened = Instant::now() - Duration::from_millis(5);
        assert_eq!(p.flush_due(3, opened), Some(FlushReason::Deadline));
        // An empty batch never deadline-flushes — nothing to flush.
        assert_eq!(p.flush_due(0, opened), None);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = BatchPolicy::new(0, Duration::from_millis(1));
    }
}
