//! The ordered sharded index: N contiguous key-space partitions, each
//! served by its own [`BTreeIndex`] — the range-serving counterpart of
//! the hash-routed [`ShardedIndex`](crate::ShardedIndex).
//!
//! Where the hash index routes by `recipe.shard_of(key)`, the ordered
//! index routes by *boundary keys*: shard `i` owns the contiguous span
//! `[boundaries[i-1], boundaries[i])`. That placement is what makes
//! range serving scale — a scan touches only the adjacent shards its
//! key interval overlaps, and gathering their per-shard (already
//! key-ordered, disjoint) result streams back into one ordered reply is
//! a concatenation, not a merge sort.
//!
//! Writes route by [`write_shard_of`](OrderedShardedIndex::write_shard_of),
//! which is *pure* in the boundaries (plus one build-time constant for
//! the saturated-`u64::MAX` corner). Purity is the single-home
//! invariant: every copy of a key ever inserted lands in the one shard
//! the function names, so deletes and updates are single-shard
//! operations no matter what sequence of writes preceded them. The
//! read-side [`shard_of`](OrderedShardedIndex::shard_of) may walk back
//! over shards a delete storm emptied; the write side never does.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use widx_db::epoch::EpochDomain;
use widx_db::index::{build_range_sharded, BTreeIndex};

/// A B+-tree index range-partitioned into independent shards, one per
/// serving worker. Scans route by boundary-key span; builds split the
/// sorted entry stream into roughly equal contiguous chunks (duplicates
/// of one key never straddle a boundary). Every shard retires replaced
/// nodes into the same [`EpochDomain`].
pub struct OrderedShardedIndex {
    shards: Vec<RwLock<BTreeIndex>>,
    /// `shards - 1` non-decreasing boundary keys; shard `i` owns keys
    /// `k` with `boundaries[i-1] <= k < boundaries[i]` (unbounded at
    /// the ends).
    boundaries: Vec<u64>,
    /// Build-time home for `key == u64::MAX` when the trailing
    /// saturated boundary collides with it (see
    /// [`write_shard_of`](Self::write_shard_of)).
    max_key_home: usize,
}

impl OrderedShardedIndex {
    /// Partitions `pairs` into `shards` contiguous key ranges and
    /// builds one B+-tree of the given `fanout` per range, all retiring
    /// into `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `fanout < 2`.
    #[must_use]
    pub fn build(
        fanout: usize,
        shards: usize,
        domain: &Arc<EpochDomain>,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) -> OrderedShardedIndex {
        let (built, boundaries) = build_range_sharded(fanout, shards, pairs);
        // If the data ends at u64::MAX, the trailing empty shards carry
        // a saturated boundary equal to the key itself; the pure write
        // route (`partition_point(|b| *b <= key)`, which for `u64::MAX`
        // is every boundary) would point past the data. Freeze the
        // actual home now — boundaries never change, so the exception
        // is as static as the rest of the function.
        let mut max_key_home = boundaries.len();
        while max_key_home > 0 && built[max_key_home].is_empty() {
            max_key_home -= 1;
        }
        OrderedShardedIndex {
            shards: built
                .into_iter()
                .map(|mut t| {
                    t.set_domain(Arc::clone(domain));
                    RwLock::new(t)
                })
                .collect(),
            boundaries,
            max_key_home,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to shard `shard`. Walker batches hold this guard for
    /// the duration of one batch.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned (a worker panicked mid-write).
    pub fn read(&self, shard: usize) -> RwLockReadGuard<'_, BTreeIndex> {
        self.shards[shard].read().expect("ordered shard lock")
    }

    /// Write access to shard `shard` — reserved for the shard's owning
    /// worker at batch barriers.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn write(&self, shard: usize) -> RwLockWriteGuard<'_, BTreeIndex> {
        self.shards[shard].write().expect("ordered shard lock")
    }

    /// The boundary keys between shards (`shard_count() - 1` of them,
    /// non-decreasing).
    #[must_use]
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// The shard a *read* for `key` lands on: boundary routing, walking
    /// back over shards that have been emptied (a probe there would
    /// just miss; the walk-back finds data the build placed lower).
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        let mut shard = self.boundaries.partition_point(|b| *b <= key);
        // Trailing empty shards carry a saturated boundary of
        // `last_key + 1`; when the data itself ends at `u64::MAX` that
        // boundary collides with the key, over-routing it into the
        // empty tail — walk back to the shard that actually holds data.
        while shard > 0 && self.read(shard).is_empty() {
            shard -= 1;
        }
        shard
    }

    /// The shard a *write* for `key` belongs to. Pure in the (frozen)
    /// boundaries — no dependence on which shards currently hold data —
    /// so every write of a key, ever, lands in the same shard: inserts
    /// cannot dual-home a key, and deletes/updates are single-shard.
    /// The one exception is itself static: `key == u64::MAX` under a
    /// saturated tail boundary routes to the build-time
    /// `max_key_home`.
    #[must_use]
    pub fn write_shard_of(&self, key: u64) -> usize {
        if key == u64::MAX && self.boundaries.last() == Some(&u64::MAX) {
            return self.max_key_home;
        }
        self.boundaries.partition_point(|b| *b <= key)
    }

    /// The inclusive span of shards the range `[lo, hi]` can touch, as
    /// `(first, last)`. The span errs on the inclusive side at the left
    /// seam (the extra shard contributes nothing), so callers may
    /// scatter to every shard in it unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (degenerate ranges touch no shard; callers
    /// filter them first).
    #[must_use]
    pub fn shard_span(&self, lo: u64, hi: u64) -> (usize, usize) {
        assert!(lo <= hi, "degenerate range has no shard span");
        let first = self.boundaries.partition_point(|b| *b < lo);
        let last = self.boundaries.partition_point(|b| *b <= hi);
        (first, last)
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|s| self.read(s).len()).sum()
    }

    /// Whether the ordered index holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serial scatter/gather oracle: every `(key, payload)` with `lo <=
    /// key <= hi` in key order, truncated to `limit` — what the served
    /// [`RangeScan`](crate::Request::RangeScan) path must reproduce.
    #[must_use]
    pub fn scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || limit == 0 {
            return out;
        }
        let (first, last) = self.shard_span(lo, hi);
        for shard in first..=last {
            out.extend(self.read(shard).range_scan(lo, hi, limit - out.len()));
            if out.len() == limit {
                break;
            }
        }
        out
    }

    /// Descending counterpart of [`scan`](Self::scan): shards visited
    /// in *reverse* key order, each scanned backwards — what a served
    /// `RangeScan { desc: true }` must reproduce (the `ORDER BY key
    /// DESC` oracle: largest keys first, duplicates in reverse build
    /// order, the largest `limit` keys surviving).
    #[must_use]
    pub fn scan_desc(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || limit == 0 {
            return out;
        }
        let (first, last) = self.shard_span(lo, hi);
        for shard in (first..=last).rev() {
            out.extend(self.read(shard).range_scan_desc(lo, hi, limit - out.len()));
            if out.len() == limit {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ordered(shards: usize, entries: u64) -> OrderedShardedIndex {
        OrderedShardedIndex::build(
            8,
            shards,
            &EpochDomain::new(),
            (0..entries).map(|k| (k * 2, k)),
        )
    }

    #[test]
    fn spans_and_routing_respect_boundaries() {
        let idx = ordered(4, 1000);
        assert_eq!(idx.shard_count(), 4);
        assert_eq!(idx.len(), 1000);
        for k in (0..2000u64).step_by(2) {
            let owner = idx.shard_of(k);
            let hit: Vec<usize> = (0..idx.shard_count())
                .filter(|s| idx.read(*s).lookup(k).is_some())
                .collect();
            assert_eq!(hit, vec![owner], "key {k}");
            let (first, last) = idx.shard_span(k, k);
            assert!((first..=last).contains(&owner), "span covers owner for {k}");
            assert_eq!(
                idx.write_shard_of(k),
                owner,
                "write route agrees while data is in place for {k}"
            );
        }
    }

    #[test]
    fn scan_oracle_equals_one_big_tree() {
        let idx = ordered(5, 2000);
        let one = BTreeIndex::build(8, (0..2000u64).map(|k| (k * 2, k)));
        for (lo, hi, limit) in [
            (0u64, u64::MAX, usize::MAX),
            (100, 700, usize::MAX),
            (101, 699, 17),
            (3999, 3999, usize::MAX),
            (500, 100, usize::MAX),
            (0, 4000, 0),
        ] {
            assert_eq!(
                idx.scan(lo, hi, limit),
                one.range_scan(lo, hi, limit),
                "scan [{lo}, {hi}] limit {limit}"
            );
        }
    }

    #[test]
    fn scan_desc_oracle_equals_one_big_tree() {
        let idx = ordered(5, 2000);
        let one = BTreeIndex::build(8, (0..2000u64).map(|k| (k * 2, k)));
        for (lo, hi, limit) in [
            (0u64, u64::MAX, usize::MAX),
            (100, 700, usize::MAX),
            (101, 699, 17),
            (3999, 3999, usize::MAX),
            (500, 100, usize::MAX),
            (0, 4000, 0),
        ] {
            assert_eq!(
                idx.scan_desc(lo, hi, limit),
                one.range_scan_desc(lo, hi, limit),
                "scan_desc [{lo}, {hi}] limit {limit}"
            );
        }
    }

    #[test]
    fn limit_truncates_across_shard_seams() {
        let idx = ordered(4, 1000);
        // A scan spanning all shards, cut mid-way through the second.
        let all = idx.scan(0, u64::MAX, usize::MAX);
        assert_eq!(all.len(), 1000);
        let per_shard = idx.read(0).len();
        let limit = per_shard + 3;
        let got = idx.scan(0, u64::MAX, limit);
        assert_eq!(got.len(), limit);
        assert_eq!(got, all[..limit], "prefix of the full ordered scan");
    }

    #[test]
    fn single_shard_and_empty_builds() {
        let idx = ordered(1, 100);
        assert_eq!(idx.shard_count(), 1);
        assert!(idx.boundaries().is_empty());
        assert_eq!(idx.scan(0, 300, usize::MAX).len(), 100);

        let empty = OrderedShardedIndex::build(4, 3, &EpochDomain::new(), std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.scan(0, u64::MAX, usize::MAX), vec![]);
    }

    #[test]
    fn duplicates_stay_colocated_and_ordered() {
        let mut pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k, 0)).collect();
        pairs.extend((0..50u64).map(|p| (40, p + 1)));
        let idx = OrderedShardedIndex::build(4, 4, &EpochDomain::new(), pairs);
        let dups: Vec<u64> = idx
            .scan(40, 40, usize::MAX)
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        let mut want = vec![0u64];
        want.extend(1..=50);
        assert_eq!(dups, want, "build-order payloads in one shard");
    }

    #[test]
    #[should_panic(expected = "degenerate range")]
    fn inverted_span_rejected() {
        let _ = ordered(2, 10).shard_span(5, 4);
    }

    #[test]
    fn max_key_routes_to_its_data_despite_saturated_boundary() {
        // Data ending at u64::MAX with empty trailing shards: the
        // saturated boundary equals the key, which must still route to
        // the shard holding it — for reads, writes, and scans.
        let idx = OrderedShardedIndex::build(
            4,
            3,
            &EpochDomain::new(),
            [(u64::MAX, 7u64), (u64::MAX, 8)],
        );
        let owner = idx.shard_of(u64::MAX);
        assert!(
            idx.read(owner).lookup(u64::MAX).is_some(),
            "owner shard holds the key"
        );
        assert_eq!(idx.write_shard_of(u64::MAX), owner);
        assert_eq!(
            idx.scan(u64::MAX, u64::MAX, usize::MAX),
            vec![(u64::MAX, 7), (u64::MAX, 8)]
        );
    }

    #[test]
    fn write_route_is_stable_under_any_write_sequence() {
        let idx = ordered(4, 500);
        // Empty a middle shard completely, then keep writing the same
        // keys: the pure route keeps naming the now-empty shard, so a
        // later insert + delete pair stays consistent (no dual-homing).
        let victim_lo = idx.boundaries()[0];
        let victim_hi = idx.boundaries()[1] - 1;
        for k in victim_lo..=victim_hi {
            idx.write(idx.write_shard_of(k)).delete(k);
        }
        assert!(idx.read(1).is_empty(), "shard 1 emptied");
        for k in victim_lo..=victim_hi.min(victim_lo + 50) {
            let home = idx.write_shard_of(k);
            assert_eq!(home, 1, "route ignores emptiness");
            idx.write(home).insert(k, 777);
            assert_eq!(idx.scan(k, k, usize::MAX), vec![(k, 777)]);
            assert_eq!(idx.write(idx.write_shard_of(k)).delete(k), 1);
            assert!(idx.scan(k, k, usize::MAX).is_empty());
        }
    }

    #[test]
    fn writes_within_the_span_stay_scannable() {
        let idx = ordered(4, 500);
        // Insert brand-new keys between existing ones across all shards
        // through the write route; scans must see them in order.
        for k in (1..999u64).step_by(2) {
            idx.write(idx.write_shard_of(k)).insert(k, k + 10_000);
        }
        let all = idx.scan(0, 1000, usize::MAX);
        let mut want: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 2, k)).collect();
        want.extend((1..999u64).step_by(2).map(|k| (k, k + 10_000)));
        want.sort_by_key(|(k, _)| *k);
        assert_eq!(all, want);
        let mut rev = all.clone();
        rev.reverse();
        assert_eq!(idx.scan_desc(0, 1000, usize::MAX), rev);
    }
}
