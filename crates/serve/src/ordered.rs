//! The ordered sharded index: N contiguous key-space partitions, each
//! served by its own [`BTreeIndex`] — the range-serving counterpart of
//! the hash-routed [`ShardedIndex`](crate::ShardedIndex).
//!
//! Where the hash index routes by `recipe.shard_of(key)`, the ordered
//! index routes by *boundary keys*: shard `i` owns the contiguous span
//! `[boundaries[i-1], boundaries[i])`. That placement is what makes
//! range serving scale — a scan touches only the adjacent shards its
//! key interval overlaps, and gathering their per-shard (already
//! key-ordered, disjoint) result streams back into one ordered reply is
//! a concatenation, not a merge sort.

use widx_db::index::{build_range_sharded, BTreeIndex};

/// A B+-tree index range-partitioned into independent shards, one per
/// serving worker. Scans route by boundary-key span; builds split the
/// sorted entry stream into roughly equal contiguous chunks (duplicates
/// of one key never straddle a boundary).
pub struct OrderedShardedIndex {
    shards: Vec<BTreeIndex>,
    /// `shards - 1` non-decreasing boundary keys; shard `i` owns keys
    /// `k` with `boundaries[i-1] <= k < boundaries[i]` (unbounded at
    /// the ends).
    boundaries: Vec<u64>,
}

impl OrderedShardedIndex {
    /// Partitions `pairs` into `shards` contiguous key ranges and
    /// builds one B+-tree of the given `fanout` per range.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `fanout < 2`.
    #[must_use]
    pub fn build(
        fanout: usize,
        shards: usize,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) -> OrderedShardedIndex {
        let (shards, boundaries) = build_range_sharded(fanout, shards, pairs);
        OrderedShardedIndex { shards, boundaries }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard trees, in key order.
    #[must_use]
    pub fn shards(&self) -> &[BTreeIndex] {
        &self.shards
    }

    /// The boundary keys between shards (`shard_count() - 1` of them,
    /// non-decreasing).
    #[must_use]
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// The shard owning `key`.
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        let mut shard = self.boundaries.partition_point(|b| *b <= key);
        // Trailing empty shards carry a saturated boundary of
        // `last_key + 1`; when the data itself ends at `u64::MAX` that
        // boundary collides with the key, over-routing it into the
        // empty tail — walk back to the shard that actually holds data.
        while shard > 0 && self.shards[shard].is_empty() {
            shard -= 1;
        }
        shard
    }

    /// The inclusive span of shards the range `[lo, hi]` can touch, as
    /// `(first, last)`. The span errs on the inclusive side at the left
    /// seam (the extra shard contributes nothing), so callers may
    /// scatter to every shard in it unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (degenerate ranges touch no shard; callers
    /// filter them first).
    #[must_use]
    pub fn shard_span(&self, lo: u64, hi: u64) -> (usize, usize) {
        assert!(lo <= hi, "degenerate range has no shard span");
        let first = self.boundaries.partition_point(|b| *b < lo);
        let last = self.boundaries.partition_point(|b| *b <= hi);
        (first, last)
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(BTreeIndex::len).sum()
    }

    /// Whether the ordered index holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serial scatter/gather oracle: every `(key, payload)` with `lo <=
    /// key <= hi` in key order, truncated to `limit` — what the served
    /// [`RangeScan`](crate::Request::RangeScan) path must reproduce.
    #[must_use]
    pub fn scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || limit == 0 {
            return out;
        }
        let (first, last) = self.shard_span(lo, hi);
        for shard in &self.shards[first..=last] {
            out.extend(shard.range_scan(lo, hi, limit - out.len()));
            if out.len() == limit {
                break;
            }
        }
        out
    }

    /// Descending counterpart of [`scan`](Self::scan): shards visited
    /// in *reverse* key order, each scanned backwards — what a served
    /// `RangeScan { desc: true }` must reproduce (the `ORDER BY key
    /// DESC` oracle: largest keys first, duplicates in reverse build
    /// order, the largest `limit` keys surviving).
    #[must_use]
    pub fn scan_desc(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || limit == 0 {
            return out;
        }
        let (first, last) = self.shard_span(lo, hi);
        for shard in self.shards[first..=last].iter().rev() {
            out.extend(shard.range_scan_desc(lo, hi, limit - out.len()));
            if out.len() == limit {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ordered(shards: usize, entries: u64) -> OrderedShardedIndex {
        OrderedShardedIndex::build(8, shards, (0..entries).map(|k| (k * 2, k)))
    }

    #[test]
    fn spans_and_routing_respect_boundaries() {
        let idx = ordered(4, 1000);
        assert_eq!(idx.shard_count(), 4);
        assert_eq!(idx.len(), 1000);
        for k in (0..2000u64).step_by(2) {
            let owner = idx.shard_of(k);
            let hit: Vec<usize> = idx
                .shards()
                .iter()
                .enumerate()
                .filter(|(_, t)| t.lookup(k).is_some())
                .map(|(s, _)| s)
                .collect();
            assert_eq!(hit, vec![owner], "key {k}");
            let (first, last) = idx.shard_span(k, k);
            assert!((first..=last).contains(&owner), "span covers owner for {k}");
        }
    }

    #[test]
    fn scan_oracle_equals_one_big_tree() {
        let idx = ordered(5, 2000);
        let one = BTreeIndex::build(8, (0..2000u64).map(|k| (k * 2, k)));
        for (lo, hi, limit) in [
            (0u64, u64::MAX, usize::MAX),
            (100, 700, usize::MAX),
            (101, 699, 17),
            (3999, 3999, usize::MAX),
            (500, 100, usize::MAX),
            (0, 4000, 0),
        ] {
            assert_eq!(
                idx.scan(lo, hi, limit),
                one.range_scan(lo, hi, limit),
                "scan [{lo}, {hi}] limit {limit}"
            );
        }
    }

    #[test]
    fn scan_desc_oracle_equals_one_big_tree() {
        let idx = ordered(5, 2000);
        let one = BTreeIndex::build(8, (0..2000u64).map(|k| (k * 2, k)));
        for (lo, hi, limit) in [
            (0u64, u64::MAX, usize::MAX),
            (100, 700, usize::MAX),
            (101, 699, 17),
            (3999, 3999, usize::MAX),
            (500, 100, usize::MAX),
            (0, 4000, 0),
        ] {
            assert_eq!(
                idx.scan_desc(lo, hi, limit),
                one.range_scan_desc(lo, hi, limit),
                "scan_desc [{lo}, {hi}] limit {limit}"
            );
        }
    }

    #[test]
    fn limit_truncates_across_shard_seams() {
        let idx = ordered(4, 1000);
        // A scan spanning all shards, cut mid-way through the second.
        let all = idx.scan(0, u64::MAX, usize::MAX);
        assert_eq!(all.len(), 1000);
        let per_shard = idx.shards()[0].len();
        let limit = per_shard + 3;
        let got = idx.scan(0, u64::MAX, limit);
        assert_eq!(got.len(), limit);
        assert_eq!(got, all[..limit], "prefix of the full ordered scan");
    }

    #[test]
    fn single_shard_and_empty_builds() {
        let idx = ordered(1, 100);
        assert_eq!(idx.shard_count(), 1);
        assert!(idx.boundaries().is_empty());
        assert_eq!(idx.scan(0, 300, usize::MAX).len(), 100);

        let empty = OrderedShardedIndex::build(4, 3, std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.scan(0, u64::MAX, usize::MAX), vec![]);
    }

    #[test]
    fn duplicates_stay_colocated_and_ordered() {
        let mut pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k, 0)).collect();
        pairs.extend((0..50u64).map(|p| (40, p + 1)));
        let idx = OrderedShardedIndex::build(4, 4, pairs);
        let dups: Vec<u64> = idx
            .scan(40, 40, usize::MAX)
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        let mut want = vec![0u64];
        want.extend(1..=50);
        assert_eq!(dups, want, "build-order payloads in one shard");
    }

    #[test]
    #[should_panic(expected = "degenerate range")]
    fn inverted_span_rejected() {
        let _ = ordered(2, 10).shard_span(5, 4);
    }

    #[test]
    fn max_key_routes_to_its_data_despite_saturated_boundary() {
        // Data ending at u64::MAX with empty trailing shards: the
        // saturated boundary equals the key, which must still route to
        // the shard holding it, and scans must find it.
        let idx = OrderedShardedIndex::build(4, 3, [(u64::MAX, 7u64), (u64::MAX, 8)]);
        let owner = idx.shard_of(u64::MAX);
        assert!(
            idx.shards()[owner].lookup(u64::MAX).is_some(),
            "owner shard holds the key"
        );
        assert_eq!(
            idx.scan(u64::MAX, u64::MAX, usize::MAX),
            vec![(u64::MAX, 7), (u64::MAX, 8)]
        );
    }
}
