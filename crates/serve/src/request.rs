//! The typed request/response surface of the probe service, plus the
//! completion plumbing connecting shard workers back to waiting clients
//! — buffered ([`PendingResponse`]) and chunk-streaming
//! ([`PendingStream`]).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use widx_obs::{
    ActiveTrace, FlightRecorder, PendingCommit, Stage, StageTimes, TraceStage, WorkerCell,
};

/// One write operation, as routed to the shard that owns its key. The
/// owning shard worker applies it under the shard's write guard at a
/// batch barrier — the single-writer-per-shard model that keeps the
/// shard locks structurally uncontended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOp {
    /// Append `payload` under `key` (duplicates accumulate, after any
    /// existing payloads for the key). Always applies.
    Insert {
        /// The key to insert under.
        key: u64,
        /// The payload to store.
        payload: u64,
    },
    /// Remove *every* payload stored under `key`. Applies when at least
    /// one entry existed; a miss acks `false`.
    Delete {
        /// The key to remove.
        key: u64,
    },
    /// Replace every payload under `key` with the single `payload`.
    /// Applies only when the key existed — an update never inserts, a
    /// miss acks `false` and leaves the index unchanged.
    Update {
        /// The key to update.
        key: u64,
        /// The replacement payload.
        payload: u64,
    },
}

impl WriteOp {
    /// The key this operation routes by.
    #[must_use]
    pub fn key(&self) -> u64 {
        match self {
            WriteOp::Insert { key, .. } | WriteOp::Delete { key } | WriteOp::Update { key, .. } => {
                *key
            }
        }
    }
}

/// A probe request submitted to the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// All payloads stored under one key (the serving analogue of
    /// [`widx_db::index::HashIndex::lookup_all`]).
    Lookup {
        /// The key to probe.
        key: u64,
    },
    /// Probe a batch of keys; the response carries `(key, payload)`
    /// matches, unordered, duplicates included.
    MultiLookup {
        /// The keys to probe (duplicates allowed).
        keys: Vec<u64>,
    },
    /// Probe the keys of an outer-relation column; the response carries
    /// `(probe row, payload)` pairs — the positional index-join form the
    /// paper's hash-join inner loop produces.
    JoinProbe {
        /// The outer relation's key column, in row order.
        keys: Vec<u64>,
    },
    /// Scan the ordered index for every entry with a key in `[lo, hi]`;
    /// the response carries `(key, payload)` entries in key order,
    /// truncated to the first `limit`. Served by the range-partitioned
    /// B+-tree tier — the service scatters the scan over the shards the
    /// interval overlaps and gathers their disjoint, pre-ordered
    /// streams back into one reply.
    RangeScan {
        /// Inclusive lower key bound.
        lo: u64,
        /// Inclusive upper key bound (`lo > hi` is a valid, empty scan).
        hi: u64,
        /// Maximum entries returned (`usize::MAX` for unbounded).
        limit: usize,
        /// Scan direction: `false` ascends, `true` serves
        /// `ORDER BY key DESC` — descending key order, duplicates in
        /// reverse build order, the *largest* keys surviving `limit`.
        desc: bool,
    },
    /// Insert `(key, payload)` pairs. Every pair applies; the response
    /// acks each one `true`, in request order.
    Insert {
        /// The `(key, payload)` pairs to insert.
        pairs: Vec<(u64, u64)>,
    },
    /// Delete every payload under each key. Each key acks `true` when
    /// at least one entry existed, `false` on a miss.
    Delete {
        /// The keys to delete.
        keys: Vec<u64>,
    },
    /// Replace every payload under each key with the paired payload.
    /// Each pair acks `true` when the key existed; a miss acks `false`
    /// and inserts nothing.
    Update {
        /// The `(key, replacement payload)` pairs.
        pairs: Vec<(u64, u64)>,
    },
}

impl Request {
    /// The probe keys of this request, in row order (empty for a
    /// [`RangeScan`](Request::RangeScan), which is bounded by keys
    /// rather than enumerating them, and for write requests, which
    /// route through the write planner instead).
    #[must_use]
    pub fn keys(&self) -> &[u64] {
        match self {
            Request::Lookup { key } => std::slice::from_ref(key),
            Request::MultiLookup { keys } | Request::JoinProbe { keys } => keys,
            Request::RangeScan { .. } | Request::Insert { .. } | Request::Update { .. } => &[],
            Request::Delete { keys } => keys,
        }
    }

    /// The flat operation list of a write request (`None` for reads).
    /// Operation order is request order — the order response acks are
    /// reported in.
    #[must_use]
    pub fn write_ops(&self) -> Option<Vec<WriteOp>> {
        match self {
            Request::Insert { pairs } => Some(
                pairs
                    .iter()
                    .map(|&(key, payload)| WriteOp::Insert { key, payload })
                    .collect(),
            ),
            Request::Delete { keys } => {
                Some(keys.iter().map(|&key| WriteOp::Delete { key }).collect())
            }
            Request::Update { pairs } => Some(
                pairs
                    .iter()
                    .map(|&(key, payload)| WriteOp::Update { key, payload })
                    .collect(),
            ),
            _ => None,
        }
    }
}

/// What kind of response a request assembles into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RequestKind {
    Lookup {
        key: u64,
    },
    MultiLookup,
    JoinProbe,
    RangeScan {
        limit: usize,
    },
    /// A write batch of `ops` operations; acks assemble positionally.
    Write {
        ops: usize,
    },
}

/// A completed probe response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Every payload stored under the looked-up key.
    Lookup {
        /// The probed key.
        key: u64,
        /// All payloads found (empty on a miss).
        payloads: Vec<u64>,
    },
    /// `(key, payload)` matches for a [`Request::MultiLookup`],
    /// unordered.
    MultiLookup {
        /// All `(probe key, payload)` matches.
        matches: Vec<(u64, u64)>,
    },
    /// `(probe row, payload)` pairs for a [`Request::JoinProbe`],
    /// unordered.
    JoinProbe {
        /// All `(outer row index, payload)` join pairs.
        pairs: Vec<(u64, u64)>,
    },
    /// The merged reply to a [`Request::RangeScan`]: per-shard result
    /// streams gathered back into one key order — ascending (duplicates
    /// in build order) or, for a `desc` request, descending (duplicates
    /// in reverse build order) — truncated to the request's `limit`.
    RangeScan {
        /// `(key, payload)` entries in request key order.
        entries: Vec<(u64, u64)>,
    },
    /// Per-operation acknowledgements for a write request
    /// ([`Request::Insert`]/[`Delete`](Request::Delete)/
    /// [`Update`](Request::Update)), in request operation order: `true`
    /// when the operation took effect (inserts always; deletes and
    /// updates only when the key existed).
    Write {
        /// Applied/miss flag per operation, positionally.
        acks: Vec<bool>,
    },
}

impl Response {
    /// Number of matches the response carries, regardless of variant
    /// (payloads for a `Lookup`, pairs otherwise) — misses contribute
    /// zero.
    #[must_use]
    pub fn match_count(&self) -> usize {
        match self {
            Response::Lookup { payloads, .. } => payloads.len(),
            Response::MultiLookup { matches } => matches.len(),
            Response::JoinProbe { pairs } => pairs.len(),
            Response::RangeScan { entries } => entries.len(),
            Response::Write { acks } => acks.iter().filter(|a| **a).count(),
        }
    }
}

/// One match as routed internally: `(probe row, key, payload)`.
pub(crate) type RoutedMatch = (u32, u64, u64);

/// One scatter rank's stash of streamed chunks that cannot be released
/// yet (a rank earlier in output order is still scanning).
#[derive(Default)]
struct RankBuf {
    chunks: VecDeque<Vec<(u64, u64)>>,
    done: bool,
}

/// The streaming gather seam of one chunked range scan. Ranks release
/// strictly in order — rank `head` forwards chunks as they arrive, later
/// ranks stash until every earlier rank's part has completed — so the
/// released chunk sequence concatenates to exactly the buffered
/// [`Response::RangeScan`], with the request's `limit` still applied
/// here at the seam (`remaining` counts it down; once it hits zero the
/// stream ends early and everything still in flight is discarded).
struct StreamState {
    /// Index of the rank currently allowed to release chunks.
    head: usize,
    ranks: Vec<RankBuf>,
    /// Released, key-ordered, limit-truncated chunks awaiting the
    /// consumer.
    ready: VecDeque<Vec<(u64, u64)>>,
    /// Entries the seam may still release before the limit.
    remaining: usize,
    /// Recycled chunk buffers: consumed in place by
    /// [`PendingStream::try_next_with`], handed back to the pushing
    /// worker by [`ResponseState::push_chunk`] so the steady state of a
    /// long scan allocates no fresh chunk `Vec`s at all.
    spare: Vec<Vec<(u64, u64)>>,
}

/// Recycled chunk buffers retained per stream; beyond this they drop,
/// so a burst of consumed chunks cannot pin memory on a quiet stream.
const STREAM_SPARE_CAP: usize = 8;

impl StreamState {
    /// Whether the stream can produce nothing further (the consumer
    /// sees `End` once `ready` drains).
    fn finished(&self, all_parts_done: bool) -> bool {
        all_parts_done || self.remaining == 0
    }

    /// Returns a consumed chunk's buffer to the spare pool (cleared).
    fn recycle(&mut self, mut chunk: Vec<(u64, u64)>) {
        if self.spare.len() < STREAM_SPARE_CAP {
            chunk.clear();
            self.spare.push(chunk);
        }
    }
}

/// Everything a traced request carries until its trace commits: the
/// span timeline under construction, the recorder to commit into, and
/// the commit policy. `deferred` marks traces the net tier closes (the
/// reply-write span outlives the service-side completion), so
/// [`ResponseState::complete_part`] leaves them in place for
/// [`PendingResponse::take_trace`] instead of committing at wakeup.
pub(crate) struct TraceState {
    pub(crate) active: ActiveTrace,
    pub(crate) recorder: Arc<FlightRecorder>,
    pub(crate) slow_threshold: Option<Duration>,
    pub(crate) deferred: bool,
    /// Barrier ticket taken when the trace was armed. Every commit path
    /// runs its `offer` *before* this field drops (fields drop after the
    /// statement that moved `active` out), so once
    /// [`FlightRecorder::flush`] returns, the recorder has seen this
    /// trace's commit decision — including a deferred trace whose
    /// finisher was dropped without committing.
    pub(crate) _commit_ticket: PendingCommit,
}

impl TraceState {
    /// Commit the trace with latency measured from the trace base to now.
    fn commit_now(self) {
        let total = self.active.base().elapsed();
        self.recorder.offer(self.active, total, self.slow_threshold);
    }
}

/// The handle a net-tier reactor uses to close a deferred trace: taken
/// from a completed request at encode time, annotated with the
/// reply-write span when the flush cursor passes the reply, then
/// committed to the flight recorder.
pub struct TraceFinisher {
    state: Box<TraceState>,
}

impl TraceFinisher {
    /// Append the reply-write span (`start` = reply encoded, now =
    /// bytes flushed to the socket).
    pub fn note_reply_write(&mut self, start: Instant) {
        let now = Instant::now();
        self.state
            .active
            .span_between(TraceStage::ReplyWrite, start, now);
    }

    /// Seal the trace (end-to-end latency = trace base to now) and
    /// apply the recorder's sampling/slow-threshold commit policy.
    pub fn commit(self) {
        self.state.commit_now();
    }
}

pub(crate) struct PendingInner {
    pub(crate) parts_left: usize,
    pub(crate) items: Vec<RoutedMatch>,
    /// `Some` on chunk-streaming range scans; `None` on buffered
    /// requests.
    stream: Option<StreamState>,
    /// Completion hook: invoked (outside the lock) whenever a chunk
    /// becomes consumable or the request completes, so a polling event
    /// loop can skip scanning pending lists that saw no progress.
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
    pub(crate) kind: RequestKind,
    /// When the first shard-part finished — the start of the gather
    /// window ([`Stage::Gather`] spans first-done to last-done).
    first_done: Option<Instant>,
    /// Stage-timing sink, when the owning service attached one.
    stages: Option<Arc<StageTimes>>,
    /// Per-request trace under construction, when sampling armed one.
    trace: Option<Box<TraceState>>,
    pub(crate) done: bool,
}

/// Shared completion state for one in-flight request: workers complete
/// shard-parts (and, on streaming scans, push chunks); the client
/// blocks in [`PendingResponse::wait`] or drains a [`PendingStream`].
pub(crate) struct ResponseState {
    pub(crate) inner: Mutex<PendingInner>,
    pub(crate) ready: Condvar,
    /// Submission time — immutable after construction, so the queue-wait
    /// seam reads it without taking the lock.
    submitted: Instant,
    /// Whether a trace rides this request — immutable after
    /// construction, so workers skip the annotation lock entirely on
    /// the (default) untraced path.
    traced: bool,
}

impl ResponseState {
    pub(crate) fn new(kind: RequestKind, parts: usize) -> ResponseState {
        ResponseState {
            inner: Mutex::new(PendingInner {
                parts_left: parts,
                items: Vec::new(),
                stream: None,
                waker: None,
                kind,
                first_done: None,
                stages: None,
                trace: None,
                done: parts == 0,
            }),
            ready: Condvar::new(),
            submitted: Instant::now(),
            traced: false,
        }
    }

    /// Attaches the service's stage-timing sink. Must be called before
    /// the state is shared (it takes `self` by value precisely so no
    /// lock is needed).
    pub(crate) fn with_stages(mut self, stages: &Arc<StageTimes>) -> ResponseState {
        self.inner.get_mut().expect("pending lock").stages = Some(Arc::clone(stages));
        self
    }

    /// Attaches an armed trace. Must be called before the state is
    /// shared (by value, like [`with_stages`](Self::with_stages)). A
    /// zero-part request is already complete, so a non-deferred trace
    /// commits on the spot instead of waiting for a completion that
    /// will never run.
    pub(crate) fn with_trace(mut self, trace: Box<TraceState>) -> ResponseState {
        let inner = self.inner.get_mut().expect("pending lock");
        if inner.done && !trace.deferred {
            trace.commit_now();
            return self;
        }
        inner.trace = Some(trace);
        self.traced = true;
        self
    }

    /// Whether a trace rides this request (lock-free).
    pub(crate) fn is_traced(&self) -> bool {
        self.traced
    }

    /// Run `f` over the trace under construction (no-op when the trace
    /// is absent or already committed). `f` also receives the submit
    /// instant, the anchor for queue-wait spans. Keep `f` short — it
    /// runs under the completion lock.
    pub(crate) fn trace_annotate(&self, f: impl FnOnce(&mut ActiveTrace, Instant)) {
        let mut inner = self.inner.lock().expect("pending lock");
        if let Some(trace) = inner.trace.as_deref_mut() {
            f(&mut trace.active, self.submitted);
        }
    }

    /// Detach the trace for the net tier to close (reply-write span +
    /// commit). Returns `None` when no trace rides the request or it
    /// was already taken/committed.
    pub(crate) fn take_trace(&self) -> Option<TraceFinisher> {
        if !self.traced {
            return None;
        }
        let mut inner = self.inner.lock().expect("pending lock");
        inner.trace.take().map(|state| TraceFinisher { state })
    }

    /// Time since the request was submitted (lock-free).
    pub(crate) fn since_submit(&self) -> std::time::Duration {
        self.submitted.elapsed()
    }

    /// A streaming state: `parts` scatter ranks whose chunks the seam
    /// releases in rank order, `limit` applied as they release.
    pub(crate) fn new_stream(kind: RequestKind, parts: usize, limit: usize) -> ResponseState {
        let state = ResponseState::new(kind, parts);
        state.inner.lock().expect("pending lock").stream = Some(StreamState {
            head: 0,
            ranks: (0..parts).map(|_| RankBuf::default()).collect(),
            ready: VecDeque::new(),
            remaining: limit,
            spare: Vec::new(),
        });
        state
    }

    /// Whether workers should stream chunks to this state instead of
    /// accumulating a buffered reply.
    pub(crate) fn is_streaming(&self) -> bool {
        self.inner.lock().expect("pending lock").stream.is_some()
    }

    /// Releases everything releasable: the head rank's stashed chunks,
    /// advancing `head` over completed ranks. Returns true when the
    /// consumer-visible state changed (a chunk released, or the limit
    /// exhausted the stream).
    fn drain_released(stream: &mut StreamState) -> bool {
        let mut released = false;
        while stream.head < stream.ranks.len() && stream.remaining > 0 {
            while let Some(mut chunk) = stream.ranks[stream.head].chunks.pop_front() {
                chunk.truncate(stream.remaining);
                stream.remaining -= chunk.len();
                if !chunk.is_empty() {
                    stream.ready.push_back(chunk);
                    released = true;
                }
                if stream.remaining == 0 {
                    break;
                }
            }
            if stream.remaining == 0 {
                // Limit exhausted at the seam: the stream's end is now
                // observable; drop whatever later ranks stashed.
                for rank in &mut stream.ranks {
                    rank.chunks.clear();
                }
                released = true;
                break;
            }
            if stream.ranks[stream.head].done {
                stream.head += 1;
            } else {
                break;
            }
        }
        released
    }

    /// Called by a range worker when a streaming scan's walker has
    /// yielded a chunk for scatter rank `rank`. Chunks for the head
    /// rank become consumable immediately; later ranks stash until the
    /// seam reaches them.
    ///
    /// Returns a recycled chunk buffer (cleared, capacity intact) when
    /// the seam has one — the worker's next chunk for this stream can
    /// reuse it instead of allocating. A chunk pushed after the limit
    /// exhausted is handed straight back the same way.
    pub(crate) fn push_chunk(
        &self,
        rank: u32,
        mut chunk: Vec<(u64, u64)>,
    ) -> Option<Vec<(u64, u64)>> {
        if chunk.is_empty() {
            return Some(chunk);
        }
        let mut inner = self.inner.lock().expect("pending lock");
        let stream = inner
            .stream
            .as_mut()
            .expect("chunk pushed to a buffered request");
        if stream.remaining == 0 {
            // Limit already exhausted; the entries are discarded but the
            // buffer goes back to the worker for its next stream.
            chunk.clear();
            return Some(chunk);
        }
        stream.ranks[rank as usize].chunks.push_back(chunk);
        let spare = stream.spare.pop();
        if Self::drain_released(stream) {
            self.ready.notify_all();
            let waker = inner.waker.clone();
            drop(inner);
            if let Some(wake) = waker {
                wake();
            }
        }
        spare
    }

    /// Called by a range worker when a streaming scan's part for
    /// scatter rank `rank` has fully drained (every chunk pushed).
    /// Returns the completion latency when this was the final part,
    /// already recorded into `cell` **before** any completion signal —
    /// a caller whose `wait()` has returned must find the request
    /// counted by a `live_stats()` scrape.
    pub(crate) fn complete_stream_part(
        &self,
        rank: u32,
        cell: Option<&WorkerCell>,
    ) -> Option<std::time::Duration> {
        let mut inner = self.inner.lock().expect("pending lock");
        let stream = inner
            .stream
            .as_mut()
            .expect("stream part completed on a buffered request");
        stream.ranks[rank as usize].done = true;
        Self::drain_released(stream);
        if inner.first_done.is_none() {
            inner.first_done = Some(Instant::now());
        }
        inner.parts_left -= 1;
        let mut commit = None;
        let latency = if inner.parts_left == 0 {
            inner.done = true;
            if let (Some(stages), Some(first)) = (inner.stages.as_ref(), inner.first_done) {
                stages.record(Stage::Gather, first.elapsed());
            }
            let latency = self.submitted.elapsed();
            commit = self.close_trace(&mut inner, latency);
            if let Some(cell) = cell {
                cell.record_latency(latency);
            }
            Some(latency)
        } else {
            None
        };
        // Head advancement may have released chunks, and completion may
        // have ended the stream — wake unconditionally; spurious wakes
        // only cost the consumer one empty poll.
        self.ready.notify_all();
        let waker = inner.waker.clone();
        drop(inner);
        if let Some((trace, latency)) = commit {
            trace
                .recorder
                .offer(trace.active, latency, trace.slow_threshold);
        }
        if let Some(wake) = waker {
            wake();
        }
        latency
    }

    /// On final-part completion: append the gather span to the trace
    /// and, for a non-deferred (in-process) trace, detach it for commit
    /// once the lock drops. Deferred traces stay attached — the net
    /// tier takes them at encode time and closes them at flush.
    fn close_trace(
        &self,
        inner: &mut PendingInner,
        latency: Duration,
    ) -> Option<(Box<TraceState>, Duration)> {
        let first = inner.first_done;
        let trace = inner.trace.as_deref_mut()?;
        if let Some(first) = first {
            trace
                .active
                .span_between(TraceStage::Gather, first, Instant::now());
        }
        if trace.deferred {
            None
        } else {
            inner.trace.take().map(|t| (t, latency))
        }
    }

    /// Called by a shard worker when this request's slice of a batch has
    /// fully drained. Returns the request's completion latency when this
    /// was the final outstanding part, already recorded into `cell`
    /// **before** any completion signal — a caller whose `wait()` has
    /// returned must find the request counted by a `live_stats()`
    /// scrape.
    pub(crate) fn complete_part(
        &self,
        items: &[RoutedMatch],
        cell: Option<&WorkerCell>,
    ) -> Option<std::time::Duration> {
        let mut inner = self.inner.lock().expect("pending lock");
        inner.items.extend_from_slice(items);
        if inner.first_done.is_none() {
            inner.first_done = Some(Instant::now());
        }
        inner.parts_left -= 1;
        if inner.parts_left == 0 {
            inner.done = true;
            if let (Some(stages), Some(first)) = (inner.stages.as_ref(), inner.first_done) {
                stages.record(Stage::Gather, first.elapsed());
            }
            let latency = self.submitted.elapsed();
            let commit = self.close_trace(&mut inner, latency);
            if let Some(cell) = cell {
                cell.record_latency(latency);
            }
            self.ready.notify_all();
            let waker = inner.waker.clone();
            drop(inner);
            if let Some((trace, latency)) = commit {
                trace
                    .recorder
                    .offer(trace.active, latency, trace.slow_threshold);
            }
            if let Some(wake) = waker {
                wake();
            }
            Some(latency)
        } else {
            None
        }
    }

    /// Installs the completion hook, invoking it immediately (once)
    /// when the state already has consumable progress — so a caller
    /// registering after completion still learns about it.
    fn install_waker(&self, waker: Arc<dyn Fn() + Send + Sync>) {
        let wake_now = {
            let mut inner = self.inner.lock().expect("pending lock");
            let ready_now = inner.done
                || inner
                    .stream
                    .as_ref()
                    .is_some_and(|s| !s.ready.is_empty() || s.remaining == 0);
            inner.waker = Some(Arc::clone(&waker));
            ready_now
        };
        if wake_now {
            waker();
        }
    }
}

/// A handle to a submitted request; [`wait`](PendingResponse::wait)
/// blocks until every shard involved has answered.
pub struct PendingResponse {
    pub(crate) state: Arc<ResponseState>,
}

impl PendingResponse {
    /// Blocks until the request completes and assembles its response.
    #[must_use]
    pub fn wait(self) -> Response {
        let mut inner = self.state.inner.lock().expect("pending lock");
        while !inner.done {
            inner = self.state.ready.wait(inner).expect("pending wait");
        }
        Self::assemble(&mut inner)
    }

    /// Like [`wait`](PendingResponse::wait), but gives up after
    /// `timeout`, returning the handle back so the caller can retry —
    /// an escape hatch for supervisors that must not hang if a worker
    /// died mid-request.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the deadline passes first.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<Response, PendingResponse> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.state.inner.lock().expect("pending lock");
        while !inner.done {
            let now = Instant::now();
            if now >= deadline {
                drop(inner);
                return Err(self);
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(inner, deadline - now)
                .expect("pending wait");
            inner = guard;
        }
        let response = Self::assemble(&mut inner);
        drop(inner);
        Ok(response)
    }

    fn assemble(inner: &mut PendingInner) -> Response {
        let items = std::mem::take(&mut inner.items);
        match inner.kind {
            RequestKind::Lookup { key } => Response::Lookup {
                key,
                payloads: items.into_iter().map(|(_, _, payload)| payload).collect(),
            },
            RequestKind::MultiLookup => Response::MultiLookup {
                matches: items
                    .into_iter()
                    .map(|(_, key, payload)| (key, payload))
                    .collect(),
            },
            RequestKind::JoinProbe => Response::JoinProbe {
                pairs: items
                    .into_iter()
                    .map(|(row, _, payload)| (u64::from(row), payload))
                    .collect(),
            },
            RequestKind::RangeScan { limit } => {
                // Shard parts arrive in completion order, but each part
                // is already key-ordered and the parts' key ranges are
                // disjoint and ascending in scatter-rank order (range
                // partitioning), so bucketing by rank and concatenating
                // restores the global scan order in O(n) — no sort on
                // the gather path. The per-shard walkers each honoured
                // `limit` locally; the global truncation happens here,
                // at the seam.
                let mut buckets: Vec<Vec<(u64, u64)>> = Vec::new();
                for (rank, key, payload) in items {
                    let rank = rank as usize;
                    if rank >= buckets.len() {
                        buckets.resize_with(rank + 1, Vec::new);
                    }
                    buckets[rank].push((key, payload));
                }
                let mut entries: Vec<(u64, u64)> = buckets.into_iter().flatten().collect();
                entries.truncate(limit);
                Response::RangeScan { entries }
            }
            RequestKind::Write { ops } => {
                // Items are `(op index, key, applied)` rows from the
                // authoritative (hash) tier's shard workers; the ordered
                // tier's parts complete empty. Unreported ops cannot
                // happen — every op is routed to exactly one hash shard
                // — but default to a miss ack defensively.
                let mut acks = vec![false; ops];
                for (op, _key, applied) in items {
                    acks[op as usize] = applied != 0;
                }
                Response::Write { acks }
            }
        }
    }

    /// Whether the response is already complete (non-blocking).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.state.inner.lock().expect("pending lock").done
    }

    /// Installs a completion hook invoked when the request completes
    /// (and immediately, once, if it already has). Lets a polling event
    /// loop skip scanning its pending list until something actually
    /// completed, instead of calling [`is_ready`](Self::is_ready) on
    /// every entry every tick. Replaces any previously installed hook.
    pub fn set_waker(&self, waker: impl Fn() + Send + Sync + 'static) {
        self.state.install_waker(Arc::new(waker));
    }

    /// Detach this request's trace for the net tier to close (reply-write
    /// span + commit). Returns `None` when the request is untraced or the
    /// trace already committed in-process. Call only once the response is
    /// ready — worker annotations have finished by then.
    #[must_use]
    pub fn take_trace(&self) -> Option<TraceFinisher> {
        self.state.take_trace()
    }
}

/// What a non-blocking [`PendingStream::try_next`] observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamPoll {
    /// The next key-ordered chunk (non-empty, at most the service's
    /// `stream_chunk` entries).
    Chunk(Vec<(u64, u64)>),
    /// The stream is complete: every chunk has been taken. Terminal.
    End,
    /// No chunk consumable yet — poll again later (or install a waker).
    Pending,
}

/// What a zero-copy [`PendingStream::try_next_with`] poll observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamConsumed {
    /// The sink was handed one chunk of this many entries; its buffer
    /// was recycled into the seam's spare pool for the pushing worker.
    Consumed(usize),
    /// The stream is complete: every chunk has been taken. Terminal.
    End,
    /// No chunk consumable yet — poll again later (or install a waker).
    Pending,
}

/// A handle to a chunk-streaming range scan: chunks become consumable
/// *while shards are still scanning* — per-shard walkers push chunks as
/// they yield, and the gather seam forwards them in merged key order
/// (ascending or descending as requested) with the request's `limit`
/// applied at the seam. The concatenation of every chunk equals the
/// buffered [`Response::RangeScan`] for the same scan, exactly.
pub struct PendingStream {
    pub(crate) state: Arc<ResponseState>,
}

impl PendingStream {
    /// Non-blocking poll for the next chunk.
    #[must_use]
    pub fn try_next(&mut self) -> StreamPoll {
        let mut inner = self.state.inner.lock().expect("pending lock");
        let done = inner.done;
        let stream = inner
            .stream
            .as_mut()
            .expect("stream handle over a buffered state");
        if let Some(chunk) = stream.ready.pop_front() {
            return StreamPoll::Chunk(chunk);
        }
        if stream.finished(done) {
            StreamPoll::End
        } else {
            StreamPoll::Pending
        }
    }

    /// Non-blocking zero-copy poll: when a chunk is consumable, `sink`
    /// is handed a borrow of it and the buffer is recycled into the
    /// seam's spare pool — the path the net tier serializes chunks
    /// straight out of, without the owned-`Vec` handoff of
    /// [`try_next`](Self::try_next).
    ///
    /// `sink` runs under the seam lock: keep it short (serialize and
    /// return) and never call back into this stream or its service from
    /// inside it.
    pub fn try_next_with<F: FnOnce(&[(u64, u64)])>(&mut self, sink: F) -> StreamConsumed {
        let mut inner = self.state.inner.lock().expect("pending lock");
        let done = inner.done;
        let stream = inner
            .stream
            .as_mut()
            .expect("stream handle over a buffered state");
        if let Some(chunk) = stream.ready.pop_front() {
            sink(&chunk);
            let n = chunk.len();
            stream.recycle(chunk);
            return StreamConsumed::Consumed(n);
        }
        if stream.finished(done) {
            StreamConsumed::End
        } else {
            StreamConsumed::Pending
        }
    }

    /// Blocks for the next chunk; `None` means the stream has ended.
    /// (Also available through the [`Iterator`] impl.)
    #[must_use]
    pub fn next_chunk(&mut self) -> Option<Vec<(u64, u64)>> {
        let mut inner = self.state.inner.lock().expect("pending lock");
        loop {
            let done = inner.done;
            let stream = inner
                .stream
                .as_mut()
                .expect("stream handle over a buffered state");
            if let Some(chunk) = stream.ready.pop_front() {
                return Some(chunk);
            }
            if stream.finished(done) {
                return None;
            }
            inner = self.state.ready.wait(inner).expect("pending wait");
        }
    }

    /// Blocks until the stream ends, concatenating every remaining
    /// chunk — the buffered reply, delivered late. Mostly a convenience
    /// for tests and oracles.
    #[must_use]
    pub fn collect_remaining(&mut self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(chunk) = self.next_chunk() {
            out.extend(chunk);
        }
        out
    }

    /// Whether a chunk (or the end of the stream) is consumable right
    /// now — [`try_next`](Self::try_next) would not return `Pending`.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        let inner = self.state.inner.lock().expect("pending lock");
        let stream = inner
            .stream
            .as_ref()
            .expect("stream handle over a buffered state");
        !stream.ready.is_empty() || stream.finished(inner.done)
    }

    /// Installs a chunk-ready hook invoked whenever a chunk becomes
    /// consumable or the stream ends (and immediately, once, if either
    /// already holds) — the completion-wakeup contract that lets the
    /// net event loop skip streams that made no progress. Replaces any
    /// previously installed hook.
    pub fn set_waker(&self, waker: impl Fn() + Send + Sync + 'static) {
        self.state.install_waker(Arc::new(waker));
    }

    /// Detach this stream's trace for the net tier to close — see
    /// [`PendingResponse::take_trace`]. Take it only once the stream has
    /// ended (`StreamPoll::End`), when every shard part has completed.
    #[must_use]
    pub fn take_trace(&self) -> Option<TraceFinisher> {
        self.state.take_trace()
    }
}

impl Iterator for PendingStream {
    type Item = Vec<(u64, u64)>;

    /// Blocking iteration over the stream's chunks, in key order.
    fn next(&mut self) -> Option<Vec<(u64, u64)>> {
        self.next_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_keys_views() {
        assert_eq!(Request::Lookup { key: 9 }.keys(), &[9]);
        assert_eq!(Request::MultiLookup { keys: vec![1, 2] }.keys(), &[1, 2]);
        assert_eq!(Request::JoinProbe { keys: vec![3] }.keys(), &[3]);
        let scan = Request::RangeScan {
            lo: 1,
            hi: 5,
            limit: 10,
            desc: false,
        };
        assert_eq!(scan.keys(), &[] as &[u64]);
    }

    #[test]
    fn range_scan_parts_merge_in_key_order_with_limit() {
        let state = Arc::new(ResponseState::new(RequestKind::RangeScan { limit: 5 }, 3));
        // Parts complete out of shard order; each part is key-ordered
        // with a disjoint key range. Duplicates (key 20) sit in one part.
        state.complete_part(&[(1, 20, 1), (1, 20, 2), (1, 25, 0)], None);
        state.complete_part(&[(2, 30, 9), (2, 31, 9)], None);
        state.complete_part(&[(0, 10, 7), (0, 11, 8)], None);
        match (PendingResponse { state }).wait() {
            Response::RangeScan { entries } => {
                assert_eq!(
                    entries,
                    vec![(10, 7), (11, 8), (20, 1), (20, 2), (25, 0)],
                    "key order restored, duplicate order kept, limit cut at seam"
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn write_acks_assemble_positionally_from_routed_rows() {
        // 4 ops scattered over two hash parts plus one ordered-tier
        // part that completes empty; op 2 missed.
        let state = Arc::new(ResponseState::new(RequestKind::Write { ops: 4 }, 3));
        state.complete_part(&[(0, 10, 1), (2, 30, 0)], None);
        state.complete_part(&[], None); // ordered tier: no acks
        state.complete_part(&[(1, 20, 1), (3, 40, 1)], None);
        match (PendingResponse { state }).wait() {
            Response::Write { acks } => assert_eq!(acks, vec![true, true, false, true]),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn write_requests_expose_ops_and_route_keys() {
        let ins = Request::Insert {
            pairs: vec![(1, 10), (2, 20)],
        };
        assert_eq!(ins.keys(), &[] as &[u64]);
        assert_eq!(
            ins.write_ops().unwrap(),
            vec![
                WriteOp::Insert {
                    key: 1,
                    payload: 10
                },
                WriteOp::Insert {
                    key: 2,
                    payload: 20
                },
            ]
        );
        let del = Request::Delete { keys: vec![7, 8] };
        assert_eq!(del.keys(), &[7, 8]);
        assert_eq!(
            del.write_ops().unwrap(),
            vec![WriteOp::Delete { key: 7 }, WriteOp::Delete { key: 8 }]
        );
        let upd = Request::Update {
            pairs: vec![(3, 9)],
        };
        assert_eq!(
            upd.write_ops().unwrap(),
            vec![WriteOp::Update { key: 3, payload: 9 }]
        );
        assert_eq!(upd.write_ops().unwrap()[0].key(), 3);
        assert!(Request::Lookup { key: 1 }.write_ops().is_none());
        let resp = Response::Write {
            acks: vec![true, false, true],
        };
        assert_eq!(resp.match_count(), 2, "applied ops count as matches");
    }

    #[test]
    fn completion_assembles_lookup() {
        let state = Arc::new(ResponseState::new(RequestKind::Lookup { key: 5 }, 2));
        assert!(state.complete_part(&[(0, 5, 50)], None).is_none());
        let latency = state.complete_part(&[(0, 5, 51)], None);
        assert!(latency.is_some(), "last part yields the latency");
        let resp = PendingResponse { state }.wait();
        match resp {
            Response::Lookup { key, mut payloads } => {
                payloads.sort_unstable();
                assert_eq!((key, payloads), (5, vec![50, 51]));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn join_rows_survive_routing() {
        let state = Arc::new(ResponseState::new(RequestKind::JoinProbe, 1));
        state.complete_part(&[(7, 100, 1), (2, 100, 1)], None);
        match (PendingResponse { state }).wait() {
            Response::JoinProbe { mut pairs } => {
                pairs.sort_unstable();
                assert_eq!(pairs, vec![(2, 1), (7, 1)]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn wait_timeout_returns_handle_then_response() {
        let state = Arc::new(ResponseState::new(RequestKind::MultiLookup, 1));
        let pending = PendingResponse {
            state: Arc::clone(&state),
        };
        let pending = pending
            .wait_timeout(std::time::Duration::from_millis(10))
            .expect_err("not complete yet");
        state.complete_part(&[(0, 1, 2)], None);
        match pending.wait_timeout(std::time::Duration::from_secs(5)) {
            Ok(Response::MultiLookup { matches }) => assert_eq!(matches, vec![(1, 2)]),
            other => panic!("unexpected: {:?}", other.map_err(|_| "timeout")),
        }
    }

    #[test]
    fn zero_part_requests_complete_immediately() {
        let state = Arc::new(ResponseState::new(RequestKind::MultiLookup, 0));
        let pending = PendingResponse { state };
        assert!(pending.is_ready());
        assert_eq!(pending.wait(), Response::MultiLookup { matches: vec![] });
    }

    fn stream_state(parts: usize, limit: usize) -> Arc<ResponseState> {
        Arc::new(ResponseState::new_stream(
            RequestKind::RangeScan { limit },
            parts,
            limit,
        ))
    }

    #[test]
    fn stream_releases_head_rank_immediately_and_stashes_later_ranks() {
        let state = stream_state(3, usize::MAX);
        let mut stream = PendingStream {
            state: Arc::clone(&state),
        };
        assert_eq!(stream.try_next(), StreamPoll::Pending);
        // Rank 1 arrives first: stashed, not consumable.
        state.push_chunk(1, vec![(20, 0), (21, 0)]);
        assert_eq!(stream.try_next(), StreamPoll::Pending);
        // Rank 0 streams through live.
        state.push_chunk(0, vec![(1, 0)]);
        assert_eq!(stream.try_next(), StreamPoll::Chunk(vec![(1, 0)]));
        state.push_chunk(0, vec![(2, 0)]);
        assert_eq!(stream.try_next(), StreamPoll::Chunk(vec![(2, 0)]));
        assert_eq!(stream.try_next(), StreamPoll::Pending);
        // Rank 0 completes: rank 1's stash releases, in order.
        assert!(state.complete_stream_part(0, None).is_none());
        assert_eq!(stream.try_next(), StreamPoll::Chunk(vec![(20, 0), (21, 0)]));
        assert_eq!(stream.try_next(), StreamPoll::Pending);
        // Ranks 1 and 2 complete (2 pushed nothing): stream ends, and
        // the final completion reports the latency.
        assert!(state.complete_stream_part(1, None).is_none());
        assert!(state.complete_stream_part(2, None).is_some());
        assert_eq!(stream.try_next(), StreamPoll::End);
    }

    #[test]
    fn stream_limit_cuts_at_the_seam_and_discards_the_rest() {
        let state = stream_state(2, 3);
        let mut stream = PendingStream {
            state: Arc::clone(&state),
        };
        state.push_chunk(1, vec![(50, 0), (51, 0), (52, 0)]); // stashed
        state.push_chunk(0, vec![(1, 0), (2, 0)]);
        assert_eq!(stream.next(), Some(vec![(1, 0), (2, 0)]));
        assert!(state.complete_stream_part(0, None).is_none());
        // One entry of rank 1's stash survives the limit; the rest is
        // discarded and the stream ends even though rank 1's part is
        // still "running".
        assert_eq!(stream.next(), Some(vec![(50, 0)]));
        assert_eq!(stream.next(), None);
        assert!(stream.is_ready());
        // The straggler part still completes for latency accounting.
        state.push_chunk(1, vec![(53, 0)]); // dropped
        assert!(state.complete_stream_part(1, None).is_some());
        assert_eq!(stream.try_next(), StreamPoll::End);
    }

    #[test]
    fn zero_part_streams_are_born_ended() {
        let mut stream = PendingStream {
            state: stream_state(0, 10),
        };
        assert!(stream.is_ready());
        assert_eq!(stream.try_next(), StreamPoll::End);
        assert_eq!(stream.next(), None);
    }

    #[test]
    fn stream_waker_fires_on_chunks_end_and_late_registration() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let state = stream_state(1, usize::MAX);
        let stream = PendingStream {
            state: Arc::clone(&state),
        };
        let wakes = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&wakes);
        stream.set_waker(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(wakes.load(Ordering::Relaxed), 0, "nothing ready yet");
        state.push_chunk(0, vec![(1, 1)]);
        assert_eq!(wakes.load(Ordering::Relaxed), 1, "chunk ready");
        state.complete_stream_part(0, None);
        assert_eq!(wakes.load(Ordering::Relaxed), 2, "end of stream");
        // Late registration on an already-ready state fires immediately.
        let late = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&late);
        stream.set_waker(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(late.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn buffered_waker_fires_on_final_part() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let state = Arc::new(ResponseState::new(RequestKind::MultiLookup, 2));
        let pending = PendingResponse {
            state: Arc::clone(&state),
        };
        let wakes = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&wakes);
        pending.set_waker(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        state.complete_part(&[(0, 1, 2)], None);
        assert_eq!(wakes.load(Ordering::Relaxed), 0, "one part still out");
        state.complete_part(&[], None);
        assert_eq!(wakes.load(Ordering::Relaxed), 1, "completion woke");
        assert!(pending.is_ready());
    }

    #[test]
    fn in_place_poll_matches_owned_poll_and_recycles_buffers() {
        let state = stream_state(2, usize::MAX);
        let mut stream = PendingStream {
            state: Arc::clone(&state),
        };
        assert_eq!(
            stream.try_next_with(|_| panic!("nothing ready")),
            StreamConsumed::Pending
        );
        // Nothing consumed yet, so no spare to hand back.
        let first = vec![(1, 10), (2, 20)];
        assert!(state.push_chunk(0, first).is_none());
        let mut seen = Vec::new();
        assert_eq!(
            stream.try_next_with(|entries| seen.extend_from_slice(entries)),
            StreamConsumed::Consumed(2)
        );
        assert_eq!(seen, vec![(1, 10), (2, 20)]);
        // The consumed buffer was recycled: the next push gets it back,
        // cleared but with its capacity intact.
        let spare = state.push_chunk(0, vec![(3, 30)]).expect("recycled buffer");
        assert!(spare.is_empty());
        assert!(spare.capacity() >= 2);
        seen.clear();
        assert_eq!(
            stream.try_next_with(|entries| seen.extend_from_slice(entries)),
            StreamConsumed::Consumed(1)
        );
        assert_eq!(seen, vec![(3, 30)]);
        assert_eq!(
            stream.try_next_with(|_| panic!("pending")),
            StreamConsumed::Pending
        );
        assert!(state.complete_stream_part(0, None).is_none());
        assert!(state.complete_stream_part(1, None).is_some());
        assert_eq!(
            stream.try_next_with(|_| panic!("ended")),
            StreamConsumed::End
        );
    }

    #[test]
    fn push_after_limit_hands_the_buffer_straight_back() {
        let state = stream_state(1, 1);
        let mut stream = PendingStream {
            state: Arc::clone(&state),
        };
        assert!(state.push_chunk(0, vec![(1, 0), (2, 0)]).is_none());
        assert_eq!(
            stream.try_next_with(|e| assert_eq!(e, [(1, 0)])),
            StreamConsumed::Consumed(1)
        );
        // Limit exhausted at the seam: the next push's entries are
        // discarded but its allocation returns to the worker.
        let back = state.push_chunk(0, vec![(3, 0)]).expect("buffer back");
        assert!(back.is_empty() && back.capacity() >= 1);
        assert_eq!(
            stream.try_next_with(|_| panic!("ended")),
            StreamConsumed::End
        );
    }

    #[test]
    fn blocking_next_wakes_on_cross_thread_pushes() {
        let state = stream_state(1, usize::MAX);
        let mut stream = PendingStream {
            state: Arc::clone(&state),
        };
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            state.push_chunk(0, vec![(7, 7)]);
            state.complete_stream_part(0, None);
        });
        assert_eq!(stream.next(), Some(vec![(7, 7)]));
        assert_eq!(stream.next(), None);
        pusher.join().unwrap();
    }
}
