//! The typed request/response surface of the probe service, plus the
//! completion plumbing connecting shard workers back to waiting clients.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A probe request submitted to the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// All payloads stored under one key (the serving analogue of
    /// [`widx_db::index::HashIndex::lookup_all`]).
    Lookup {
        /// The key to probe.
        key: u64,
    },
    /// Probe a batch of keys; the response carries `(key, payload)`
    /// matches, unordered, duplicates included.
    MultiLookup {
        /// The keys to probe (duplicates allowed).
        keys: Vec<u64>,
    },
    /// Probe the keys of an outer-relation column; the response carries
    /// `(probe row, payload)` pairs — the positional index-join form the
    /// paper's hash-join inner loop produces.
    JoinProbe {
        /// The outer relation's key column, in row order.
        keys: Vec<u64>,
    },
    /// Scan the ordered index for every entry with a key in `[lo, hi]`;
    /// the response carries `(key, payload)` entries in ascending key
    /// order, truncated to the first `limit`. Served by the
    /// range-partitioned B+-tree tier — the service scatters the scan
    /// over the shards the interval overlaps and gathers their disjoint,
    /// pre-ordered streams back into one reply.
    RangeScan {
        /// Inclusive lower key bound.
        lo: u64,
        /// Inclusive upper key bound (`lo > hi` is a valid, empty scan).
        hi: u64,
        /// Maximum entries returned (`usize::MAX` for unbounded).
        limit: usize,
    },
}

impl Request {
    /// The probe keys of this request, in row order (empty for a
    /// [`RangeScan`](Request::RangeScan), which is bounded by keys
    /// rather than enumerating them).
    #[must_use]
    pub fn keys(&self) -> &[u64] {
        match self {
            Request::Lookup { key } => std::slice::from_ref(key),
            Request::MultiLookup { keys } | Request::JoinProbe { keys } => keys,
            Request::RangeScan { .. } => &[],
        }
    }
}

/// What kind of response a request assembles into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RequestKind {
    Lookup { key: u64 },
    MultiLookup,
    JoinProbe,
    RangeScan { limit: usize },
}

/// A completed probe response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Every payload stored under the looked-up key.
    Lookup {
        /// The probed key.
        key: u64,
        /// All payloads found (empty on a miss).
        payloads: Vec<u64>,
    },
    /// `(key, payload)` matches for a [`Request::MultiLookup`],
    /// unordered.
    MultiLookup {
        /// All `(probe key, payload)` matches.
        matches: Vec<(u64, u64)>,
    },
    /// `(probe row, payload)` pairs for a [`Request::JoinProbe`],
    /// unordered.
    JoinProbe {
        /// All `(outer row index, payload)` join pairs.
        pairs: Vec<(u64, u64)>,
    },
    /// The merged reply to a [`Request::RangeScan`]: per-shard result
    /// streams gathered back into one ascending key order (duplicates in
    /// build order), truncated to the request's `limit`.
    RangeScan {
        /// `(key, payload)` entries in ascending key order.
        entries: Vec<(u64, u64)>,
    },
}

impl Response {
    /// Number of matches the response carries, regardless of variant
    /// (payloads for a `Lookup`, pairs otherwise) — misses contribute
    /// zero.
    #[must_use]
    pub fn match_count(&self) -> usize {
        match self {
            Response::Lookup { payloads, .. } => payloads.len(),
            Response::MultiLookup { matches } => matches.len(),
            Response::JoinProbe { pairs } => pairs.len(),
            Response::RangeScan { entries } => entries.len(),
        }
    }
}

/// One match as routed internally: `(probe row, key, payload)`.
pub(crate) type RoutedMatch = (u32, u64, u64);

pub(crate) struct PendingInner {
    pub(crate) parts_left: usize,
    pub(crate) items: Vec<RoutedMatch>,
    pub(crate) kind: RequestKind,
    pub(crate) submitted: Instant,
    pub(crate) done: bool,
}

/// Shared completion state for one in-flight request: workers complete
/// shard-parts; the client blocks in [`PendingResponse::wait`].
pub(crate) struct ResponseState {
    pub(crate) inner: Mutex<PendingInner>,
    pub(crate) ready: Condvar,
}

impl ResponseState {
    pub(crate) fn new(kind: RequestKind, parts: usize) -> ResponseState {
        ResponseState {
            inner: Mutex::new(PendingInner {
                parts_left: parts,
                items: Vec::new(),
                kind,
                submitted: Instant::now(),
                done: parts == 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Called by a shard worker when this request's slice of a batch has
    /// fully drained. Returns the request's completion latency when this
    /// was the final outstanding part.
    pub(crate) fn complete_part(&self, items: &[RoutedMatch]) -> Option<std::time::Duration> {
        let mut inner = self.inner.lock().expect("pending lock");
        inner.items.extend_from_slice(items);
        inner.parts_left -= 1;
        if inner.parts_left == 0 {
            inner.done = true;
            let latency = inner.submitted.elapsed();
            self.ready.notify_all();
            Some(latency)
        } else {
            None
        }
    }
}

/// A handle to a submitted request; [`wait`](PendingResponse::wait)
/// blocks until every shard involved has answered.
pub struct PendingResponse {
    pub(crate) state: Arc<ResponseState>,
}

impl PendingResponse {
    /// Blocks until the request completes and assembles its response.
    #[must_use]
    pub fn wait(self) -> Response {
        let mut inner = self.state.inner.lock().expect("pending lock");
        while !inner.done {
            inner = self.state.ready.wait(inner).expect("pending wait");
        }
        Self::assemble(&mut inner)
    }

    /// Like [`wait`](PendingResponse::wait), but gives up after
    /// `timeout`, returning the handle back so the caller can retry —
    /// an escape hatch for supervisors that must not hang if a worker
    /// died mid-request.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the deadline passes first.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<Response, PendingResponse> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.state.inner.lock().expect("pending lock");
        while !inner.done {
            let now = Instant::now();
            if now >= deadline {
                drop(inner);
                return Err(self);
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(inner, deadline - now)
                .expect("pending wait");
            inner = guard;
        }
        let response = Self::assemble(&mut inner);
        drop(inner);
        Ok(response)
    }

    fn assemble(inner: &mut PendingInner) -> Response {
        let items = std::mem::take(&mut inner.items);
        match inner.kind {
            RequestKind::Lookup { key } => Response::Lookup {
                key,
                payloads: items.into_iter().map(|(_, _, payload)| payload).collect(),
            },
            RequestKind::MultiLookup => Response::MultiLookup {
                matches: items
                    .into_iter()
                    .map(|(_, key, payload)| (key, payload))
                    .collect(),
            },
            RequestKind::JoinProbe => Response::JoinProbe {
                pairs: items
                    .into_iter()
                    .map(|(row, _, payload)| (u64::from(row), payload))
                    .collect(),
            },
            RequestKind::RangeScan { limit } => {
                // Shard parts arrive in completion order, but each part
                // is already key-ordered and the parts' key ranges are
                // disjoint and ascending in scatter-rank order (range
                // partitioning), so bucketing by rank and concatenating
                // restores the global scan order in O(n) — no sort on
                // the gather path. The per-shard walkers each honoured
                // `limit` locally; the global truncation happens here,
                // at the seam.
                let mut buckets: Vec<Vec<(u64, u64)>> = Vec::new();
                for (rank, key, payload) in items {
                    let rank = rank as usize;
                    if rank >= buckets.len() {
                        buckets.resize_with(rank + 1, Vec::new);
                    }
                    buckets[rank].push((key, payload));
                }
                let mut entries: Vec<(u64, u64)> = buckets.into_iter().flatten().collect();
                entries.truncate(limit);
                Response::RangeScan { entries }
            }
        }
    }

    /// Whether the response is already complete (non-blocking).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.state.inner.lock().expect("pending lock").done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_keys_views() {
        assert_eq!(Request::Lookup { key: 9 }.keys(), &[9]);
        assert_eq!(Request::MultiLookup { keys: vec![1, 2] }.keys(), &[1, 2]);
        assert_eq!(Request::JoinProbe { keys: vec![3] }.keys(), &[3]);
        let scan = Request::RangeScan {
            lo: 1,
            hi: 5,
            limit: 10,
        };
        assert_eq!(scan.keys(), &[] as &[u64]);
    }

    #[test]
    fn range_scan_parts_merge_in_key_order_with_limit() {
        let state = Arc::new(ResponseState::new(RequestKind::RangeScan { limit: 5 }, 3));
        // Parts complete out of shard order; each part is key-ordered
        // with a disjoint key range. Duplicates (key 20) sit in one part.
        state.complete_part(&[(1, 20, 1), (1, 20, 2), (1, 25, 0)]);
        state.complete_part(&[(2, 30, 9), (2, 31, 9)]);
        state.complete_part(&[(0, 10, 7), (0, 11, 8)]);
        match (PendingResponse { state }).wait() {
            Response::RangeScan { entries } => {
                assert_eq!(
                    entries,
                    vec![(10, 7), (11, 8), (20, 1), (20, 2), (25, 0)],
                    "key order restored, duplicate order kept, limit cut at seam"
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn completion_assembles_lookup() {
        let state = Arc::new(ResponseState::new(RequestKind::Lookup { key: 5 }, 2));
        assert!(state.complete_part(&[(0, 5, 50)]).is_none());
        let latency = state.complete_part(&[(0, 5, 51)]);
        assert!(latency.is_some(), "last part yields the latency");
        let resp = PendingResponse { state }.wait();
        match resp {
            Response::Lookup { key, mut payloads } => {
                payloads.sort_unstable();
                assert_eq!((key, payloads), (5, vec![50, 51]));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn join_rows_survive_routing() {
        let state = Arc::new(ResponseState::new(RequestKind::JoinProbe, 1));
        state.complete_part(&[(7, 100, 1), (2, 100, 1)]);
        match (PendingResponse { state }).wait() {
            Response::JoinProbe { mut pairs } => {
                pairs.sort_unstable();
                assert_eq!(pairs, vec![(2, 1), (7, 1)]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn wait_timeout_returns_handle_then_response() {
        let state = Arc::new(ResponseState::new(RequestKind::MultiLookup, 1));
        let pending = PendingResponse {
            state: Arc::clone(&state),
        };
        let pending = pending
            .wait_timeout(std::time::Duration::from_millis(10))
            .expect_err("not complete yet");
        state.complete_part(&[(0, 1, 2)]);
        match pending.wait_timeout(std::time::Duration::from_secs(5)) {
            Ok(Response::MultiLookup { matches }) => assert_eq!(matches, vec![(1, 2)]),
            other => panic!("unexpected: {:?}", other.map_err(|_| "timeout")),
        }
    }

    #[test]
    fn zero_part_requests_complete_immediately() {
        let state = Arc::new(ResponseState::new(RequestKind::MultiLookup, 0));
        let pending = PendingResponse { state };
        assert!(pending.is_ready());
        assert_eq!(pending.wait(), Response::MultiLookup { matches: vec![] });
    }
}
