//! The shard workers: one thread per shard, draining a bounded queue
//! into batches and driving a resumable walker over them — software
//! "four walkers behind one dispatcher", where the dispatcher is the
//! shard router and the walker count is the in-flight depth.
//!
//! Two worker flavours share the batching skeleton: *point* workers
//! drive an [`AmacWalker`] over a hash shard, *range* workers drive a
//! [`BTreeRangeWalker`] over an ordered (B+-tree) shard, keeping several
//! resumable scan cursors in flight per batch.
//!
//! Workers own no private counters: everything is published straight
//! into the worker's lock-free [`WorkerCell`] (plus the shared
//! [`StageTimes`] seam) as batches complete, so a live scrape sees the
//! same numbers a shutdown join would.
//!
//! # Writes and epochs
//!
//! The serving tier is mutable: each worker is the *sole writer* for
//! its shard. Walker batches run under the shard's read guard with an
//! epoch pinned; [`Job::Write`] batches are applied under the write
//! guard at batch barriers (never mid-batch), then the worker advances
//! the epoch and reclaims nodes the mutations retired. The shard lock
//! is structurally uncontended — its job is memory-model visibility,
//! not writer arbitration — and the epoch pin is what keeps resumable
//! cursor state (leaf hints held *across* batches by the soft tier)
//! safe to validate against retired-but-unreclaimed nodes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use widx_db::epoch::EpochDomain;
use widx_obs::{FlushKind, ProfCell, Stage, StageTimes, ThreadProfiler, TraceStage, WorkerCell};
use widx_soft::{AmacWalker, BTreeRangeWalker, ScanRange};

use crate::batch::{BatchPolicy, FlushReason};
use crate::ordered::OrderedShardedIndex;
use crate::queue::{Job, ShardQueue};
use crate::request::{ResponseState, RoutedMatch, WriteOp};
use crate::shard::ShardedIndex;

/// Everything a point-probe worker thread needs.
pub(crate) struct WorkerContext {
    pub(crate) shard: usize,
    pub(crate) queue: Arc<ShardQueue>,
    pub(crate) sharded: Arc<ShardedIndex>,
    pub(crate) policy: BatchPolicy,
    pub(crate) inflight: usize,
    /// This worker's registry cell — the single home of its counters.
    pub(crate) cell: Arc<WorkerCell>,
    /// The service-wide stage-timing seam.
    pub(crate) stages: Arc<StageTimes>,
    /// Hardware-profiling cell, when the service enabled profiling: the
    /// worker opens a per-thread counter group and publishes stage
    /// windows here.
    pub(crate) prof: Option<Arc<ProfCell>>,
    /// The service-wide reclamation domain: pinned per walker batch,
    /// advanced (and reclaimed against) after write barriers.
    pub(crate) domain: Arc<EpochDomain>,
}

/// Everything a range-scan worker thread needs.
pub(crate) struct RangeWorkerContext {
    pub(crate) shard: usize,
    pub(crate) queue: Arc<ShardQueue>,
    pub(crate) ordered: Arc<OrderedShardedIndex>,
    pub(crate) policy: BatchPolicy,
    pub(crate) inflight: usize,
    /// Entries per chunk pushed to the seam on streaming scans.
    pub(crate) stream_chunk: usize,
    /// This worker's registry cell — the single home of its counters.
    pub(crate) cell: Arc<WorkerCell>,
    /// The service-wide stage-timing seam.
    pub(crate) stages: Arc<StageTimes>,
    /// Hardware-profiling cell, when the service enabled profiling.
    pub(crate) prof: Option<Arc<ProfCell>>,
    /// The service-wide reclamation domain (see [`WorkerContext`]).
    pub(crate) domain: Arc<EpochDomain>,
}

/// A write part stashed mid-batch, applied at the next batch barrier.
pub(crate) struct WriteJob {
    ops: Vec<(u32, WriteOp)>,
    ack: bool,
    reply: Arc<ResponseState>,
}

/// Anything a write barrier can mutate: both index flavours expose the
/// same insert/delete/update/reclaim surface, so one barrier routine
/// serves both worker kinds.
trait WriteTarget {
    fn apply(&mut self, op: WriteOp) -> bool;
    fn reclaim_retired(&mut self) -> usize;
}

impl WriteTarget for widx_db::index::HashIndex {
    fn apply(&mut self, op: WriteOp) -> bool {
        match op {
            WriteOp::Insert { key, payload } => {
                self.insert(key, payload);
                true
            }
            WriteOp::Delete { key } => self.delete(key) > 0,
            WriteOp::Update { key, payload } => self.update(key, payload),
        }
    }

    fn reclaim_retired(&mut self) -> usize {
        self.reclaim()
    }
}

impl WriteTarget for widx_db::index::BTreeIndex {
    fn apply(&mut self, op: WriteOp) -> bool {
        match op {
            WriteOp::Insert { key, payload } => {
                self.insert(key, payload);
                true
            }
            WriteOp::Delete { key } => self.delete(key) > 0,
            WriteOp::Update { key, payload } => self.update(key, payload),
        }
    }

    fn reclaim_retired(&mut self) -> usize {
        self.reclaim()
    }
}

/// Applies stashed write parts under the caller's write guard — the
/// batch barrier. Per part: apply every op, publish the write counters
/// *before* completing the part (a caller whose `wait()` returned must
/// find the write counted by a `live_stats()` scrape), ack `(op, key,
/// applied)` rows when this tier is authoritative. Then advance the
/// epoch and reclaim — the nodes these mutations retired become safe
/// one advance later, so a quiescent service always drains its retired
/// list on the final barrier.
fn apply_write_barrier<T: WriteTarget>(
    shard: usize,
    target: &mut T,
    jobs: Vec<WriteJob>,
    domain: &EpochDomain,
    cell: &WorkerCell,
    stages: &StageTimes,
    prof: &mut ThreadProfiler,
) {
    debug_assert!(!jobs.is_empty(), "empty write barrier");
    let mark = prof.mark();
    let barrier_from = Instant::now();
    for job in jobs {
        cell.add_jobs(1);
        stages.record(Stage::QueueWait, job.reply.since_submit());
        let opened = Instant::now();
        let mut items: Vec<RoutedMatch> = Vec::new();
        let total = job.ops.len() as u64;
        let mut applied_total = 0u64;
        for (op_idx, op) in job.ops {
            let key = op.key();
            let applied = target.apply(op);
            applied_total += u64::from(applied);
            if job.ack {
                items.push((op_idx, key, u64::from(applied)));
            }
        }
        let took = opened.elapsed();
        stages.record(Stage::Write, took);
        cell.add_write_batch(total, applied_total);
        if job.ack {
            cell.add_matches(applied_total);
        }
        if job.reply.is_traced() {
            job.reply.trace_annotate(|trace, submitted| {
                trace.add_shard(shard as u32);
                trace.span_between(TraceStage::QueueWait, submitted, opened);
                trace.span_for(TraceStage::Write, opened, took);
            });
        }
        job.reply.complete_part(&items, Some(cell));
    }
    // The barrier's mutations retired nodes at the *current* epoch;
    // advance so they stamp strictly below every future pin, then
    // reclaim whatever is already safe (pinned cursors elsewhere keep
    // their epoch's garbage alive until they unpin).
    domain.advance();
    let _ = target.reclaim_retired();
    cell.add_busy(barrier_from.elapsed());
    prof.record(Stage::Write, mark);
}

/// Opens the worker's per-thread counter group when profiling is on.
/// Must run on the worker thread itself — the group binds to the
/// calling thread.
fn attach_profiler(prof: &Option<Arc<ProfCell>>) -> ThreadProfiler {
    match prof {
        Some(cell) => ThreadProfiler::attach(Arc::clone(cell)),
        None => ThreadProfiler::disabled(),
    }
}

fn flush_kind(reason: FlushReason) -> FlushKind {
    match reason {
        FlushReason::Size => FlushKind::Size,
        FlushReason::Deadline => FlushKind::Deadline,
        FlushReason::Shutdown => FlushKind::Shutdown,
    }
}

/// A request shard-part participating in the worker's open batch.
struct OpenJob {
    reply: Arc<ResponseState>,
    items: Vec<RoutedMatch>,
    /// When this part was admitted into the batch (trace span seam).
    admitted: Instant,
}

/// A scan shard-part participating in a range worker's open batch.
/// Streaming parts push chunks to the seam as their cursors yield;
/// buffered parts accumulate `items` like point jobs do.
struct OpenScan {
    reply: Arc<ResponseState>,
    streaming: bool,
    items: Vec<RoutedMatch>,
    /// When this part was admitted into the batch (trace span seam).
    admitted: Instant,
    /// Scatter ranks of this part's cursors (streaming completion is
    /// per rank).
    ranks: Vec<u32>,
    /// Entries emitted for this part, streamed chunks included.
    emitted: u64,
}

/// Routes one walker emission to its request: buffered parts
/// accumulate, streaming parts build a chunk and push it to the gather
/// seam every `chunk_size` entries — this mid-batch flush is what makes
/// a long scan's first entries reach the client while the walker ring
/// is still running.
fn attribute_scan(
    meta: &[(u32, u32)],
    open: &mut [OpenScan],
    chunks: &mut [Vec<(u64, u64)>],
    chunk_size: usize,
    tag: u32,
    key: u64,
    payload: u64,
) {
    let (open_idx, rank) = meta[tag as usize];
    let job = &mut open[open_idx as usize];
    job.emitted += 1;
    if job.streaming {
        let buf = &mut chunks[tag as usize];
        buf.push((key, payload));
        if buf.len() >= chunk_size {
            // The seam hands back a consumed chunk's buffer when it has
            // one: a long scan settles into a closed loop of recycled
            // allocations instead of one fresh `Vec` per chunk.
            if let Some(spare) = job.reply.push_chunk(rank, std::mem::take(buf)) {
                *buf = spare;
            }
        }
    } else {
        job.items.push((rank, key, payload));
    }
}

/// The worker thread body: loops batches until the poison pill,
/// publishing every counter into the worker's registry cell as it goes
/// — shutdown needs no hand-back, a final registry snapshot sees
/// everything.
pub(crate) fn run_worker(ctx: &WorkerContext) {
    let mut prof = attach_profiler(&ctx.prof);
    let epoch = ctx.domain.register();

    loop {
        // Wait (idle) for the batch-opening job. The profiling window
        // lands in queue-wait: a blocked thread accrues almost no
        // cycles, so this column stays near zero unless the worker is
        // spinning.
        let idle_from = Instant::now();
        let mark = prof.mark();
        let first = ctx.queue.pop();
        prof.record(Stage::QueueWait, mark);
        ctx.cell.add_idle(idle_from.elapsed());

        let (entries, reply) = match first {
            Job::Probe { entries, reply } => (entries, reply),
            Job::Scan { .. } => unreachable!("scan job routed to a point-probe queue"),
            Job::Write { ops, ack, reply } => {
                // A write opening a batch is its own barrier: apply it
                // immediately under the write guard (nothing is reading
                // — this worker is the shard's only writer and its only
                // walker driver).
                let jobs = vec![WriteJob { ops, ack, reply }];
                let mut guard = ctx.sharded.write(ctx.shard);
                apply_write_barrier(
                    ctx.shard,
                    &mut *guard,
                    jobs,
                    &ctx.domain,
                    &ctx.cell,
                    &ctx.stages,
                    &mut prof,
                );
                continue;
            }
            Job::Poison { key } => {
                debug_assert_eq!(key, widx_core::POISON_KEY);
                break; // Poison with an empty batch: halt immediately.
            }
        };

        // Walker batch: pin an epoch and hold the shard's read guard
        // for the batch's whole lifetime, so nothing mutates (or
        // reclaims) under the in-flight AMAC ring. The walker is
        // rebuilt per batch — it borrows the guard.
        let mut writes: Vec<WriteJob> = Vec::new();
        let shutdown = {
            let _pin = epoch.pin();
            let guard = ctx.sharded.read(ctx.shard);
            let mut walker = AmacWalker::new(&guard, ctx.inflight);
            run_batch(
                ctx.shard,
                &ctx.queue,
                &ctx.policy,
                &mut walker,
                entries,
                reply,
                &mut writes,
                &ctx.cell,
                &ctx.stages,
                &mut prof,
            )
        };
        // Batch barrier: the read guard is gone; apply every write the
        // batch loop stashed (shutdown included — queued writes always
        // land before the final snapshot).
        if !writes.is_empty() {
            let mut guard = ctx.sharded.write(ctx.shard);
            apply_write_barrier(
                ctx.shard,
                &mut *guard,
                writes,
                &ctx.domain,
                &ctx.cell,
                &ctx.stages,
                &mut prof,
            );
        }
        if shutdown {
            break;
        }
    }
}

/// Assembles and drains one batch starting from `first_*`. Returns true
/// when the poison pill arrived and the worker must halt after this
/// batch.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_batch(
    shard: usize,
    queue: &ShardQueue,
    policy: &BatchPolicy,
    walker: &mut AmacWalker<'_>,
    first_entries: Vec<(u32, u64)>,
    first_reply: Arc<ResponseState>,
    writes: &mut Vec<WriteJob>,
    cell: &WorkerCell,
    stages: &StageTimes,
    prof: &mut ThreadProfiler,
) -> bool {
    let opened = Instant::now();
    // tag (u32, index into `meta`) → (open-job index, probe row).
    let mut meta: Vec<(u32, u32)> = Vec::new();
    let mut open: Vec<OpenJob> = Vec::new();
    let mut raw: Vec<(u32, u64, u64)> = Vec::new();
    let mut busy = Duration::ZERO;
    let mut shutdown = false;

    let admit = |entries: Vec<(u32, u64)>,
                 reply: Arc<ResponseState>,
                 meta: &mut Vec<(u32, u32)>,
                 open: &mut Vec<OpenJob>,
                 raw: &mut Vec<(u32, u64, u64)>,
                 walker: &mut AmacWalker<'_>,
                 busy: &mut Duration,
                 prof: &mut ThreadProfiler| {
        cell.add_jobs(1);
        stages.record(Stage::QueueWait, reply.since_submit());
        if entries.is_empty() {
            // Defensive: never strand a zero-key part.
            reply.complete_part(&[], Some(cell));
            return;
        }
        let open_idx = open.len() as u32;
        open.push(OpenJob {
            reply,
            items: Vec::new(),
            admitted: Instant::now(),
        });
        let busy_from = Instant::now();
        let mark = prof.mark();
        for (row, key) in entries {
            let tag = u32::try_from(meta.len()).expect("batch exceeds u32 tags");
            meta.push((open_idx, row));
            walker.feed(tag, key, &mut |t, k, p| raw.push((t, k, p)));
        }
        prof.record(Stage::Walk, mark);
        *busy += busy_from.elapsed();
    };

    admit(
        first_entries,
        first_reply,
        &mut meta,
        &mut open,
        &mut raw,
        walker,
        &mut busy,
        prof,
    );

    // Keep admitting until the policy closes the batch.
    let reason = loop {
        if let Some(reason) = policy.flush_due(meta.len(), opened) {
            break reason;
        }
        let idle_from = Instant::now();
        let mark = prof.mark();
        let next = queue.pop_until(policy.flush_deadline(opened));
        prof.record(Stage::BatchWait, mark);
        cell.add_idle(idle_from.elapsed());
        match next {
            Some(Job::Probe { entries, reply }) => {
                admit(
                    entries, reply, &mut meta, &mut open, &mut raw, walker, &mut busy, prof,
                );
            }
            Some(Job::Scan { .. }) => unreachable!("scan job routed to a point-probe queue"),
            Some(Job::Write { ops, ack, reply }) => {
                // Writes never interleave into an open walker batch:
                // stash for the barrier right after this batch closes.
                writes.push(WriteJob { ops, ack, reply });
            }
            Some(Job::Poison { .. }) => {
                shutdown = true;
                break FlushReason::Shutdown;
            }
            None => break FlushReason::Deadline,
        }
    };
    stages.record(Stage::BatchWait, opened.elapsed());

    // Drain every in-flight probe, then attribute matches to requests.
    let busy_from = Instant::now();
    let mark = prof.mark();
    walker.drain(&mut |t, k, p| raw.push((t, k, p)));
    prof.record(Stage::Walk, mark);
    busy += busy_from.elapsed();

    for (tag, key, payload) in raw.drain(..) {
        let (open_idx, row) = meta[tag as usize];
        open[open_idx as usize].items.push((row, key, payload));
    }
    cell.add_batch(meta.len() as u64, flush_kind(reason));
    cell.add_busy(busy);
    stages.record(Stage::Walk, busy);
    let batch_done = Instant::now();
    let walk_counters = walker.take_counters();
    prof.add_walk(&walk_counters);
    let gather_mark = prof.mark();
    for job in &open {
        cell.add_matches(job.items.len() as u64);
        if job.reply.is_traced() {
            job.reply.trace_annotate(|trace, submitted| {
                trace.add_shard(shard as u32);
                trace.span_between(TraceStage::QueueWait, submitted, job.admitted);
                trace.span_between(TraceStage::BatchWait, job.admitted, batch_done);
                trace.span_for(TraceStage::Walk, opened, busy);
                trace.add_walk(&walk_counters);
            });
        }
        job.reply.complete_part(&job.items, Some(cell));
    }
    prof.record(Stage::Gather, gather_mark);
    shutdown
}

/// The range-worker thread body: identical drain-batches-until-poison
/// loop, but the walker is a ring of resumable B+-tree scan cursors
/// over this worker's ordered shard.
pub(crate) fn run_range_worker(ctx: &RangeWorkerContext) {
    let mut prof = attach_profiler(&ctx.prof);
    let epoch = ctx.domain.register();

    loop {
        let idle_from = Instant::now();
        let mark = prof.mark();
        let first = ctx.queue.pop();
        prof.record(Stage::QueueWait, mark);
        ctx.cell.add_idle(idle_from.elapsed());

        let (scans, reply) = match first {
            Job::Scan { scans, reply } => (scans, reply),
            Job::Probe { .. } => unreachable!("probe job routed to a range queue"),
            Job::Write { ops, ack, reply } => {
                let jobs = vec![WriteJob { ops, ack, reply }];
                let mut guard = ctx.ordered.write(ctx.shard);
                apply_write_barrier(
                    ctx.shard,
                    &mut *guard,
                    jobs,
                    &ctx.domain,
                    &ctx.cell,
                    &ctx.stages,
                    &mut prof,
                );
                continue;
            }
            Job::Poison { key } => {
                debug_assert_eq!(key, widx_core::POISON_KEY);
                break;
            }
        };

        let mut writes: Vec<WriteJob> = Vec::new();
        let shutdown = {
            let _pin = epoch.pin();
            let guard = ctx.ordered.read(ctx.shard);
            let mut walker = BTreeRangeWalker::new(&guard, ctx.inflight);
            run_range_batch(
                ctx.shard,
                &ctx.queue,
                &ctx.policy,
                &mut walker,
                scans,
                reply,
                &mut writes,
                ctx.stream_chunk,
                &ctx.cell,
                &ctx.stages,
                &mut prof,
            )
        };
        if !writes.is_empty() {
            let mut guard = ctx.ordered.write(ctx.shard);
            apply_write_barrier(
                ctx.shard,
                &mut *guard,
                writes,
                &ctx.domain,
                &ctx.cell,
                &ctx.stages,
                &mut prof,
            );
        }
        if shutdown {
            break;
        }
    }
}

/// Assembles and drains one batch of scan cursors. Emissions are
/// attributed to their request *as they happen* (not at batch close),
/// so streaming parts can flush chunks to the gather seam while other
/// cursors in the ring are still descending. Returns true when the
/// poison pill arrived and the worker must halt after this batch.
#[allow(clippy::too_many_arguments)]
fn run_range_batch(
    shard: usize,
    queue: &ShardQueue,
    policy: &BatchPolicy,
    walker: &mut BTreeRangeWalker<'_>,
    first_scans: Vec<(u32, ScanRange)>,
    first_reply: Arc<ResponseState>,
    writes: &mut Vec<WriteJob>,
    chunk_size: usize,
    cell: &WorkerCell,
    stages: &StageTimes,
    prof: &mut ThreadProfiler,
) -> bool {
    let opened = Instant::now();
    // tag (index into `meta`) → (open-job index, scatter rank).
    let mut meta: Vec<(u32, u32)> = Vec::new();
    let mut open: Vec<OpenScan> = Vec::new();
    // tag → the streaming chunk being built (unused by buffered tags).
    let mut chunks: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut busy = Duration::ZERO;
    let mut shutdown = false;

    let admit = |scans: Vec<(u32, ScanRange)>,
                 reply: Arc<ResponseState>,
                 meta: &mut Vec<(u32, u32)>,
                 open: &mut Vec<OpenScan>,
                 chunks: &mut Vec<Vec<(u64, u64)>>,
                 walker: &mut BTreeRangeWalker<'_>,
                 busy: &mut Duration,
                 prof: &mut ThreadProfiler| {
        cell.add_jobs(1);
        stages.record(Stage::QueueWait, reply.since_submit());
        if scans.is_empty() {
            // Defensive: never strand a zero-cursor part. (The planner
            // never scatters an empty streaming part.)
            debug_assert!(!reply.is_streaming(), "empty streaming shard-part");
            reply.complete_part(&[], Some(cell));
            return;
        }
        let streaming = reply.is_streaming();
        let open_idx = open.len() as u32;
        open.push(OpenScan {
            reply,
            streaming,
            items: Vec::new(),
            admitted: Instant::now(),
            ranks: Vec::new(),
            emitted: 0,
        });
        let busy_from = Instant::now();
        let mark = prof.mark();
        for (rank, range) in scans {
            let tag = u32::try_from(meta.len()).expect("batch exceeds u32 tags");
            meta.push((open_idx, rank));
            chunks.push(Vec::new());
            open[open_idx as usize].ranks.push(rank);
            walker.feed(tag, range, &mut |t, k, p| {
                attribute_scan(meta, open, chunks, chunk_size, t, k, p);
            });
        }
        prof.record(Stage::Walk, mark);
        *busy += busy_from.elapsed();
    };

    admit(
        first_scans,
        first_reply,
        &mut meta,
        &mut open,
        &mut chunks,
        walker,
        &mut busy,
        prof,
    );

    let reason = loop {
        if let Some(reason) = policy.flush_due(meta.len(), opened) {
            break reason;
        }
        let idle_from = Instant::now();
        let mark = prof.mark();
        let next = queue.pop_until(policy.flush_deadline(opened));
        prof.record(Stage::BatchWait, mark);
        cell.add_idle(idle_from.elapsed());
        match next {
            Some(Job::Scan { scans, reply }) => {
                admit(
                    scans,
                    reply,
                    &mut meta,
                    &mut open,
                    &mut chunks,
                    walker,
                    &mut busy,
                    prof,
                );
            }
            Some(Job::Probe { .. }) => unreachable!("probe job routed to a range queue"),
            Some(Job::Write { ops, ack, reply }) => {
                writes.push(WriteJob { ops, ack, reply });
            }
            Some(Job::Poison { .. }) => {
                shutdown = true;
                break FlushReason::Shutdown;
            }
            None => break FlushReason::Deadline,
        }
    };
    stages.record(Stage::BatchWait, opened.elapsed());

    // Drain the ring: emissions attribute inline, in emit order, so
    // each tag's slice (and chunk sequence) stays key-ordered — the
    // invariant the gather side's rank-ordered release relies on.
    let busy_from = Instant::now();
    let mark = prof.mark();
    walker.drain(&mut |t, k, p| {
        attribute_scan(&meta, &mut open, &mut chunks, chunk_size, t, k, p);
    });
    prof.record(Stage::Walk, mark);
    busy += busy_from.elapsed();

    // Flush every streaming tag's tail chunk, then complete the parts.
    for (tag, buf) in chunks.iter_mut().enumerate() {
        if !buf.is_empty() {
            let (open_idx, rank) = meta[tag];
            let job = &open[open_idx as usize];
            debug_assert!(job.streaming, "tail chunk on a buffered part");
            let _ = job.reply.push_chunk(rank, std::mem::take(buf));
        }
    }
    cell.add_batch(meta.len() as u64, flush_kind(reason));
    cell.add_busy(busy);
    stages.record(Stage::Walk, busy);
    let batch_done = Instant::now();
    let walk_counters = walker.take_counters();
    prof.add_walk(&walk_counters);
    let gather_mark = prof.mark();
    for job in &open {
        cell.add_matches(job.emitted);
        if job.reply.is_traced() {
            job.reply.trace_annotate(|trace, submitted| {
                trace.add_shard(shard as u32);
                trace.span_between(TraceStage::QueueWait, submitted, job.admitted);
                trace.span_between(TraceStage::BatchWait, job.admitted, batch_done);
                trace.span_for(TraceStage::Walk, opened, busy);
                trace.add_walk(&walk_counters);
            });
        }
        if job.streaming {
            for rank in &job.ranks {
                job.reply.complete_stream_part(*rank, Some(cell));
            }
        } else {
            job.reply.complete_part(&job.items, Some(cell));
        }
    }
    prof.record(Stage::Gather, gather_mark);
    shutdown
}
