//! Property tests for the streaming reply subsystem: a chunked
//! [`range_stream`](ProbeService::range_stream) must concatenate to
//! *exactly* the buffered `RangeScan` reply — same entries, same order
//! — for arbitrary shard counts, fanouts, chunk sizes, directions
//! (ascending and `ORDER BY key DESC`), duplicate-heavy key streams,
//! and limits landing at shard seams; accepted streams must survive
//! shutdown arriving mid-stream; and the completion-wakeup hook must
//! fire often enough that a waker-driven consumer never stalls.

use std::time::Duration;

use proptest::prelude::*;
use widx_db::hash::HashRecipe;
use widx_db::index::BTreeIndex;
use widx_serve::{ProbeService, ServeConfig, StreamPoll, SubmitError};

/// Serial oracle: one unsharded B+-tree over everything, scanned in the
/// requested direction. Its fanout is fixed and deliberately different
/// from the served tier's.
fn oracle(pairs: &[(u64, u64)], lo: u64, hi: u64, limit: usize, desc: bool) -> Vec<(u64, u64)> {
    let tree = BTreeIndex::build(7, pairs.iter().copied());
    if desc {
        tree.range_scan_desc(lo, hi, limit)
    } else {
        tree.range_scan(lo, hi, limit)
    }
}

fn config(shards: usize, fanout: usize, chunk: usize) -> ServeConfig {
    ServeConfig::default()
        .with_shards(shards)
        .with_fanout(fanout)
        .with_stream_chunk(chunk)
        .with_batch_size(8)
        .with_batch_deadline(Duration::from_micros(100))
}

/// `(lo, hi)` pairs biased toward interesting shapes: ordered spans,
/// single keys, and inverted (empty) ranges.
fn range_strategy(keyspace: u64) -> impl Strategy<Value = (u64, u64)> {
    prop_oneof![
        (0..keyspace).prop_flat_map(move |lo| (Just(lo), lo..keyspace)),
        (0..keyspace).prop_map(|k| (k, k)),
        (0..keyspace)
            .prop_flat_map(move |hi| (hi..keyspace, Just(hi)))
            .prop_filter("inverted only", |(lo, hi)| lo > hi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The acceptance property: chunk concatenation equals the
    /// buffered reply (which itself equals the serial oracle), forward
    /// and reverse, with every chunk non-empty and within the
    /// configured chunk size.
    #[test]
    fn stream_concatenation_equals_buffered_reply(
        pairs in prop::collection::vec((0u64..150, any::<u64>()), 0..400),
        scans in prop::collection::vec(
            (range_strategy(170), prop_oneof![
                (0usize..60).boxed(),
                Just(usize::MAX).boxed(),
            ], any::<bool>()),
            1..25,
        ),
        shards in 1usize..6,
        fanout in 2usize..10,
        chunk in 1usize..40,
    ) {
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, fanout, chunk),
        );
        // Pipeline every stream before draining any (cross-request
        // batching in the workers, interleaved chunk release).
        let streams: Vec<_> = scans
            .iter()
            .map(|((lo, hi), limit, desc)| {
                service.range_stream(*lo, *hi, *limit, *desc).unwrap()
            })
            .collect();
        for (((lo, hi), limit, desc), mut stream) in scans.iter().zip(streams) {
            let mut got = Vec::new();
            while let Some(piece) = stream.next_chunk() {
                prop_assert!(!piece.is_empty(), "no empty chunks");
                prop_assert!(piece.len() <= chunk, "chunk over stream_chunk");
                got.extend(piece);
            }
            let buffered = if *desc {
                service.range_scan_desc(*lo, *hi, *limit).unwrap()
            } else {
                service.range_scan(*lo, *hi, *limit).unwrap()
            };
            prop_assert_eq!(
                &got, &buffered,
                "stream != buffered for [{}, {}] limit {} desc {}",
                lo, hi, limit, desc
            );
            prop_assert_eq!(
                &buffered,
                &oracle(&pairs, *lo, *hi, *limit, *desc),
                "buffered != oracle for [{}, {}] limit {} desc {}",
                lo, hi, limit, desc
            );
        }
        let _ = service.shutdown();
    }

    /// Shutdown mid-stream drops nothing: every stream accepted before
    /// `stop` still yields its complete, oracle-equal chunk sequence
    /// (drain-then-halt), and later stream submissions fail cleanly.
    #[test]
    fn shutdown_mid_stream_drops_no_accepted_chunk(
        pairs in prop::collection::vec((0u64..80, any::<u64>()), 0..250),
        scans in prop::collection::vec((range_strategy(100), any::<bool>()), 1..30),
        shards in 1usize..5,
        chunk in 1usize..24,
    ) {
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, 4, chunk),
        );
        let streams: Vec<_> = scans
            .iter()
            .map(|((lo, hi), desc)| {
                service.range_stream(*lo, *hi, usize::MAX, *desc).unwrap()
            })
            .collect();
        service.stop();
        prop_assert_eq!(
            service.range_stream(0, 1, usize::MAX, false).err(),
            Some(SubmitError::Stopped)
        );
        let _stats = service.shutdown();
        for (((lo, hi), desc), mut stream) in scans.iter().zip(streams) {
            prop_assert_eq!(
                stream.collect_remaining(),
                oracle(&pairs, *lo, *hi, usize::MAX, *desc),
                "accepted stream lost chunks: [{}, {}] desc {}",
                lo, hi, desc
            );
        }
    }

    /// A waker-driven consumer (poll only after a wake, like the net
    /// event loop) sees the identical chunk sequence — the completion
    /// hook fires for every consumable transition.
    #[test]
    fn waker_driven_consumption_loses_nothing(
        entries in 1usize..400,
        dup_every in 1u64..6,
        shards in 1usize..5,
        chunk in 1usize..32,
        desc in any::<bool>(),
    ) {
        use std::sync::Arc;
        use std::sync::atomic::{AtomicU64, Ordering};
        let pairs: Vec<(u64, u64)> = (0..entries as u64)
            .map(|i| (i / dup_every, i))
            .collect();
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, 4, chunk),
        );
        let mut stream = service
            .range_stream(0, u64::MAX, usize::MAX, desc)
            .unwrap();
        let wakes = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&wakes);
        stream.set_waker(move || {
            counter.fetch_add(1, Ordering::Release);
        });
        let mut got = Vec::new();
        let mut seen = 0u64;
        'drain: loop {
            // Wait for a wake before polling — a missed wake would
            // stall this loop forever, so the 5 s bound doubles as the
            // liveness assertion.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                let now = wakes.load(Ordering::Acquire);
                if now != seen {
                    seen = now;
                    break;
                }
                prop_assert!(
                    std::time::Instant::now() < deadline,
                    "waker never fired with chunks outstanding"
                );
                std::thread::yield_now();
            }
            loop {
                match stream.try_next() {
                    StreamPoll::Chunk(piece) => got.extend(piece),
                    StreamPoll::End => break 'drain,
                    StreamPoll::Pending => break,
                }
            }
        }
        prop_assert_eq!(got, oracle(&pairs, 0, u64::MAX, usize::MAX, desc));
        let _ = service.shutdown();
    }

    /// Desc parity through the buffered path: `RangeScan { desc: true }`
    /// equals the reverse oracle at every limit, including seam cuts.
    #[test]
    fn buffered_desc_scans_match_the_reverse_oracle(
        entries in 1usize..300,
        dup_every in 1u64..8,
        shards in 1usize..6,
        fanout in 2usize..8,
    ) {
        let pairs: Vec<(u64, u64)> = (0..entries as u64)
            .map(|i| (i / dup_every, i))
            .collect();
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, fanout, 16),
        );
        let full = service.range_scan_desc(0, u64::MAX, usize::MAX).unwrap();
        prop_assert_eq!(&full, &oracle(&pairs, 0, u64::MAX, usize::MAX, true));
        // Seam-adjacent limits: no shard may over- or under-contribute
        // where the cut crosses a boundary (in reverse shard order).
        let ordered = service.ordered().unwrap();
        let mut limits: Vec<usize> = vec![0, 1, full.len(), full.len() + 5];
        let mut acc = 0usize;
        for shard in (0..ordered.shard_count()).rev() {
            acc += ordered.read(shard).len();
            limits.extend([acc.saturating_sub(1), acc, acc + 1]);
        }
        for limit in limits {
            let got = service.range_scan_desc(0, u64::MAX, limit).unwrap();
            prop_assert_eq!(
                &got,
                &full[..limit.min(full.len())],
                "desc limit {} of {}", limit, full.len()
            );
        }
    }
}

/// First-chunk progress, deterministically: on a long scan the stream
/// hands back its first chunk while later ranks are still scanning —
/// the whole point of the subsystem.
#[test]
fn first_chunk_arrives_before_the_stream_ends() {
    let pairs: Vec<(u64, u64)> = (0..100_000u64).map(|k| (k, k)).collect();
    let service = ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &ServeConfig::default().with_shards(4).with_stream_chunk(128),
    );
    let mut stream = service
        .range_stream(0, u64::MAX, usize::MAX, false)
        .unwrap();
    let first = stream.next().expect("a long scan yields chunks");
    assert_eq!(first.len(), 128, "a full chunk, not the whole reply");
    assert_eq!(first[0], (0, 0));
    // The rest still arrives, complete and ordered.
    let mut got = first;
    got.extend(stream.collect_remaining());
    assert_eq!(got.len(), pairs.len());
    assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    let _ = service.shutdown();
}
