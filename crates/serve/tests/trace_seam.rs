//! Per-request tracing integration tests at the serve tier: the span
//! seam (queue-wait → batch-wait → walk → gather) must cover a sampled
//! request's life, walker MLP counters must be attached, tail sampling
//! must catch slow requests with head sampling off, and an unarmed
//! service must leave the recorder untouched.

use std::time::Duration;

use widx_db::hash::HashRecipe;
use widx_serve::{ProbeService, RequestTrace, ServeConfig, TraceStage};

const ENTRIES: u64 = 8192;

fn build(config: ServeConfig) -> ProbeService {
    ProbeService::build_with_range(
        HashRecipe::robust64(),
        (0..ENTRIES).map(|k| (k, k + 1)),
        &config,
    )
}

fn span_dur(trace: &RequestTrace, stage: TraceStage) -> Option<u64> {
    trace
        .spans
        .iter()
        .filter(|s| s.stage == stage)
        .map(|s| s.dur_ns)
        .max()
}

#[test]
fn head_sampled_requests_carry_the_full_span_seam() {
    let service = build(
        ServeConfig::default()
            .with_shards(2)
            .with_batch_deadline(Duration::from_micros(100))
            .with_trace_sample(1),
    );

    for key in 0..32u64 {
        assert_eq!(service.lookup(key).expect("lookup"), vec![key + 1]);
    }
    let keys: Vec<u64> = (0..64).map(|i| i * 97 % ENTRIES).collect();
    let rows = service.multi_lookup(&keys).expect("multi_lookup");
    assert_eq!(rows.len(), keys.len());
    let entries = service.range_scan(100, 4000, 500).expect("range_scan");
    assert_eq!(entries.len(), 500);

    // A trace commits just *after* the completion wakeup that releases
    // the blocked caller; `flush` waits out every armed trace's commit
    // ticket, so the counts below are exact, not racy lower bounds.
    let recorder = service.flight_recorder();
    recorder.flush();
    let stats = recorder.stats();
    assert_eq!(
        stats.recorded, 34,
        "every request is head-sampled and committed by flush time"
    );
    let traces = recorder.snapshot();
    assert!(!traces.is_empty());

    // Every completed trace must carry the serve-side seam stages and
    // a non-trivial walker counter record, and its spans must fit
    // inside the end-to-end latency.
    for trace in &traces {
        for stage in [
            TraceStage::QueueWait,
            TraceStage::BatchWait,
            TraceStage::Walk,
        ] {
            assert!(
                span_dur(trace, stage).is_some(),
                "{} trace {} missing {} span",
                trace.kind,
                trace.id,
                stage.name()
            );
        }
        assert!(!trace.shards.is_empty(), "no shard recorded");
        assert!(trace.walk.nodes > 0, "walker visited no nodes");
        assert!(trace.walk.rounds > 0, "walker ran no rounds");
        assert!(trace.walk.prefetches > 0, "walker issued no prefetches");
        for span in &trace.spans {
            assert!(
                span.start_ns <= trace.total_ns,
                "span starts after the request completed"
            );
        }
        // Queue-wait begins at (or near) the submit anchor; the walk
        // span must not start before it.
        let queue_start = trace
            .spans
            .iter()
            .find(|s| s.stage == TraceStage::QueueWait)
            .map(|s| s.start_ns)
            .expect("queue span");
        let walk_start = trace
            .spans
            .iter()
            .find(|s| s.stage == TraceStage::Walk)
            .map(|s| s.start_ns)
            .expect("walk span");
        assert!(walk_start >= queue_start, "walk began before queue-wait");
    }

    // A multi-shard request fans its shard set out.
    let multi = traces
        .iter()
        .find(|t| t.kind == "multi_lookup")
        .expect("multi_lookup trace");
    assert!(multi.shards.len() >= 2, "64-key lookup touched one shard");

    let gathered = traces
        .iter()
        .filter(|t| span_dur(t, TraceStage::Gather).is_some())
        .count();
    assert!(gathered >= 1, "no trace recorded a gather span");

    // The Trace opcode payload parses out of the same recorder.
    let json = service.traces_json();
    assert!(json.contains("\"traces\":["));
    assert!(json.contains("\"walk\":"));
    let _ = service.shutdown();
}

#[test]
fn tail_sampling_catches_slow_requests_without_head_sampling() {
    let service = build(
        ServeConfig::default()
            .with_shards(2)
            .with_batch_deadline(Duration::from_micros(100))
            .with_slow_threshold(Some(Duration::from_nanos(1))),
    );
    // Head sampling is off; the 1ns threshold tail-selects everything.
    let entries = service.range_scan(0, ENTRIES, 2000).expect("range_scan");
    assert_eq!(entries.len(), 2000);

    service.flight_recorder().flush();
    let stats = service.flight_recorder().stats();
    assert_eq!(stats.recorded, 1, "the slow request is tail-recorded");
    assert_eq!(stats.slow, stats.recorded, "all records are tail-selected");
    let traces = service.flight_recorder().snapshot();
    assert!(traces.iter().all(|t| t.slow));
    let _ = service.shutdown();
}

#[test]
fn unarmed_service_records_nothing() {
    let service = build(ServeConfig::default().with_shards(2));
    for key in 0..16u64 {
        let _ = service.lookup(key).expect("lookup");
    }
    let _ = service.range_scan(0, 100, 10).expect("scan");
    let stats = service.flight_recorder().stats();
    assert_eq!(stats.recorded, 0);
    assert_eq!(stats.depth, 0);
    assert!(service.flight_recorder().snapshot().is_empty());
    let final_stats = service.shutdown();
    assert_eq!(final_stats.trace.recorded, 0);
}

#[test]
fn recorder_ring_evicts_oldest_and_counts_drops() {
    let service = build(
        ServeConfig::default()
            .with_shards(2)
            .with_trace_sample(1)
            .with_trace_capacity(4),
    );
    for key in 0..32u64 {
        let _ = service.lookup(key).expect("lookup");
    }
    service.flight_recorder().flush();
    let stats = service.flight_recorder().stats();
    assert_eq!(stats.depth, 4, "ring holds exactly its capacity");
    assert_eq!(stats.recorded, 32);
    assert_eq!(stats.dropped, stats.recorded - 4);
    let _ = service.shutdown();
}

#[test]
fn streaming_scans_are_traced_too() {
    let service = build(
        ServeConfig::default()
            .with_shards(2)
            .with_stream_chunk(64)
            .with_trace_sample(1),
    );
    let mut stream = service
        .range_stream(0, ENTRIES, usize::MAX, false)
        .expect("stream");
    let mut total = 0usize;
    while let Some(chunk) = stream.next_chunk() {
        total += chunk.len();
    }
    assert_eq!(total, ENTRIES as usize);
    service.flight_recorder().flush();
    assert_eq!(service.flight_recorder().stats().recorded, 1);
    let traces = service.flight_recorder().snapshot();
    let trace = traces
        .iter()
        .find(|t| t.kind == "range_stream")
        .expect("range_stream trace");
    assert!(trace.walk.nodes > 0);
    assert!(span_dur(trace, TraceStage::Walk).is_some());
    let _ = service.shutdown();
}
