//! Live-telemetry integration tests at the serve tier: `live_stats()`
//! must be coherent and non-zero *while the service is under load*, and
//! must equal the shutdown snapshot once the service is quiescent —
//! both read the same lock-free registry, so equality is structural,
//! not a timing accident.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use widx_db::hash::HashRecipe;
use widx_serve::{ProbeService, ServeConfig, ServiceStats};

const ENTRIES: u64 = 8192;

fn build() -> ProbeService {
    ProbeService::build_with_range(
        HashRecipe::robust64(),
        (0..ENTRIES).map(|k| (k, k + 1)),
        &ServeConfig::default()
            .with_shards(2)
            .with_batch_size(32)
            .with_batch_deadline(Duration::from_micros(200)),
    )
}

#[test]
fn live_stats_are_nonzero_under_load() {
    let service = Arc::new(build());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let loads: Vec<_> = (0..2)
            .map(|t| {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for key in 0..64u64 {
                            let key = key * 7 + t;
                            let hits = service.lookup(key % ENTRIES).expect("lookup");
                            assert_eq!(hits, vec![key % ENTRIES + 1]);
                            served += 1;
                        }
                        let _ = service.range_scan(0, 200, 50).expect("scan");
                    }
                    served
                })
            })
            .collect();

        // Scrape while the load threads are live: the snapshot must be
        // coherent (no torn counters) and visibly non-zero.
        let mut seen_keys = 0u64;
        let mut seen_latency = 0u64;
        for _ in 0..50 {
            let live = service.live_stats();
            let keys = live.total_keys();
            let lat = live.latency.count as u64;
            assert!(keys >= seen_keys, "total_keys went backwards");
            assert!(lat >= seen_latency, "latency count went backwards");
            seen_keys = keys;
            seen_latency = lat;
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(seen_keys > 0, "no keys observed under load");
        assert!(seen_latency > 0, "no latencies observed under load");

        // Per-worker cells and stage histograms populate too.
        let live = service.live_stats();
        assert!(live.workers.iter().any(|w| w.keys > 0));
        assert!(live.workers.iter().any(|w| w.batches > 0));
        let stages = live.stages.named();
        for (name, summary) in stages {
            match name {
                "queue_wait" | "walk" | "gather" => {
                    assert!(summary.count > 0, "stage {name} recorded nothing");
                }
                // batch_wait records once per batch; reply_write only at
                // the net tier — presence, not magnitude, is asserted
                // elsewhere.
                _ => {}
            }
        }

        stop.store(true, Ordering::Relaxed);
        let served: u64 = loads.into_iter().map(|h| h.join().expect("load")).sum();
        assert!(served > 0);
    });
}

/// Strips the fields legitimately allowed to differ between a live
/// scrape and the post-join shutdown snapshot: `wall` keeps ticking,
/// `net` belongs to the socket tier, and each worker's `idle` keeps
/// accumulating while it blocks on an empty queue. Every counter and
/// every histogram must agree exactly.
fn comparable(mut stats: ServiceStats) -> ServiceStats {
    stats.wall = Duration::ZERO;
    stats.net = Default::default();
    for w in stats
        .workers
        .iter_mut()
        .chain(stats.range_workers.iter_mut())
    {
        w.idle = Duration::ZERO;
    }
    stats
}

#[test]
fn live_stats_equal_shutdown_stats_at_quiescence() {
    let service = build();
    for key in 0..500u64 {
        assert_eq!(service.lookup(key).expect("lookup"), vec![key + 1]);
    }
    let rows = service.join_probe(&[3, 5, ENTRIES + 1]).expect("join");
    assert_eq!(rows.len(), 2);
    let entries = service.range_scan(100, 300, 1000).expect("scan");
    assert_eq!(entries.len(), 201);

    // Every call above was synchronous, so the service is quiescent:
    // the live scrape and the shutdown snapshot fold the same cells.
    let live = service.live_stats();
    assert_eq!(live.total_keys(), 503);
    assert_eq!(live.latency.count, 502, "one latency per request");
    let shutdown = service.shutdown();
    assert_eq!(comparable(live), comparable(shutdown));
}

#[test]
fn stats_render_without_panicking() {
    let service = build();
    for key in 0..100u64 {
        service.lookup(key).expect("lookup");
    }
    let live = service.live_stats();
    let json = live.to_json();
    assert_eq!(widx_obs::json::find_u64(&json, "total_keys"), Some(100));
    let prom = live.render_prometheus();
    assert!(prom.contains("widx_request_latency_ns_count 100"));
    assert!(prom.contains("widx_stage_ns_count{stage=\"walk\"}"));
    let _ = service.shutdown();
}
