//! Property tests for ordered range serving: `RangeScan` through the
//! range-partitioned, batched, multi-threaded tier answers *exactly* —
//! same multiset, same order — like a serial scan of one `BTreeIndex`
//! over all the data, for arbitrary shard counts (and therefore
//! boundary placements), fanouts, batch sizes, in-flight depths,
//! duplicate-heavy key streams, empty/inverted ranges, and `limit`
//! truncation landing at shard seams — including shutdown arriving
//! mid-stream.

use std::time::Duration;

use proptest::prelude::*;
use widx_db::hash::HashRecipe;
use widx_db::index::BTreeIndex;
use widx_serve::{ProbeService, Request, Response, ServeConfig, SubmitError};

/// Serial oracle: one unsharded B+-tree over everything. Its fanout is
/// fixed and deliberately different from the served tier's — scan
/// results must not depend on either.
fn oracle(pairs: &[(u64, u64)], lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
    BTreeIndex::build(7, pairs.iter().copied()).range_scan(lo, hi, limit)
}

fn config(shards: usize, fanout: usize, batch: usize, inflight: usize) -> ServeConfig {
    ServeConfig::default()
        .with_shards(shards)
        .with_fanout(fanout)
        .with_batch_size(batch)
        .with_inflight(inflight)
        .with_batch_deadline(Duration::from_micros(100))
}

/// `(lo, hi)` pairs biased toward interesting shapes: mostly ordered
/// spans (dependent generation via `prop_flat_map`), some single-key
/// points, some inverted (empty) ranges.
fn range_strategy(keyspace: u64) -> impl Strategy<Value = (u64, u64)> {
    prop_oneof![
        (0..keyspace).prop_flat_map(move |lo| (Just(lo), lo..keyspace)),
        (0..keyspace).prop_map(|k| (k, k)),
        (0..keyspace)
            .prop_flat_map(move |hi| (hi..keyspace, Just(hi)))
            .prop_filter("inverted only", |(lo, hi)| lo > hi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Pipelined `RangeScan`s across every knob are order- and
    /// multiset-equal to the serial oracle. Small key domains force
    /// duplicates (which must come back in build order) and boundary
    /// collisions; small limits force truncation at shard seams.
    #[test]
    fn range_scans_match_serial_oracle(
        pairs in prop::collection::vec((0u64..150, any::<u64>()), 0..400),
        scans in prop::collection::vec(
            (range_strategy(170), prop_oneof![
                (0usize..60).boxed(),
                Just(usize::MAX).boxed(),
            ]),
            1..40,
        ),
        shards in 1usize..6,
        fanout in 2usize..10,
        batch in 1usize..32,
        inflight in 1usize..8,
    ) {
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, fanout, batch, inflight),
        );
        // Submit everything without waiting (cross-request batching),
        // then reap in order.
        let pendings: Vec<_> = scans
            .iter()
            .map(|((lo, hi), limit)| {
                service
                    .submit(Request::RangeScan { lo: *lo, hi: *hi, limit: *limit, desc: false })
                    .unwrap()
            })
            .collect();
        for (((lo, hi), limit), pending) in scans.iter().zip(pendings) {
            match pending.wait() {
                Response::RangeScan { entries } => {
                    prop_assert_eq!(
                        entries,
                        oracle(&pairs, *lo, *hi, *limit),
                        "scan [{}, {}] limit {} over {} shards fanout {}",
                        lo, hi, limit, shards, fanout
                    );
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
        let stats = service.shutdown();
        prop_assert!(stats.range_workers.len() == shards);
    }

    /// Limit truncation is exact at shard seams: for a scan covering
    /// everything, every limit yields precisely the first `limit`
    /// entries of the full ordered result — no shard over- or
    /// under-contributes where the cut crosses a boundary.
    #[test]
    fn limit_truncation_is_a_prefix_at_every_seam(
        entries in 1usize..300,
        dup_every in 1u64..8,
        shards in 1usize..6,
        fanout in 2usize..8,
    ) {
        let pairs: Vec<(u64, u64)> = (0..entries as u64)
            .map(|i| (i / dup_every, i))
            .collect();
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, fanout, 16, 4),
        );
        let full = service.range_scan(0, u64::MAX, usize::MAX).unwrap();
        prop_assert_eq!(&full, &oracle(&pairs, 0, u64::MAX, usize::MAX));
        // Probe every seam-adjacent limit plus a spread of others.
        let ordered = service.ordered().unwrap();
        let mut limits: Vec<usize> = vec![0, 1, full.len(), full.len() + 5];
        let mut acc = 0usize;
        for shard in 0..ordered.shard_count() {
            acc += ordered.read(shard).len();
            limits.extend([acc.saturating_sub(1), acc, acc + 1]);
        }
        for limit in limits {
            let got = service.range_scan(0, u64::MAX, limit).unwrap();
            prop_assert_eq!(
                &got,
                &full[..limit.min(full.len())],
                "limit {} of {}", limit, full.len()
            );
        }
    }

    /// Shutdown mid-stream: every scan accepted before `shutdown` still
    /// completes with oracle-equal, ordered results (drain-then-halt),
    /// and later submissions fail cleanly.
    #[test]
    fn shutdown_mid_stream_drains_accepted_scans(
        pairs in prop::collection::vec((0u64..80, any::<u64>()), 0..250),
        scans in prop::collection::vec(range_strategy(100), 1..60),
        shards in 1usize..5,
        batch in 1usize..24,
        accepted in 1usize..60,
    ) {
        let accepted = accepted.min(scans.len());
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, 4, batch, 4),
        );
        let pendings: Vec<_> = scans[..accepted]
            .iter()
            .map(|(lo, hi)| {
                service
                    .submit(Request::RangeScan { lo: *lo, hi: *hi, limit: usize::MAX, desc: false })
                    .unwrap()
            })
            .collect();
        service.stop();
        prop_assert_eq!(
            service.range_scan(0, 1, 1).err(),
            Some(SubmitError::Stopped)
        );
        let _stats = service.shutdown();
        for ((lo, hi), pending) in scans[..accepted].iter().zip(pendings) {
            match pending.wait() {
                Response::RangeScan { entries } => {
                    prop_assert_eq!(entries, oracle(&pairs, *lo, *hi, usize::MAX));
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    /// Point and range traffic interleaved on one service: each answers
    /// its own oracle; neither tier disturbs the other.
    #[test]
    fn mixed_point_and_range_traffic_agree_with_oracles(
        pairs in prop::collection::vec((0u64..100, any::<u64>()), 0..200),
        probes in prop::collection::vec(0u64..120, 1..60),
        scans in prop::collection::vec(range_strategy(120), 1..20),
        shards in 1usize..5,
    ) {
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, 8, 8, 4),
        );
        let scan_pendings: Vec<_> = scans
            .iter()
            .map(|(lo, hi)| {
                service
                    .submit(Request::RangeScan { lo: *lo, hi: *hi, limit: usize::MAX, desc: false })
                    .unwrap()
            })
            .collect();
        let mut point_got = service.multi_lookup(&probes).unwrap();
        for ((lo, hi), pending) in scans.iter().zip(scan_pendings) {
            match pending.wait() {
                Response::RangeScan { entries } => {
                    prop_assert_eq!(entries, oracle(&pairs, *lo, *hi, usize::MAX));
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
        // Point oracle: multiset equality (point responses are
        // unordered by contract).
        let mut point_want: Vec<(u64, u64)> = probes
            .iter()
            .flat_map(|p| {
                pairs
                    .iter()
                    .filter(move |(k, _)| k == p)
                    .map(|(k, v)| (*k, *v))
            })
            .collect();
        point_got.sort_unstable();
        point_want.sort_unstable();
        prop_assert_eq!(point_got, point_want);
    }
}

/// Boundary seams, deterministically: duplicates parked exactly on the
/// shard boundaries the build chose, scans starting/ending on them, and
/// limits cutting mid-duplicate-run.
#[test]
fn scans_at_exact_shard_boundaries() {
    let pairs: Vec<(u64, u64)> = (0..1200u64).map(|i| (i / 3, i)).collect();
    let service = ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &ServeConfig::default().with_shards(4).with_fanout(4),
    );
    let boundaries: Vec<u64> = service.ordered().unwrap().boundaries().to_vec();
    assert!(!boundaries.is_empty());
    for b in boundaries {
        for (lo, hi) in [
            (b, b),
            (b.saturating_sub(1), b),
            (b, b + 1),
            (b.saturating_sub(2), b.saturating_add(2)),
            (0, b),
            (b, u64::MAX),
        ] {
            for limit in [1usize, 2, 4, 7, usize::MAX] {
                assert_eq!(
                    service.range_scan(lo, hi, limit).unwrap(),
                    oracle(&pairs, lo, hi, limit),
                    "boundary {b}: scan [{lo}, {hi}] limit {limit}"
                );
            }
        }
    }
    let stats = service.shutdown();
    assert!(stats.total_scan_cursors() > 0);
}

/// The acceptance scenario: cross-shard scans over a service with ≥ 2
/// shards and batching enabled return key-ordered, limit-correct
/// results identical to the serial oracle.
#[test]
fn cross_shard_scans_match_oracle_end_to_end() {
    let pairs: Vec<(u64, u64)> = (0..20_000u64).map(|k| (k, k.wrapping_mul(17))).collect();
    let service = ProbeService::build_with_range(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &ServeConfig::default()
            .with_shards(4)
            .with_batch_size(32)
            .with_inflight(8),
    );
    // A burst of scans, every one spanning several shard boundaries.
    let pendings: Vec<_> = (0..200u64)
        .map(|i| {
            service
                .submit(Request::RangeScan {
                    lo: i * 37,
                    hi: i * 37 + 9_000,
                    limit: 500,
                    desc: false,
                })
                .unwrap()
        })
        .collect();
    for (i, pending) in pendings.into_iter().enumerate() {
        let i = i as u64;
        match pending.wait() {
            Response::RangeScan { entries } => {
                assert_eq!(
                    entries,
                    oracle(&pairs, i * 37, i * 37 + 9_000, 500),
                    "scan {i}"
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.range_workers.len(), 4);
    assert!(
        stats.range_workers.iter().all(|w| w.keys > 0),
        "every ordered shard served cursors"
    );
    // Batching across concurrent scans must actually engage.
    let batches: u64 = stats.range_workers.iter().map(|w| w.batches).sum();
    let cursors = stats.total_scan_cursors();
    assert!(
        batches < cursors,
        "batches {batches} should undercut cursors {cursors}"
    );
}
