//! Property tests: the sharded, batched, multi-threaded probe service
//! answers exactly like the serial `probe_scalar` oracle, for arbitrary
//! shard counts, batch sizes, in-flight depths, and skewed/duplicate
//! key streams — including shutdown arriving mid-stream.

use std::time::Duration;

use proptest::prelude::*;
use widx_db::hash::HashRecipe;
use widx_db::index::HashIndex;
use widx_serve::{ProbeService, Request, Response, ServeConfig, SubmitError};
use widx_soft::probe_scalar;

/// The serial oracle: every `(key, payload)` match for `probes` against
/// an unsharded index over `pairs`.
fn oracle(pairs: &[(u64, u64)], probes: &[u64]) -> Vec<(u64, u64)> {
    let index = HashIndex::build(HashRecipe::robust64(), 64, pairs.iter().copied());
    let mut out = Vec::new();
    probe_scalar(&index, probes, &mut out);
    out.sort_unstable();
    out
}

fn config(shards: usize, batch: usize, inflight: usize, capacity: usize) -> ServeConfig {
    ServeConfig::default()
        .with_shards(shards)
        .with_batch_size(batch)
        .with_inflight(inflight)
        .with_queue_capacity(capacity)
        // Short enough that deadline flushes actually happen in-test,
        // long enough not to dominate runtime.
        .with_batch_deadline(Duration::from_micros(100))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MultiLookup across every knob: results are multiset-equal to the
    /// scalar oracle. Small key domains force duplicates and collisions;
    /// small queue capacities force backpressure on the submitting
    /// thread.
    #[test]
    fn multi_lookup_matches_oracle(
        pairs in prop::collection::vec((0u64..120, any::<u64>()), 0..400),
        probes in prop::collection::vec(0u64..150, 0..300),
        shards in 1usize..6,
        batch in 1usize..48,
        inflight in 1usize..12,
        capacity in 1usize..64,
    ) {
        let service = ProbeService::build(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, batch, inflight, capacity),
        );
        let mut got = service.multi_lookup(&probes).unwrap();
        let stats = service.shutdown();
        got.sort_unstable();
        prop_assert_eq!(&got, &oracle(&pairs, &probes));
        prop_assert_eq!(stats.total_keys(), probes.len() as u64);
        prop_assert_eq!(stats.total_matches(), got.len() as u64);
    }

    /// A stream of single-key Lookups pipelined without waiting — the
    /// batching path across *independent* requests — agrees with the
    /// oracle, and JoinProbe rows map back to the right keys.
    #[test]
    fn pipelined_lookups_and_joins_match_oracle(
        pairs in prop::collection::vec((0u64..80, any::<u64>()), 0..250),
        probes in prop::collection::vec(0u64..100, 1..160),
        shards in 1usize..5,
        batch in 1usize..32,
        inflight in 1usize..8,
    ) {
        let service = ProbeService::build(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, batch, inflight, 4096),
        );

        // Pipelined lookups: submit everything, then wait.
        let pendings: Vec<_> = probes
            .iter()
            .map(|k| service.submit(Request::Lookup { key: *k }).unwrap())
            .collect();
        let mut got: Vec<(u64, u64)> = Vec::new();
        for (key, pending) in probes.iter().zip(pendings) {
            match pending.wait() {
                Response::Lookup { key: k, payloads } => {
                    prop_assert_eq!(k, *key);
                    got.extend(payloads.into_iter().map(|p| (*key, p)));
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }

        // One JoinProbe over the same stream: rows become keys again.
        let pairs_joined = service.join_probe(&probes).unwrap();
        let service_stats = service.shutdown();
        for (row, _) in &pairs_joined {
            prop_assert!((*row as usize) < probes.len());
        }
        let mut join_as_keys: Vec<(u64, u64)> = pairs_joined
            .into_iter()
            .map(|(row, payload)| (probes[row as usize], payload))
            .collect();

        let want = oracle(&pairs, &probes);
        got.sort_unstable();
        join_as_keys.sort_unstable();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(&join_as_keys, &want);
        prop_assert_eq!(service_stats.latency.count, probes.len() + 1);
    }

    /// Shutdown mid-stream: everything accepted before `shutdown` still
    /// completes with oracle-equal results (drain-then-halt, the poison
    /// pill contract), and later submissions fail cleanly.
    #[test]
    fn shutdown_mid_stream_drains_accepted_work(
        pairs in prop::collection::vec((0u64..60, any::<u64>()), 0..200),
        probes in prop::collection::vec(0u64..80, 1..120),
        shards in 1usize..5,
        batch in 1usize..24,
        accepted in 1usize..120,
    ) {
        let accepted = accepted.min(probes.len());
        let service = ProbeService::build(
            HashRecipe::robust64(),
            pairs.iter().copied(),
            &config(shards, batch, 4, 4096),
        );
        let pendings: Vec<_> = probes[..accepted]
            .iter()
            .map(|k| service.submit(Request::Lookup { key: *k }).unwrap())
            .collect();
        let stats = service.shutdown();

        // Every accepted request resolved (no hangs, no losses).
        let mut got: Vec<(u64, u64)> = Vec::new();
        for (key, pending) in probes[..accepted].iter().zip(pendings) {
            match pending.wait() {
                Response::Lookup { payloads, .. } => {
                    got.extend(payloads.into_iter().map(|p| (*key, p)));
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
        got.sort_unstable();
        prop_assert_eq!(&got, &oracle(&pairs, &probes[..accepted]));
        prop_assert_eq!(stats.latency.count, accepted);
        prop_assert_eq!(stats.total_keys(), accepted as u64);
    }
}

/// The acceptance scenario from the issue, verbatim: ≥ 2 shards,
/// batching enabled, 10k Zipfian probes — multiset-identical to
/// `probe_scalar`.
#[test]
fn zipfian_10k_matches_scalar_oracle() {
    let entries = 8192u64;
    let pairs: Vec<(u64, u64)> = (0..entries).map(|k| (k, k.wrapping_mul(31))).collect();
    // Skewed probes over a slightly wider domain so misses occur too.
    let probes = widx_workloads::datagen::zipf_keys(0xD15C0, 10_000, entries + 512, 0.99);
    assert_eq!(probes.len(), 10_000);

    let service = ProbeService::build(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &ServeConfig::default()
            .with_shards(4)
            .with_batch_size(64)
            .with_inflight(8),
    );
    let mut got = service.multi_lookup(&probes).unwrap();
    let stats = service.shutdown();
    got.sort_unstable();

    assert_eq!(got, oracle(&pairs, &probes));
    assert_eq!(stats.total_keys(), 10_000);
    assert!(stats.workers.len() == 4 && stats.workers.iter().all(|w| w.keys > 0));
    // Batching must actually engage under a 10k-key burst.
    let batches: u64 = stats.workers.iter().map(|w| w.batches).sum();
    assert!(batches >= 4, "each shard flushed at least once");
    let size_flushes: u64 = stats.workers.iter().map(|w| w.size_flushes).sum();
    assert!(size_flushes > 0, "size-based flushes under burst load");
}

/// Submissions after `stop` fail with `Stopped`, while everything
/// accepted before the stop still completes (drain-then-halt).
#[test]
fn post_stop_submissions_are_refused() {
    let pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k, k)).collect();
    let service = ProbeService::build(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &ServeConfig::default().with_shards(2),
    );
    let ok = service.submit(Request::Lookup { key: 1 }).unwrap();
    service.stop();
    assert_eq!(
        service.submit(Request::Lookup { key: 2 }).err(),
        Some(SubmitError::Stopped)
    );
    let _stats = service.shutdown();
    assert_eq!(
        ok.wait(),
        Response::Lookup {
            key: 1,
            payloads: vec![1]
        }
    );

    // A fresh service that is dropped (implicit shutdown) also refuses
    // nothing it already accepted — drop must not hang.
    let service = ProbeService::build(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &ServeConfig::default().with_shards(2),
    );
    let pending = service
        .submit(Request::MultiLookup {
            keys: vec![1, 2, 3],
        })
        .unwrap();
    drop(service);
    assert_eq!(pending.wait().match_count(), 3);
}

/// Backpressure saturation: a tiny queue capacity with a huge pipelined
/// burst neither deadlocks nor drops work.
#[test]
fn backpressure_under_saturation_loses_nothing() {
    let pairs: Vec<(u64, u64)> = (0..512u64).map(|k| (k, k + 7)).collect();
    let service = ProbeService::build(
        HashRecipe::robust64(),
        pairs.iter().copied(),
        &ServeConfig::default()
            .with_shards(3)
            .with_batch_size(8)
            .with_queue_capacity(4),
    );
    let probes: Vec<u64> = (0..2000u64).map(|i| i % 600).collect();
    let pendings: Vec<_> = probes
        .iter()
        .map(|k| service.submit(Request::Lookup { key: *k }).unwrap())
        .collect();
    let mut got: Vec<(u64, u64)> = Vec::new();
    for (key, pending) in probes.iter().zip(pendings) {
        if let Response::Lookup { payloads, .. } = pending.wait() {
            got.extend(payloads.into_iter().map(|p| (*key, p)));
        }
    }
    let stats = service.shutdown();
    got.sort_unstable();
    assert_eq!(got, oracle(&pairs, &probes));
    assert_eq!(stats.latency.count, probes.len());
}

#[test]
fn submit_error_displays() {
    assert_eq!(SubmitError::Stopped.to_string(), "probe service is stopped");
}
