//! Hardware-profiling plumbing at the serve tier: a service built with
//! `with_profile(true)` carries a per-stage counter breakdown in its
//! stats (JSON and Prometheus included), the walker cross-check
//! counters accumulate real work, and an unprofiled service pays — and
//! reports — nothing.

use widx_db::hash::HashRecipe;
use widx_serve::{ProbeService, ServeConfig};

const ENTRIES: u64 = 4096;

fn build(config: ServeConfig) -> ProbeService {
    ProbeService::build_with_range(
        HashRecipe::robust64(),
        (0..ENTRIES).map(|k| (k, k + 1)),
        &config,
    )
}

#[test]
fn profiled_service_reports_per_stage_breakdown() {
    let service = build(ServeConfig::default().with_shards(2).with_profile(true));
    assert!(service.profiling_enabled());

    let keys: Vec<u64> = (0..512).map(|i| i * 31 % (ENTRIES * 2)).collect();
    let rows = service.multi_lookup(&keys).expect("multi_lookup");
    assert!(!rows.is_empty());
    let entries = service.range_scan(0, 1000, 400).expect("range_scan");
    assert_eq!(entries.len(), 400);

    let stats = service.live_stats();
    let prof = stats.prof.as_ref().expect("profiled service carries prof");
    // Both tiers attached: 2 point + 2 range workers.
    assert_eq!(prof.workers, 4);
    assert_ne!(prof.backend, "none", "workers attached a counter group");
    // The walkers really ran under the profiler: the software
    // cross-check counters saw the probes and the scan.
    assert!(prof.walk.nodes > 0, "no nodes visited");
    assert!(prof.walk.rounds > 0, "no walker rounds");
    assert!(prof.walk.prefetches > 0, "no prefetches issued");
    assert!(
        prof.soft_mlp().is_some_and(|mlp| mlp > 0.0),
        "software MLP derives from the walk counters"
    );
    // Counter windows were recorded into the seam stages either way;
    // cycles are only nonzero on a real hardware backend.
    let total = prof.total();
    assert!(total.windows > 0, "no counter windows recorded");
    if prof.hw {
        assert!(total.cycles > 0, "hardware backend counted no cycles");
    } else {
        assert!(
            prof.fallback.is_some() || prof.backend == "soft",
            "a degraded backend explains itself"
        );
    }

    // The snapshot rides the stats JSON, the Profile opcode payload,
    // and the Prometheus exposition.
    let json = stats.to_json();
    assert!(json.contains("\"prof\": {\"backend\":"));
    let profile = service.profile_json();
    assert!(profile.starts_with("{\"enabled\": true,"));
    assert!(profile.contains("\"stages\":{\"queue_wait\":"));
    let prom = stats.render_prometheus();
    assert!(prom.contains("widx_prof_workers 4"));
    assert!(prom.contains("widx_prof_windows_total{stage=\"walk\"}"));
    assert!(
        widx_obs::lint_exposition(&prom).is_empty(),
        "profiled exposition passes the Prometheus lint"
    );

    // The shutdown snapshot keeps the profile.
    let final_stats = service.shutdown();
    assert!(final_stats.prof.is_some());
}

#[test]
fn unprofiled_service_carries_no_profile() {
    let service = build(ServeConfig::default().with_shards(2));
    assert!(!service.profiling_enabled());
    let _ = service.lookup(7).expect("lookup");
    let stats = service.live_stats();
    assert!(stats.prof.is_none());
    assert_eq!(service.profile_json(), "{\"enabled\": false}");
    assert!(!stats.to_json().contains("\"prof\""));
    assert!(!stats.render_prometheus().contains("widx_prof_"));
}
