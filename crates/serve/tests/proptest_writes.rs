//! Property tests for the mutable serving tier: arbitrary interleavings
//! of inserts, deletes, updates, point lookups, multi-lookups, and
//! range scans through the sharded, batched, multi-threaded service
//! answer exactly like a serial mutable oracle (`BTreeMap<u64,
//! Vec<u64>>`), for arbitrary shard counts, fanouts, batch sizes, and
//! in-flight depths — including shutdown arriving with writes still
//! queued.
//!
//! The oracle mirrors the index semantics: `insert` stacks duplicate
//! payloads in arrival order, `delete` removes every entry under the
//! key, `update` collapses the key to the single new payload (and
//! never inserts on miss).

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use widx_db::hash::HashRecipe;
use widx_serve::{ProbeService, Request, Response, ServeConfig};

/// Serial mutable oracle over the same key space.
#[derive(Default)]
struct Oracle {
    map: BTreeMap<u64, Vec<u64>>,
}

impl Oracle {
    fn insert(&mut self, key: u64, payload: u64) -> bool {
        self.map.entry(key).or_default().push(payload);
        true
    }

    fn delete(&mut self, key: u64) -> bool {
        self.map.remove(&key).is_some()
    }

    fn update(&mut self, key: u64, payload: u64) -> bool {
        match self.map.get_mut(&key) {
            Some(payloads) => {
                *payloads = vec![payload];
                true
            }
            None => false,
        }
    }

    fn lookup(&self, key: u64) -> Vec<u64> {
        let mut out = self.map.get(&key).cloned().unwrap_or_default();
        out.sort_unstable();
        out
    }

    fn multi_lookup(&self, keys: &[u64]) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = keys
            .iter()
            .flat_map(|k| self.lookup(*k).into_iter().map(move |p| (*k, p)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Key-ordered scan; duplicate payloads under one key come back in
    /// arrival order, exactly like the B+-tree's in-leaf ordering.
    fn range_scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        self.map
            .range(lo..=hi)
            .flat_map(|(k, ps)| ps.iter().map(move |p| (*k, *p)))
            .take(limit)
            .collect()
    }
}

fn config(shards: usize, fanout: usize, batch: usize, inflight: usize) -> ServeConfig {
    ServeConfig::default()
        .with_shards(shards)
        .with_fanout(fanout)
        .with_batch_size(batch)
        .with_inflight(inflight)
        .with_batch_deadline(Duration::from_micros(100))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every interleaving of the six operation kinds, applied serially,
    /// agrees with the mutable oracle at each step — no stale reads
    /// after a write, no resurrection after a delete, no insert-on-miss
    /// from update, and range scans that see every mutation in key
    /// order.
    #[test]
    fn interleaved_ops_match_the_mutable_oracle(
        seed_pairs in prop::collection::vec((0u64..60, 0u64..1000), 0..120),
        ops in prop::collection::vec((0u8..6, 0u64..60, 0u64..1000), 1..120),
        shards in 1usize..5,
        fanout in 2usize..8,
        batch in 1usize..24,
        inflight in 1usize..8,
    ) {
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            seed_pairs.iter().copied(),
            &config(shards, fanout, batch, inflight),
        );
        let mut oracle = Oracle::default();
        for (key, payload) in &seed_pairs {
            oracle.insert(*key, *payload);
        }
        for (op, key, payload) in &ops {
            let (op, key, payload) = (*op, *key, *payload);
            match op {
                0 => prop_assert_eq!(
                    service.insert(key, payload).unwrap(),
                    oracle.insert(key, payload)
                ),
                1 => prop_assert_eq!(service.delete(key).unwrap(), oracle.delete(key)),
                2 => prop_assert_eq!(
                    service.update(key, payload).unwrap(),
                    oracle.update(key, payload)
                ),
                3 => {
                    let mut got = service.lookup(key).unwrap();
                    got.sort_unstable();
                    prop_assert_eq!(got, oracle.lookup(key));
                }
                4 => {
                    let keys = [key, key / 2, payload % 60];
                    let mut got = service.multi_lookup(&keys).unwrap();
                    got.sort_unstable();
                    prop_assert_eq!(got, oracle.multi_lookup(&keys));
                }
                _ => {
                    let lo = key.min(payload % 60);
                    let hi = lo + payload % 20;
                    let limit = if payload % 7 == 0 { 5 } else { usize::MAX };
                    prop_assert_eq!(
                        service.range_scan(lo, hi, limit).unwrap(),
                        oracle.range_scan(lo, hi, limit)
                    );
                }
            }
        }
        // The final index state agrees wholesale, through both tiers.
        let full = service.range_scan(0, u64::MAX, usize::MAX).unwrap();
        prop_assert_eq!(&full, &oracle.range_scan(0, u64::MAX, usize::MAX));
        let stats = service.shutdown();
        prop_assert_eq!(stats.epoch_retired, 0, "final sweep drains retirements");
    }

    /// Writes queued when `stop` lands still apply (drain-then-halt),
    /// every accepted ack arrives, and the final snapshot's write
    /// counters cover every accepted op.
    #[test]
    fn shutdown_drains_queued_writes(
        seed_pairs in prop::collection::vec((0u64..40, any::<u64>()), 0..80),
        inserts in prop::collection::vec((100u64..200, any::<u64>()), 1..60),
        shards in 1usize..5,
        batch in 1usize..24,
    ) {
        let service = ProbeService::build_with_range(
            HashRecipe::robust64(),
            seed_pairs.iter().copied(),
            &config(shards, 4, batch, 4),
        );
        // Pipeline the writes without waiting, then stop under them.
        let pendings: Vec<_> = inserts
            .iter()
            .map(|(k, p)| {
                service
                    .submit(Request::Insert { pairs: vec![(*k, *p)] })
                    .unwrap()
            })
            .collect();
        service.stop();
        prop_assert!(service.insert(1, 1).is_err(), "post-stop writes refused");
        for pending in pendings {
            prop_assert_eq!(
                pending.wait(),
                Response::Write { acks: vec![true] },
                "accepted write drained before the halt"
            );
        }
        let stats = service.shutdown();
        // Each op applies in the hash tier and the ordered tier.
        prop_assert_eq!(stats.total_write_applied(), inserts.len() as u64 * 2);
        prop_assert_eq!(stats.epoch_retired, 0);
    }
}
