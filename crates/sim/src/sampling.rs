//! Statistical sampling helpers.
//!
//! The paper measures with the SimFlex/SMARTS methodology: many short
//! measurement windows, reported as a mean with a 95 % confidence
//! interval ("performance measurements are computed at 95 % confidence
//! with an average error of less than 5 %"). The harnesses here do the
//! same over per-window cycle counts.

/// Mean, deviation, and confidence interval of a set of sample values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub stddev: f64,
    /// Half-width of the 95 % confidence interval.
    pub ci95: f64,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// Returns a zeroed summary for an empty slice; the deviation and
    /// confidence interval are zero for fewer than two samples.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                ci95: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Summary {
                n,
                mean,
                stddev: 0.0,
                ci95: 0.0,
            };
        }
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let stddev = var.sqrt();
        // Normal-approximation 95 % CI; the paper's sample counts are
        // large enough for the z-interval.
        let ci95 = 1.96 * stddev / (n as f64).sqrt();
        Summary {
            n,
            mean,
            stddev,
            ci95,
        }
    }

    /// Relative CI half-width (`ci95 / mean`), 0 when the mean is 0.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95 / self.mean
        }
    }
}

/// Splits `total` items into at most `windows` contiguous sampling
/// windows of near-equal size, returning `(start, len)` pairs. Used by
/// harnesses to take periodic measurements over a long probe stream.
#[must_use]
pub fn windows(total: usize, windows: usize) -> Vec<(usize, usize)> {
    if total == 0 || windows == 0 {
        return Vec::new();
    }
    let count = windows.min(total);
    let base = total / count;
    let extra = total % count;
    let mut out = Vec::with_capacity(count);
    let mut start = 0;
    for i in 0..count {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        let e = Summary::from_samples(&[]);
        assert_eq!(e.n, 0);
        let s = Summary::from_samples(&[5.0]);
        assert_eq!(s.n, 1);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev with Bessel correction: sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn identical_samples_zero_ci() {
        let s = Summary::from_samples(&[3.0; 50]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.relative_error(), 0.0);
    }

    #[test]
    fn windows_cover_everything_once() {
        let w = windows(103, 10);
        assert_eq!(w.len(), 10);
        let mut covered = 0;
        let mut expected_start = 0;
        for (start, len) in w {
            assert_eq!(start, expected_start);
            expected_start += len;
            covered += len;
        }
        assert_eq!(covered, 103);
    }

    #[test]
    fn more_windows_than_items() {
        let w = windows(3, 10);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|(_, len)| *len == 1));
    }

    #[test]
    fn degenerate_windows() {
        assert!(windows(0, 5).is_empty());
        assert!(windows(5, 0).is_empty());
    }
}
