//! Counters and cycle breakdowns.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Where in the hierarchy a load was satisfied.
pub use crate::mem::HitLevel;

/// Per-walker (or per-unit) critical-path cycle classification used by
/// the paper's Figures 8a, 9a, and 9b:
///
/// * **Comp** — executing ALU work (effective addresses, key compares,
///   hashing).
/// * **Mem** — stalled waiting on the memory hierarchy.
/// * **Tlb** — stalled on address translation (page walks + replay).
/// * **Idle** — stalled on empty input / full output queues (for Widx
///   walkers this indicates the dispatcher cannot keep up).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Compute cycles.
    pub comp: u64,
    /// Memory-stall cycles.
    pub mem: u64,
    /// Address-translation stall cycles.
    pub tlb: u64,
    /// Queue-stall (idle) cycles.
    pub idle: u64,
}

impl CycleBreakdown {
    /// A zeroed breakdown.
    #[must_use]
    pub fn new() -> CycleBreakdown {
        CycleBreakdown::default()
    }

    /// Sum of all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.comp + self.mem + self.tlb + self.idle
    }

    /// Each category as a fraction of the total (0 when empty).
    #[must_use]
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        let t = t as f64;
        [
            self.comp as f64 / t,
            self.mem as f64 / t,
            self.tlb as f64 / t,
            self.idle as f64 / t,
        ]
    }

    /// Divides every category by `n` (e.g. cycles per tuple).
    #[must_use]
    pub fn per(&self, n: u64) -> BreakdownPer {
        let n = n.max(1) as f64;
        BreakdownPer {
            comp: self.comp as f64 / n,
            mem: self.mem as f64 / n,
            tlb: self.tlb as f64 / n,
            idle: self.idle as f64 / n,
        }
    }
}

impl Add for CycleBreakdown {
    type Output = CycleBreakdown;
    fn add(self, rhs: CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            comp: self.comp + rhs.comp,
            mem: self.mem + rhs.mem,
            tlb: self.tlb + rhs.tlb,
            idle: self.idle + rhs.idle,
        }
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: CycleBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for CycleBreakdown {
    fn sum<I: Iterator<Item = CycleBreakdown>>(iter: I) -> CycleBreakdown {
        iter.fold(CycleBreakdown::new(), Add::add)
    }
}

impl fmt::Display for CycleBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comp={} mem={} tlb={} idle={} (total {})",
            self.comp,
            self.mem,
            self.tlb,
            self.idle,
            self.total()
        )
    }
}

/// A [`CycleBreakdown`] normalized to some per-item denominator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BreakdownPer {
    /// Compute cycles per item.
    pub comp: f64,
    /// Memory-stall cycles per item.
    pub mem: f64,
    /// Translation-stall cycles per item.
    pub tlb: f64,
    /// Queue-stall cycles per item.
    pub idle: f64,
}

impl BreakdownPer {
    /// Sum of all categories.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.comp + self.mem + self.tlb + self.idle
    }
}

impl fmt::Display for BreakdownPer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comp={:.1} mem={:.1} tlb={:.1} idle={:.1} (total {:.1})",
            self.comp,
            self.mem,
            self.tlb,
            self.idle,
            self.total()
        )
    }
}

/// Memory-system event counters for one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Loads that hit in the L1-D.
    pub l1_hits: u64,
    /// Loads that missed in the L1-D.
    pub l1_misses: u64,
    /// L1 misses that hit in the LLC.
    pub llc_hits: u64,
    /// L1 misses that also missed in the LLC.
    pub llc_misses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (page walks).
    pub tlb_misses: u64,
    /// Stores issued.
    pub stores: u64,
    /// TOUCH/prefetch operations issued.
    pub prefetches: u64,
    /// Cycles requests spent waiting for a free L1 MSHR.
    pub mshr_wait_cycles: u64,
}

impl MemStats {
    /// L1 miss ratio over loads (0 when no loads).
    #[must_use]
    pub fn l1_miss_ratio(&self) -> f64 {
        ratio(self.l1_misses, self.l1_hits + self.l1_misses)
    }

    /// LLC miss ratio over LLC lookups (0 when none).
    #[must_use]
    pub fn llc_miss_ratio(&self) -> f64 {
        ratio(self.llc_misses, self.llc_hits + self.llc_misses)
    }

    /// TLB miss ratio (0 when no translations).
    #[must_use]
    pub fn tlb_miss_ratio(&self) -> f64 {
        ratio(self.tlb_misses, self.tlb_hits + self.tlb_misses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let b = CycleBreakdown {
            comp: 10,
            mem: 70,
            tlb: 5,
            idle: 15,
        };
        assert_eq!(b.total(), 100);
        let f = b.fractions();
        assert!((f[0] - 0.10).abs() < 1e-12);
        assert!((f[1] - 0.70).abs() < 1e-12);
        assert!((f[3] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(CycleBreakdown::new().fractions(), [0.0; 4]);
    }

    #[test]
    fn addition_and_sum() {
        let a = CycleBreakdown {
            comp: 1,
            mem: 2,
            tlb: 3,
            idle: 4,
        };
        let b = CycleBreakdown {
            comp: 10,
            mem: 20,
            tlb: 30,
            idle: 40,
        };
        let s: CycleBreakdown = [a, b].into_iter().sum();
        assert_eq!(
            s,
            CycleBreakdown {
                comp: 11,
                mem: 22,
                tlb: 33,
                idle: 44
            }
        );
    }

    #[test]
    fn per_item_normalization() {
        let b = CycleBreakdown {
            comp: 100,
            mem: 300,
            tlb: 0,
            idle: 0,
        };
        let p = b.per(100);
        assert!((p.comp - 1.0).abs() < 1e-12);
        assert!((p.mem - 3.0).abs() < 1e-12);
        assert!((p.total() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mem_stats_ratios() {
        let s = MemStats {
            l1_hits: 90,
            l1_misses: 10,
            llc_hits: 5,
            llc_misses: 5,
            tlb_hits: 0,
            tlb_misses: 0,
            ..MemStats::default()
        };
        assert!((s.l1_miss_ratio() - 0.1).abs() < 1e-12);
        assert!((s.llc_miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.tlb_miss_ratio(), 0.0);
    }
}
