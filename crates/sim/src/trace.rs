//! Dependence-annotated µop traces.
//!
//! The baseline cores are *trace-driven*: the workload layer walks the
//! actual in-memory data structures (so every load address is real) and
//! records the dynamic instruction stream of the indexing loop —
//! Listing 1 of the paper — as µops with explicit data dependences. The
//! core models then replay the trace against the timed memory system.

use crate::mem::VAddr;

/// Index of a µop within its [`Trace`].
pub type UopIdx = u32;

/// The kind of work a µop performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UopKind {
    /// ALU work completing `latency` cycles after issue.
    Comp {
        /// Execution latency in cycles.
        latency: u8,
    },
    /// A load of `width` bytes.
    Load {
        /// Virtual address accessed.
        addr: VAddr,
        /// Access width in bytes.
        width: u8,
    },
    /// A store of `width` bytes of `value`.
    Store {
        /// Virtual address accessed.
        addr: VAddr,
        /// Access width in bytes.
        width: u8,
        /// Value stored (keeps the functional memory truthful).
        value: u64,
    },
    /// A conditional branch.
    ///
    /// Index traversals are full of data-dependent branches (match
    /// checks, chain-exit tests) whose outcomes depend on loaded data; a
    /// mispredicted one flushes the window and stalls the front end
    /// until it resolves. Without modelling this, a limit-style OoO
    /// model would overlap probes far more aggressively than real
    /// hardware and overstate the paper's baseline.
    Branch {
        /// Whether the branch is mispredicted (squashes younger µops).
        mispredict: bool,
    },
}

/// One µop: its kind plus up to two data dependences on older µops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Uop {
    /// What the µop does.
    pub kind: UopKind,
    /// Indices of older µops whose results this µop consumes.
    pub deps: [Option<UopIdx>; 2],
}

/// A dynamic µop trace with tuple-boundary markers.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    uops: Vec<Uop>,
    /// µop index at which each tuple's work begins.
    tuple_starts: Vec<UopIdx>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// The µops in program order.
    #[must_use]
    pub fn uops(&self) -> &[Uop] {
        &self.uops
    }

    /// Number of µops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Number of tuples (probe keys) the trace covers.
    #[must_use]
    pub fn tuples(&self) -> usize {
        self.tuple_starts.len()
    }

    /// Marks the start of a new tuple's work.
    pub fn mark_tuple(&mut self) {
        self.tuple_starts.push(self.uops.len() as UopIdx);
    }

    /// Appends a compute µop; returns its index for use as a dependence.
    pub fn comp(&mut self, latency: u8, deps: [Option<UopIdx>; 2]) -> UopIdx {
        self.push(Uop {
            kind: UopKind::Comp { latency },
            deps,
        })
    }

    /// Appends a load µop; returns its index.
    pub fn load(&mut self, addr: VAddr, width: u8, deps: [Option<UopIdx>; 2]) -> UopIdx {
        self.push(Uop {
            kind: UopKind::Load { addr, width },
            deps,
        })
    }

    /// Appends a store µop; returns its index.
    pub fn store(
        &mut self,
        addr: VAddr,
        width: u8,
        value: u64,
        deps: [Option<UopIdx>; 2],
    ) -> UopIdx {
        self.push(Uop {
            kind: UopKind::Store { addr, width, value },
            deps,
        })
    }

    /// Appends a branch µop; returns its index.
    pub fn branch(&mut self, mispredict: bool, deps: [Option<UopIdx>; 2]) -> UopIdx {
        self.push(Uop {
            kind: UopKind::Branch { mispredict },
            deps,
        })
    }

    fn push(&mut self, uop: Uop) -> UopIdx {
        for dep in uop.deps.into_iter().flatten() {
            assert!(
                (dep as usize) < self.uops.len(),
                "dependence {dep} references a younger µop"
            );
        }
        self.uops.push(uop);
        (self.uops.len() - 1) as UopIdx
    }

    /// Count of load µops.
    #[must_use]
    pub fn load_count(&self) -> usize {
        self.uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Load { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_chain() {
        let mut t = Trace::new();
        t.mark_tuple();
        let k = t.load(VAddr::new(0x1000), 8, [None, None]);
        let h = t.comp(3, [Some(k), None]);
        let n = t.load(VAddr::new(0x2000), 8, [Some(h), None]);
        let _ = t.comp(1, [Some(n), Some(k)]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.tuples(), 1);
        assert_eq!(t.load_count(), 2);
    }

    #[test]
    #[should_panic(expected = "younger µop")]
    fn forward_dependence_rejected() {
        let mut t = Trace::new();
        t.comp(1, [Some(5), None]);
    }

    #[test]
    fn tuple_markers() {
        let mut t = Trace::new();
        for i in 0..3 {
            t.mark_tuple();
            t.load(VAddr::new(0x1000 + i * 64), 8, [None, None]);
        }
        assert_eq!(t.tuples(), 3);
    }
}
