//! Miss-status holding registers with same-block coalescing.
//!
//! The paper's bottleneck analysis (Section 3.2) identifies L1-D MSHRs as
//! the binding constraint on walker count: each outstanding miss holds an
//! MSHR for its duration, misses to the same block share one, and "once
//! these are exhausted, the cache stops accepting new memory requests".

use crate::Cycle;

use super::addr::BlockAddr;

/// Result of attempting to allocate an MSHR at a point in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// The block already has an in-flight miss completing at the given
    /// cycle; the new request piggybacks on it.
    Merged(Cycle),
    /// A free MSHR was claimed; the caller must later call
    /// [`MshrFile::complete`] to set the fill time.
    Allocated,
    /// All MSHRs are busy until (at least) the given cycle; the request
    /// must retry then.
    Full(Cycle),
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    block: BlockAddr,
    /// Cycle at which the miss data arrives and the entry frees.
    done: Cycle,
}

/// An MSHR file of fixed capacity.
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<Entry>,
    peak_occupancy: usize,
    merges: u64,
    stalls: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    #[must_use]
    pub fn new(capacity: usize) -> MshrFile {
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            peak_occupancy: 0,
            merges: 0,
            stalls: 0,
        }
    }

    /// Drops entries whose miss completed at or before `now`.
    fn expire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.done > now);
    }

    /// Outstanding misses at `now`.
    #[must_use]
    pub fn occupancy(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|e| e.done > now).count()
    }

    /// Attempts to start a miss for `block` at `now`.
    ///
    /// On [`MshrOutcome::Allocated`], the entry is provisionally held with
    /// an unknown completion time; the caller must invoke
    /// [`MshrFile::complete`] with the fill cycle once the downstream
    /// latency is known.
    pub fn request(&mut self, block: BlockAddr, now: Cycle) -> MshrOutcome {
        self.expire(now);
        if let Some(e) = self.entries.iter().find(|e| e.block == block) {
            self.merges += 1;
            return MshrOutcome::Merged(e.done);
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            let earliest = self
                .entries
                .iter()
                .map(|e| e.done)
                .min()
                .expect("file is non-empty");
            return MshrOutcome::Full(earliest);
        }
        self.entries.push(Entry {
            block,
            done: Cycle::MAX,
        });
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Looks up an in-flight miss for `block` at `now`, counting a merge
    /// when one is found. Entries whose completion time is still unknown
    /// (allocated but not yet [`complete`](MshrFile::complete)d) are not
    /// returned.
    pub fn pending(&mut self, block: BlockAddr, now: Cycle) -> Option<Cycle> {
        self.expire(now);
        let found = self
            .entries
            .iter()
            .find(|e| e.block == block && e.done != Cycle::MAX)
            .map(|e| e.done);
        if found.is_some() {
            self.merges += 1;
        }
        found
    }

    /// Records the completion cycle of the in-flight miss for `block`.
    ///
    /// # Panics
    ///
    /// Panics if no allocation for `block` is pending.
    pub fn complete(&mut self, block: BlockAddr, done: Cycle) {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.block == block && e.done == Cycle::MAX)
            .expect("complete() must follow a matching Allocated request");
        entry.done = done;
    }

    /// Highest simultaneous occupancy observed.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of requests that merged into an existing entry.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of requests rejected because the file was full.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// The file's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.request(BlockAddr(1), 0), MshrOutcome::Allocated);
        m.complete(BlockAddr(1), 100);
        // Another access to the same block merges and learns the time.
        assert_eq!(m.request(BlockAddr(1), 10), MshrOutcome::Merged(100));
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_reports_earliest_free() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.request(BlockAddr(1), 0), MshrOutcome::Allocated);
        m.complete(BlockAddr(1), 50);
        assert_eq!(m.request(BlockAddr(2), 0), MshrOutcome::Allocated);
        m.complete(BlockAddr(2), 80);
        assert_eq!(m.request(BlockAddr(3), 0), MshrOutcome::Full(50));
        assert_eq!(m.stalls(), 1);
    }

    #[test]
    fn entries_expire() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.request(BlockAddr(1), 0), MshrOutcome::Allocated);
        m.complete(BlockAddr(1), 50);
        // At cycle 50 the entry has freed; a new block allocates.
        assert_eq!(m.request(BlockAddr(2), 50), MshrOutcome::Allocated);
        m.complete(BlockAddr(2), 90);
        assert_eq!(m.occupancy(60), 1);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut m = MshrFile::new(4);
        for b in 0..3 {
            assert_eq!(m.request(BlockAddr(b), 0), MshrOutcome::Allocated);
            m.complete(BlockAddr(b), 100);
        }
        assert_eq!(m.peak_occupancy(), 3);
    }

    #[test]
    #[should_panic(expected = "complete() must follow")]
    fn complete_without_request_panics() {
        let mut m = MshrFile::new(1);
        m.complete(BlockAddr(9), 10);
    }
}
