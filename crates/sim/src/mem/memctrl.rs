//! Bandwidth-limited memory controllers.
//!
//! Table 2: two controllers, 12.8 GB/s each, 45 ns access latency. A
//! controller transfers one 64-byte block at a time; its channel is
//! occupied for `block / effective-bandwidth` cycles per transfer, so a
//! burst of misses queues and the *observed* latency grows with load —
//! exactly the off-chip-bandwidth bottleneck of the paper's Figure 4c.

use crate::config::MemoryConfig;
use crate::Cycle;

use super::addr::{BlockAddr, BLOCK_BYTES};

/// The set of block-interleaved memory controllers.
#[derive(Clone, Debug)]
pub struct MemoryControllers {
    channel_free: Vec<Cycle>,
    cycles_per_block: u64,
    access_latency: u64,
    transfers: u64,
    queue_cycles: u64,
}

impl MemoryControllers {
    /// Creates the controllers described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.controllers` is zero.
    #[must_use]
    pub fn new(cfg: &MemoryConfig) -> MemoryControllers {
        assert!(
            cfg.controllers > 0,
            "at least one memory controller is required"
        );
        MemoryControllers {
            channel_free: vec![0; cfg.controllers],
            cycles_per_block: cfg.cycles_per_block(BLOCK_BYTES as usize),
            access_latency: cfg.access_latency,
            transfers: 0,
            queue_cycles: 0,
        }
    }

    fn channel_of(&self, block: BlockAddr) -> usize {
        (block.0 % self.channel_free.len() as u64) as usize
    }

    /// Requests `block` from memory at `now`; returns the cycle its data
    /// arrives at the LLC.
    pub fn fetch(&mut self, block: BlockAddr, now: Cycle) -> Cycle {
        let ch = self.channel_of(block);
        let start = self.channel_free[ch].max(now);
        self.queue_cycles += start - now;
        self.channel_free[ch] = start + self.cycles_per_block;
        self.transfers += 1;
        start + self.access_latency
    }

    /// Total block transfers served.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles requests spent queued behind the channels.
    #[must_use]
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// Channel occupancy per transfer, in cycles.
    #[must_use]
    pub fn cycles_per_block(&self) -> u64 {
        self.cycles_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(controllers: usize) -> MemoryConfig {
        MemoryConfig {
            controllers,
            peak_bytes_per_cycle: 6.4,
            efficiency: 0.7,
            access_latency: 90,
        }
    }

    #[test]
    fn unloaded_latency_is_access_latency() {
        let mut mc = MemoryControllers::new(&cfg(2));
        assert_eq!(mc.fetch(BlockAddr(0), 100), 190);
    }

    #[test]
    fn same_channel_queues() {
        let mut mc = MemoryControllers::new(&cfg(2));
        let cpb = mc.cycles_per_block();
        let a = mc.fetch(BlockAddr(0), 0);
        let b = mc.fetch(BlockAddr(2), 0); // same channel (even blocks)
        assert_eq!(a, 90);
        assert_eq!(b, 90 + cpb);
        assert_eq!(mc.queue_cycles(), cpb);
    }

    #[test]
    fn different_channels_are_parallel() {
        let mut mc = MemoryControllers::new(&cfg(2));
        let a = mc.fetch(BlockAddr(0), 0);
        let b = mc.fetch(BlockAddr(1), 0); // odd block -> other channel
        assert_eq!(a, b);
        assert_eq!(mc.queue_cycles(), 0);
    }

    #[test]
    fn sustained_throughput_matches_bandwidth() {
        let mut mc = MemoryControllers::new(&cfg(1));
        let cpb = mc.cycles_per_block();
        let n = 1000u64;
        let mut last = 0;
        for i in 0..n {
            last = mc.fetch(BlockAddr(i), 0);
        }
        // n transfers serialized on one channel: the last completes at
        // (n-1)*cpb + latency.
        assert_eq!(last, (n - 1) * cpb + 90);
        assert_eq!(mc.transfers(), n);
    }
}
