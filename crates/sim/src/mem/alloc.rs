//! A bump allocator carving named regions out of the simulated virtual
//! address space — the moral equivalent of the DBMS's heap layout for
//! input tables, hash tables, and result buffers.

use std::fmt;

use super::addr::VAddr;

/// A named, contiguous virtual-address region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    name: String,
    base: VAddr,
    len: u64,
}

impl Region {
    /// The region's base address.
    #[must_use]
    pub fn base(&self) -> VAddr {
        self.base
    }

    /// The region's length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the last byte.
    #[must_use]
    pub fn end(&self) -> VAddr {
        self.base + self.len
    }

    /// The region's name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: VAddr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{:#x}..{:#x})",
            self.name,
            self.base.get(),
            self.end().get()
        )
    }
}

/// Bump allocator over the simulated virtual address space.
///
/// Address zero is never handed out so that `0` can serve as the NULL
/// pointer inside simulated data structures.
#[derive(Clone, Debug)]
pub struct RegionAllocator {
    cursor: VAddr,
    regions: Vec<Region>,
}

impl Default for RegionAllocator {
    fn default() -> RegionAllocator {
        RegionAllocator::new()
    }
}

impl RegionAllocator {
    /// Default base of the first allocation (one page in, keeping page 0
    /// unmapped like a conventional process layout).
    const BASE: u64 = 0x1_0000;

    /// Creates an allocator starting at the default base.
    #[must_use]
    pub fn new() -> RegionAllocator {
        RegionAllocator {
            cursor: VAddr::new(Self::BASE),
            regions: Vec::new(),
        }
    }

    /// Allocates `len` bytes aligned to `align`, tagged with `name`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, name: &str, len: u64, align: u64) -> Region {
        let base = self.cursor.align_up(align);
        self.cursor = base + len;
        let region = Region {
            name: name.to_string(),
            base,
            len,
        };
        self.regions.push(region.clone());
        region
    }

    /// Allocates a region aligned to the cache-block size.
    pub fn alloc_blocks(&mut self, name: &str, len: u64) -> Region {
        self.alloc(name, len, super::BLOCK_BYTES)
    }

    /// Allocates a region aligned to the page size.
    pub fn alloc_pages(&mut self, name: &str, len: u64) -> Region {
        self.alloc(name, len, super::PAGE_BYTES)
    }

    /// All regions allocated so far, in allocation order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes spanned (including alignment padding).
    #[must_use]
    pub fn footprint(&self) -> u64 {
        self.cursor.get() - Self::BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut a = RegionAllocator::new();
        let r1 = a.alloc("one", 100, 8);
        let r2 = a.alloc("two", 100, 8);
        assert!(r1.end() <= r2.base());
        assert!(!r1.contains(r2.base()));
        assert!(r1.contains(r1.base()));
        assert!(!r1.contains(r1.end()));
    }

    #[test]
    fn alignment_respected() {
        let mut a = RegionAllocator::new();
        a.alloc("pad", 3, 1);
        let r = a.alloc("aligned", 10, 4096);
        assert_eq!(r.base().get() % 4096, 0);
    }

    #[test]
    fn never_hands_out_null() {
        let mut a = RegionAllocator::new();
        let r = a.alloc("x", 8, 8);
        assert!(!r.base().is_null());
    }

    #[test]
    fn footprint_accumulates() {
        let mut a = RegionAllocator::new();
        a.alloc_blocks("b", 64);
        a.alloc_pages("p", 4096);
        assert!(a.footprint() >= 64 + 4096);
        assert_eq!(a.regions().len(), 2);
    }
}
