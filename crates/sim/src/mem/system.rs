//! The composed memory system: TLB → L1-D (ports + MSHRs) → crossbar →
//! LLC → memory controllers, over a functional backing store.

use crate::config::SystemConfig;
use crate::stats::MemStats;
use crate::tlb::{Tlb, TlbResult};
use crate::Cycle;

use super::addr::{BlockAddr, VAddr, BLOCK_BYTES};
use super::backing::BackingMem;
use super::cache::Cache;
use super::memctrl::MemoryControllers;
use super::mshr::{MshrFile, MshrOutcome};
use super::ports::PortCalendar;

/// Where a load's data came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// L1-D hit.
    L1,
    /// L1 miss that hit in the LLC.
    Llc,
    /// Miss all the way to DRAM.
    Memory,
    /// Coalesced into an already-outstanding miss for the same block.
    Coalesced,
}

/// Timing outcome of one memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Absolute cycle at which the data is available to the requester.
    pub ready: Cycle,
    /// Which level satisfied the access.
    pub level: HitLevel,
    /// Whether address translation required a page walk.
    pub tlb_miss: bool,
    /// Cycle at which the translation was available.
    pub tlb_ready: Cycle,
    /// Cycle at which the access occupied an L1 port.
    pub issue: Cycle,
}

/// The simulated memory system shared by the host core and Widx.
///
/// The accelerator is "tightly coupled with a conventional core, which
/// eliminates the need for dedicated address translation and caching
/// hardware" (paper abstract) — so there is exactly one TLB, one L1-D,
/// and one LLC here, and whoever runs (core or Widx units) contends for
/// the same ports, MSHRs, and memory-controller bandwidth.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: SystemConfig,
    backing: BackingMem,
    tlb: Tlb,
    l1: Cache,
    l1_ports: PortCalendar,
    l1_mshrs: MshrFile,
    llc: Cache,
    llc_ports: PortCalendar,
    llc_mshrs: MshrFile,
    mcs: MemoryControllers,
    stats: MemStats,
    /// Dedicated TLB for an LLC-side accelerator (paper Section 7
    /// ablation); absent in the default core-coupled design.
    dedicated_tlb: Option<Tlb>,
}

impl MemorySystem {
    /// Builds a cold memory system from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if a cache's block size differs from the global
    /// [`BLOCK_BYTES`].
    #[must_use]
    pub fn new(cfg: SystemConfig) -> MemorySystem {
        assert_eq!(cfg.l1d.block_bytes as u64, BLOCK_BYTES, "L1 block size");
        assert_eq!(cfg.llc.block_bytes as u64, BLOCK_BYTES, "LLC block size");
        MemorySystem {
            tlb: Tlb::new(&cfg.tlb),
            l1: Cache::new(&cfg.l1d),
            l1_ports: PortCalendar::new(cfg.l1d.ports),
            l1_mshrs: MshrFile::new(cfg.l1d.mshrs),
            llc: Cache::new(&cfg.llc),
            llc_ports: PortCalendar::new(cfg.llc.ports),
            llc_mshrs: MshrFile::new(cfg.llc.mshrs),
            mcs: MemoryControllers::new(&cfg.memory),
            backing: BackingMem::new(),
            stats: MemStats::default(),
            dedicated_tlb: None,
            cfg,
        }
    }

    /// Installs a dedicated accelerator TLB (LLC-side placement
    /// ablation, paper Section 7: an LLC-side Widx needs "a dedicated
    /// address translation logic").
    pub fn install_dedicated_tlb(&mut self, cfg: &crate::config::TlbConfig) {
        self.dedicated_tlb = Some(Tlb::new(cfg));
    }

    /// Translates through the dedicated accelerator TLB.
    ///
    /// # Panics
    ///
    /// Panics if no dedicated TLB was installed.
    pub fn translate_dedicated(&mut self, addr: VAddr, now: Cycle) -> TlbResult {
        let tlb = self
            .dedicated_tlb
            .as_mut()
            .expect("dedicated TLB installed");
        let r = tlb.translate(addr, now);
        if r.miss {
            self.stats.tlb_misses += 1;
        } else {
            self.stats.tlb_hits += 1;
        }
        r
    }

    /// Timed load that bypasses the L1 and enters at the LLC — the
    /// data path of an LLC-side accelerator. Translation must already
    /// have been performed (see
    /// [`translate_dedicated`](Self::translate_dedicated)).
    pub fn load_llc_direct(
        &mut self,
        addr: VAddr,
        width: usize,
        now: Cycle,
    ) -> (u64, AccessResult) {
        let block = addr.block();
        let port_t = self.llc_ports.reserve(now);
        let value = self.backing.read_uint(addr, width);
        if let Some(done) = self.llc_mshrs.pending(block, port_t) {
            self.stats.l1_misses += 1;
            return (
                value,
                AccessResult {
                    ready: done,
                    level: HitLevel::Coalesced,
                    tlb_miss: false,
                    tlb_ready: now,
                    issue: port_t,
                },
            );
        }
        let (ready, level) = if self.llc.access(block) {
            self.stats.llc_hits += 1;
            (port_t + self.cfg.llc.hit_latency, HitLevel::Llc)
        } else {
            self.stats.llc_misses += 1;
            let mut t = port_t;
            loop {
                match self.llc_mshrs.request(block, t) {
                    MshrOutcome::Merged(done) => {
                        return (
                            value,
                            AccessResult {
                                ready: done,
                                level: HitLevel::Coalesced,
                                tlb_miss: false,
                                tlb_ready: now,
                                issue: port_t,
                            },
                        )
                    }
                    MshrOutcome::Full(earliest) => {
                        self.stats.mshr_wait_cycles += earliest - t;
                        t = earliest;
                    }
                    MshrOutcome::Allocated => break,
                }
            }
            let data = self.mcs.fetch(block, t + self.cfg.llc.hit_latency);
            self.llc.fill(block);
            self.llc_mshrs.complete(block, data);
            (data, HitLevel::Memory)
        };
        (
            value,
            AccessResult {
                ready,
                level,
                tlb_miss: false,
                tlb_ready: now,
                issue: port_t,
            },
        )
    }

    /// LLC-direct store (fire-and-forget like [`store_translated`](Self::store_translated)).
    pub fn store_llc_direct(
        &mut self,
        addr: VAddr,
        width: usize,
        value: u64,
        now: Cycle,
    ) -> AccessResult {
        let block = addr.block();
        let port_t = self.llc_ports.reserve(now);
        self.stats.stores += 1;
        if !self.llc.access(block) {
            self.stats.llc_misses += 1;
            let data = self.mcs.fetch(block, port_t + self.cfg.llc.hit_latency);
            self.llc.fill(block);
            let _ = data;
        } else {
            self.stats.llc_hits += 1;
        }
        self.backing.write_uint(addr, width, value);
        AccessResult {
            ready: port_t + 1,
            level: HitLevel::Llc,
            tlb_miss: false,
            tlb_ready: now,
            issue: port_t,
        }
    }

    /// The system configuration.
    #[must_use]
    pub fn cfg(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Event counters accumulated since the last
    /// [`reset_stats`](MemorySystem::reset_stats).
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Clears the event counters (tag and TLB state are kept, mirroring
    /// the paper's warmed-checkpoint measurement methodology).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.l1.reset_counters();
        self.llc.reset_counters();
        self.tlb.reset_counters();
    }

    /// Peak simultaneous L1 MSHR occupancy observed.
    #[must_use]
    pub fn l1_mshr_peak(&self) -> usize {
        self.l1_mshrs.peak_occupancy()
    }

    // ------------------------------------------------------------------
    // Functional (timing-free) access — used to build workload images and
    // by oracles.
    // ------------------------------------------------------------------

    /// Functional read of `buf.len()` bytes.
    pub fn read_bytes(&self, addr: VAddr, buf: &mut [u8]) {
        self.backing.read_bytes(addr, buf);
    }

    /// Functional write of `bytes`.
    pub fn write_bytes(&mut self, addr: VAddr, bytes: &[u8]) {
        self.backing.write_bytes(addr, bytes);
    }

    /// Functional 64-bit read.
    #[must_use]
    pub fn read_u64(&self, addr: VAddr) -> u64 {
        self.backing.read_u64(addr)
    }

    /// Functional 64-bit write.
    pub fn write_u64(&mut self, addr: VAddr, value: u64) {
        self.backing.write_u64(addr, value);
    }

    /// Functional 32-bit read.
    #[must_use]
    pub fn read_u32(&self, addr: VAddr) -> u32 {
        self.backing.read_u32(addr)
    }

    /// Functional 32-bit write.
    pub fn write_u32(&mut self, addr: VAddr, value: u32) {
        self.backing.write_u32(addr, value);
    }

    /// Functional unsigned read of `width` bytes.
    #[must_use]
    pub fn read_uint(&self, addr: VAddr, width: usize) -> u64 {
        self.backing.read_uint(addr, width)
    }

    /// Functional unsigned write of the low `width` bytes of `value`.
    pub fn write_uint(&mut self, addr: VAddr, width: usize, value: u64) {
        self.backing.write_uint(addr, width, value);
    }

    // ------------------------------------------------------------------
    // Timed access.
    // ------------------------------------------------------------------

    /// Translates `addr` at `now`, modelling TLB hit/miss timing but no
    /// cache access. Exposed separately so the Widx units can implement
    /// the paper's retry-on-TLB-miss semantics (Section 4.3).
    pub fn translate(&mut self, addr: VAddr, now: Cycle) -> TlbResult {
        let r = self.tlb.translate(addr, now);
        if r.miss {
            self.stats.tlb_misses += 1;
        } else {
            self.stats.tlb_hits += 1;
        }
        r
    }

    /// Timed load of `width` bytes at `addr`, including translation.
    /// Returns the loaded value and the access timing.
    pub fn load(&mut self, addr: VAddr, width: usize, now: Cycle) -> (u64, AccessResult) {
        let tlb = self.translate(addr, now);
        let (value, mut result) = self.load_translated(addr, width, tlb.ready);
        result.tlb_miss = tlb.miss;
        (value, result)
    }

    /// Timed load whose translation has already been performed (the
    /// request enters the L1 pipeline at `now`).
    pub fn load_translated(
        &mut self,
        addr: VAddr,
        width: usize,
        now: Cycle,
    ) -> (u64, AccessResult) {
        let (ready, level, issue) = self.block_access(addr.block(), now);
        let value = self.backing.read_uint(addr, width);
        (
            value,
            AccessResult {
                ready,
                level,
                tlb_miss: false,
                tlb_ready: now,
                issue,
            },
        )
    }

    /// Timed store. Stores retire through a store buffer and are not on
    /// the unit's critical path (the paper: "store latency can be hidden
    /// and is not on the critical path of hash table probes"), so the
    /// returned `ready` is merely when the store occupied its L1 port;
    /// the bandwidth and MSHR costs of a write-allocate miss are still
    /// charged.
    pub fn store(&mut self, addr: VAddr, width: usize, value: u64, now: Cycle) -> AccessResult {
        let tlb = self.translate(addr, now);
        let mut r = self.store_translated(addr, width, value, tlb.ready);
        r.tlb_miss = tlb.miss;
        r
    }

    /// Timed store whose translation has already been performed.
    pub fn store_translated(
        &mut self,
        addr: VAddr,
        width: usize,
        value: u64,
        now: Cycle,
    ) -> AccessResult {
        let tlb = crate::tlb::TlbResult {
            ready: now,
            miss: false,
        };
        let block = addr.block();
        let port_t = self.l1_ports.reserve(tlb.ready);
        self.stats.stores += 1;
        if self.l1_mshrs.pending(block, port_t).is_none() && !self.l1.access(block) {
            // Write-allocate fetch, charged to bandwidth but not waited on.
            if let MshrOutcome::Allocated = self.l1_mshrs.request(block, port_t) {
                let fill = self.downstream_fill(block, port_t);
                self.l1_mshrs.complete(block, fill);
            }
        }
        self.backing.write_uint(addr, width, value);
        AccessResult {
            ready: port_t + 1,
            level: HitLevel::L1,
            tlb_miss: tlb.miss,
            tlb_ready: tlb.ready,
            issue: port_t,
        }
    }

    /// Non-binding prefetch (the `TOUCH` instruction): starts a fill of
    /// the enclosing block if it is absent and an MSHR is free; dropped
    /// otherwise. Returns the cycle the data will be resident (for
    /// introspection; requesters do not wait on it).
    pub fn prefetch(&mut self, addr: VAddr, now: Cycle) -> Option<Cycle> {
        let tlb = self.translate(addr, now);
        self.prefetch_translated(addr, tlb.ready)
    }

    /// Timed prefetch whose translation has already been performed.
    pub fn prefetch_translated(&mut self, addr: VAddr, now: Cycle) -> Option<Cycle> {
        let block = addr.block();
        let port_t = self.l1_ports.reserve(now);
        self.stats.prefetches += 1;
        if let Some(done) = self.l1_mshrs.pending(block, port_t) {
            return Some(done);
        }
        if self.l1.access(block) {
            return Some(port_t);
        }
        match self.l1_mshrs.request(block, port_t) {
            MshrOutcome::Allocated => {
                let fill = self.downstream_fill(block, port_t);
                self.l1_mshrs.complete(block, fill);
                Some(fill)
            }
            MshrOutcome::Merged(done) => Some(done),
            // Prefetches are discardable; never stall on a full MSHR file.
            MshrOutcome::Full(_) => None,
        }
    }

    /// Core of the timed load path: L1 ports → MSHRs → crossbar → LLC →
    /// memory controllers. Returns `(data-ready, level, port cycle)`.
    fn block_access(&mut self, block: BlockAddr, now: Cycle) -> (Cycle, HitLevel, Cycle) {
        let port_t = self.l1_ports.reserve(now);
        if let Some(done) = self.l1_mshrs.pending(block, port_t) {
            // The block is already being fetched: merge.
            self.stats.l1_misses += 1;
            return (done, HitLevel::Coalesced, port_t);
        }
        if self.l1.access(block) {
            self.stats.l1_hits += 1;
            return (port_t + self.cfg.l1d.hit_latency, HitLevel::L1, port_t);
        }
        self.stats.l1_misses += 1;
        let mut t = port_t;
        loop {
            match self.l1_mshrs.request(block, t) {
                MshrOutcome::Merged(done) => return (done, HitLevel::Coalesced, port_t),
                MshrOutcome::Full(earliest) => {
                    // "Once these are exhausted, the cache stops accepting
                    // new memory requests" (paper Section 3.2).
                    self.stats.mshr_wait_cycles += earliest - t;
                    t = earliest;
                }
                MshrOutcome::Allocated => break,
            }
        }
        let (fill, level) = self.downstream_fill_classified(block, t);
        self.l1_mshrs.complete(block, fill);
        (fill, level, port_t)
    }

    /// LLC + memory path shared by loads, write-allocates, and
    /// prefetches. Returns the L1 fill cycle.
    fn downstream_fill(&mut self, block: BlockAddr, miss_at: Cycle) -> Cycle {
        self.downstream_fill_classified(block, miss_at).0
    }

    fn downstream_fill_classified(
        &mut self,
        block: BlockAddr,
        miss_at: Cycle,
    ) -> (Cycle, HitLevel) {
        let at_llc = miss_at + self.cfg.xbar_latency;
        let result = if self.llc.access(block) {
            self.stats.llc_hits += 1;
            (
                at_llc + self.cfg.llc.hit_latency + self.cfg.xbar_latency,
                HitLevel::Llc,
            )
        } else {
            self.stats.llc_misses += 1;
            let at_mc = at_llc + self.cfg.llc.hit_latency; // tag check before going off-chip
            let data_at_llc = self.mcs.fetch(block, at_mc);
            self.llc.fill(block);
            (data_at_llc + self.cfg.xbar_latency, HitLevel::Memory)
        };
        self.l1.fill(block);
        result
    }

    // ------------------------------------------------------------------
    // Warming — the paper launches measurements "from checkpoints with
    // warmed caches"; these helpers install blocks without timing.
    // ------------------------------------------------------------------

    /// Installs the block containing `addr` in the L1 and LLC without
    /// charging any time or counters.
    pub fn warm_block(&mut self, addr: VAddr) {
        let block = addr.block();
        self.llc.fill(block);
        self.l1.fill(block);
    }

    /// Installs the block in the LLC only.
    pub fn warm_llc_block(&mut self, addr: VAddr) {
        self.llc.fill(addr.block());
    }

    /// L1 miss ratio observed so far.
    #[must_use]
    pub fn l1_miss_ratio(&self) -> f64 {
        self.stats.l1_miss_ratio()
    }

    /// LLC miss ratio observed so far.
    #[must_use]
    pub fn llc_miss_ratio(&self) -> f64 {
        self.stats.llc_miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::default())
    }

    #[test]
    fn cold_load_goes_to_memory() {
        let mut m = sys();
        m.write_u64(VAddr::new(0x8000), 7);
        let (v, r) = m.load(VAddr::new(0x8000), 8, 0);
        assert_eq!(v, 7);
        assert_eq!(r.level, HitLevel::Memory);
        assert!(r.tlb_miss);
        // walk(40) + xbar(4) + llc tag(6) + dram(90) + xbar(4) ≈ 144+
        assert!(r.ready >= 140, "ready {}", r.ready);
    }

    #[test]
    fn second_load_hits_l1() {
        let mut m = sys();
        m.write_u64(VAddr::new(0x8000), 7);
        let (_, first) = m.load(VAddr::new(0x8000), 8, 0);
        let (_, second) = m.load(VAddr::new(0x8000), 8, first.ready);
        assert_eq!(second.level, HitLevel::L1);
        assert_eq!(second.ready, second.issue + 2);
    }

    #[test]
    fn same_block_concurrent_loads_coalesce() {
        let mut m = sys();
        let a = VAddr::new(0x8000);
        let (_, first) = m.load(a, 8, 0);
        // Before the first completes, a second load to the same block.
        let (_, second) = m.load(a + 8, 8, first.tlb_ready + 1);
        assert_eq!(second.level, HitLevel::Coalesced);
        assert_eq!(second.ready, first.ready);
    }

    #[test]
    fn warm_block_makes_l1_hit() {
        let mut m = sys();
        m.warm_block(VAddr::new(0x8000));
        // Pre-translate so only cache timing is measured.
        let _ = m.translate(VAddr::new(0x8000), 0);
        let (_, r) = m.load(VAddr::new(0x8000), 8, 100);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn llc_hit_between_l1_and_memory() {
        let mut m = sys();
        m.warm_llc_block(VAddr::new(0x8000));
        let _ = m.translate(VAddr::new(0x8000), 0);
        let (_, r) = m.load(VAddr::new(0x8000), 8, 100);
        assert_eq!(r.level, HitLevel::Llc);
        // xbar + llc + xbar = 14 cycles past the port.
        assert_eq!(r.ready, r.issue + 14);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut m = sys();
        // Issue more distinct-block misses at the same cycle than there
        // are MSHRs (10): the 11th must wait.
        let mut results = Vec::new();
        for i in 0..12u64 {
            let addr = VAddr::new(0x10_000 + i * 64);
            let _ = m.translate(addr, 0);
            let (_, r) = m.load(addr, 8, 0);
            results.push(r);
        }
        assert!(m.stats().mshr_wait_cycles > 0, "expected MSHR stalls");
        assert!(m.l1_mshr_peak() <= 10);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut m = sys();
        let (_, _) = m.load(VAddr::new(0x8000), 8, 0);
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().llc_misses, 1);
        m.reset_stats();
        assert_eq!(m.stats().l1_misses, 0);
    }

    #[test]
    fn store_is_nonblocking_but_charged() {
        let mut m = sys();
        let r = m.store(VAddr::new(0x9000), 8, 42, 0);
        assert_eq!(m.read_u64(VAddr::new(0x9000)), 42);
        // Ready right after the port, not after DRAM.
        assert!(r.ready <= r.issue + 1);
        assert_eq!(m.stats().stores, 1);
        assert_eq!(m.stats().llc_misses, 1, "write-allocate fill charged");
    }

    #[test]
    fn prefetch_hides_latency() {
        let mut m = sys();
        let a = VAddr::new(0xa000);
        let done = m.prefetch(a, 0).expect("prefetch accepted");
        let (_, r) = m.load(a, 8, done + 1);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn prefetch_of_resident_block_is_cheap() {
        let mut m = sys();
        m.warm_block(VAddr::new(0xb000));
        let _ = m.translate(VAddr::new(0xb000), 0);
        let done = m.prefetch(VAddr::new(0xb000), 10).unwrap();
        assert!(done <= 12);
    }

    #[test]
    fn l1_evictions_fall_back_to_llc() {
        let mut m = sys();
        // Touch 3x the L1 capacity of distinct blocks, then re-touch the
        // first: it should have been evicted from L1 but still be in the
        // 4 MB LLC.
        let blocks = 3 * (32 * 1024 / 64) as u64;
        let mut t = 0;
        for i in 0..blocks {
            let addr = VAddr::new(0x100_000 + i * 64);
            let (_, r) = m.load(addr, 8, t);
            t = r.ready;
        }
        let (_, r) = m.load(VAddr::new(0x100_000), 8, t);
        assert_eq!(r.level, HitLevel::Llc);
    }
}
