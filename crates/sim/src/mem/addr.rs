//! Virtual addresses and their block/page decompositions.

use std::fmt;
use std::ops::{Add, Sub};

/// Cache-block size in bytes (Table 2: 64 B blocks at every level).
pub const BLOCK_BYTES: u64 = 64;
/// Page size in bytes.
pub const PAGE_BYTES: u64 = 4096;

/// A virtual address in the simulated application's address space.
///
/// Widx operates entirely "within the active application's virtual
/// address space" (paper Section 4.1), sharing the host core's MMU, so
/// the simulation is virtually addressed throughout; translation is
/// modelled only for its timing (TLB hits/misses and page walks).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(u64);

impl VAddr {
    /// The null address, used as the NULL pointer in simulated data
    /// structures.
    pub const NULL: VAddr = VAddr(0);

    /// Wraps a raw 64-bit virtual address.
    #[must_use]
    pub fn new(addr: u64) -> VAddr {
        VAddr(addr)
    }

    /// The raw address value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Whether this is the null address.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The cache block containing this address.
    #[must_use]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_BYTES)
    }

    /// The page containing this address.
    #[must_use]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// Byte offset within the containing page.
    #[must_use]
    pub fn page_offset(self) -> usize {
        (self.0 % PAGE_BYTES) as usize
    }

    /// The address `bytes` higher.
    #[must_use]
    pub fn offset(self, bytes: i64) -> VAddr {
        VAddr(self.0.wrapping_add_signed(bytes))
    }

    /// Rounds the address up to the next multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[must_use]
    pub fn align_up(self, align: u64) -> VAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        VAddr((self.0 + align - 1) & !(align - 1))
    }
}

impl Add<u64> for VAddr {
    type Output = VAddr;
    fn add(self, rhs: u64) -> VAddr {
        VAddr(self.0 + rhs)
    }
}

impl Sub<VAddr> for VAddr {
    type Output = u64;
    fn sub(self, rhs: VAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-block number (address divided by [`BLOCK_BYTES`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// First byte address of the block.
    #[must_use]
    pub fn base(self) -> VAddr {
        VAddr(self.0 * BLOCK_BYTES)
    }
}

/// A page number (address divided by [`PAGE_BYTES`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr(pub u64);

impl PageAddr {
    /// First byte address of the page.
    #[must_use]
    pub fn base(self) -> VAddr {
        VAddr(self.0 * PAGE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_page_decomposition() {
        let a = VAddr::new(4096 + 65);
        assert_eq!(a.block(), BlockAddr((4096 + 65) / 64));
        assert_eq!(a.page(), PageAddr(1));
        assert_eq!(a.page_offset(), 65);
        assert_eq!(a.block().base(), VAddr::new(4096 + 64));
        assert_eq!(a.page().base(), VAddr::new(4096));
    }

    #[test]
    fn same_block_detection() {
        let a = VAddr::new(100);
        let b = VAddr::new(127);
        let c = VAddr::new(128);
        assert_eq!(a.block(), b.block());
        assert_ne!(a.block(), c.block());
    }

    #[test]
    fn align_up() {
        assert_eq!(VAddr::new(65).align_up(64), VAddr::new(128));
        assert_eq!(VAddr::new(64).align_up(64), VAddr::new(64));
        assert_eq!(VAddr::new(0).align_up(4096), VAddr::new(0));
    }

    #[test]
    fn arithmetic() {
        let a = VAddr::new(1000);
        assert_eq!(a + 24, VAddr::new(1024));
        assert_eq!(a.offset(-8), VAddr::new(992));
        assert_eq!((a + 24) - a, 24);
    }

    #[test]
    fn null() {
        assert!(VAddr::NULL.is_null());
        assert!(!VAddr::new(1).is_null());
    }
}
