//! Functional memory: a sparse, paged byte store.
//!
//! The timing models in this crate decide *when* data arrives; the
//! backing store decides *what* the data is. Keeping real bytes ensures
//! the simulated Widx accelerator computes real join results that can be
//! checked against a software oracle.

use std::collections::HashMap;

use super::addr::{PageAddr, VAddr, PAGE_BYTES};

/// A sparse byte-addressable memory, allocated page-by-page on first
/// touch.
#[derive(Clone, Debug, Default)]
pub struct BackingMem {
    pages: HashMap<PageAddr, Box<[u8]>>,
}

impl BackingMem {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> BackingMem {
        BackingMem::default()
    }

    /// Number of distinct pages touched so far.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, page: PageAddr) -> &mut [u8] {
        self.pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `addr`. Unwritten memory reads
    /// as zero.
    pub fn read_bytes(&self, addr: VAddr, buf: &mut [u8]) {
        let mut cursor = addr;
        let mut filled = 0;
        while filled < buf.len() {
            let off = cursor.page_offset();
            let chunk = (PAGE_BYTES as usize - off).min(buf.len() - filled);
            match self.pages.get(&cursor.page()) {
                Some(page) => buf[filled..filled + chunk].copy_from_slice(&page[off..off + chunk]),
                None => buf[filled..filled + chunk].fill(0),
            }
            filled += chunk;
            cursor = cursor.offset(chunk as i64);
        }
    }

    /// Writes `bytes` starting at `addr`.
    pub fn write_bytes(&mut self, addr: VAddr, bytes: &[u8]) {
        let mut cursor = addr;
        let mut written = 0;
        while written < bytes.len() {
            let off = cursor.page_offset();
            let chunk = (PAGE_BYTES as usize - off).min(bytes.len() - written);
            let page = self.page_mut(cursor.page());
            page[off..off + chunk].copy_from_slice(&bytes[written..written + chunk]);
            written += chunk;
            cursor = cursor.offset(chunk as i64);
        }
    }

    /// Reads an unsigned little-endian value of `width` bytes (1, 2, 4,
    /// or 8), zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    #[must_use]
    pub fn read_uint(&self, addr: VAddr, width: usize) -> u64 {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "unsupported access width {width}"
        );
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..width]);
        u64::from_le_bytes(buf)
    }

    /// Writes the low `width` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    pub fn write_uint(&mut self, addr: VAddr, width: usize, value: u64) {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "unsupported access width {width}"
        );
        self.write_bytes(addr, &value.to_le_bytes()[..width]);
    }

    /// Convenience 64-bit read.
    #[must_use]
    pub fn read_u64(&self, addr: VAddr) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Convenience 64-bit write.
    pub fn write_u64(&mut self, addr: VAddr, value: u64) {
        self.write_uint(addr, 8, value);
    }

    /// Convenience 32-bit read.
    #[must_use]
    pub fn read_u32(&self, addr: VAddr) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Convenience 32-bit write.
    pub fn write_u32(&mut self, addr: VAddr, value: u32) {
        self.write_uint(addr, 4, u64::from(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let mem = BackingMem::new();
        assert_eq!(mem.read_u64(VAddr::new(0x5000)), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut mem = BackingMem::new();
        mem.write_u64(VAddr::new(0x1000), 0xdead_beef_cafe_f00d);
        assert_eq!(mem.read_u64(VAddr::new(0x1000)), 0xdead_beef_cafe_f00d);
        assert_eq!(mem.read_u32(VAddr::new(0x1000)), 0xcafe_f00d);
        assert_eq!(mem.read_uint(VAddr::new(0x1000), 1), 0x0d);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = BackingMem::new();
        let addr = VAddr::new(PAGE_BYTES - 3);
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn partial_width_write_preserves_neighbors() {
        let mut mem = BackingMem::new();
        mem.write_u64(VAddr::new(64), u64::MAX);
        mem.write_uint(VAddr::new(64), 2, 0);
        assert_eq!(mem.read_u64(VAddr::new(64)), 0xffff_ffff_ffff_0000);
    }

    #[test]
    fn bulk_bytes_round_trip() {
        let mut mem = BackingMem::new();
        let data: Vec<u8> = (0..=255).collect();
        mem.write_bytes(VAddr::new(10_000), &data);
        let mut back = vec![0u8; 256];
        mem.read_bytes(VAddr::new(10_000), &mut back);
        assert_eq!(back, data);
    }
}
