//! Port calendars: model a resource with `k` channels, each usable once
//! per cycle (cache ports, page-walkers, ...).

use crate::Cycle;

/// Tracks when each of `k` identical single-cycle ports next becomes
/// free, and grants requests to the earliest available one.
#[derive(Clone, Debug)]
pub struct PortCalendar {
    next_free: Vec<Cycle>,
    grants: u64,
    conflict_cycles: u64,
}

impl PortCalendar {
    /// Creates a calendar with `ports` channels, all free at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn new(ports: usize) -> PortCalendar {
        assert!(ports > 0, "at least one port is required");
        PortCalendar {
            next_free: vec![0; ports],
            grants: 0,
            conflict_cycles: 0,
        }
    }

    /// Reserves a port at or after `now`; returns the cycle at which the
    /// request actually occupies the port.
    pub fn reserve(&mut self, now: Cycle) -> Cycle {
        let slot = self
            .next_free
            .iter_mut()
            .min()
            .expect("calendar has at least one port");
        let start = (*slot).max(now);
        *slot = start + 1;
        self.grants += 1;
        self.conflict_cycles += start - now;
        start
    }

    /// Number of ports.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.next_free.len()
    }

    /// Total grants issued.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total cycles requests spent waiting for a free port.
    #[must_use]
    pub fn conflict_cycles(&self) -> u64 {
        self.conflict_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_serializes() {
        let mut p = PortCalendar::new(1);
        assert_eq!(p.reserve(10), 10);
        assert_eq!(p.reserve(10), 11);
        assert_eq!(p.reserve(10), 12);
        assert_eq!(p.conflict_cycles(), 3);
    }

    #[test]
    fn two_ports_allow_pairs() {
        let mut p = PortCalendar::new(2);
        assert_eq!(p.reserve(5), 5);
        assert_eq!(p.reserve(5), 5);
        assert_eq!(p.reserve(5), 6);
        assert_eq!(p.grants(), 3);
    }

    #[test]
    fn idle_gaps_are_free() {
        let mut p = PortCalendar::new(1);
        assert_eq!(p.reserve(0), 0);
        assert_eq!(p.reserve(100), 100);
        assert_eq!(p.conflict_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = PortCalendar::new(0);
    }
}
