//! Set-associative cache tag array with LRU replacement.
//!
//! Only tags are modelled — data always comes from the functional
//! [`BackingMem`](super::BackingMem) — but the tag state is exact, so hit
//! and miss ratios emerge from the workload's real reference stream.

use crate::config::CacheConfig;

use super::addr::BlockAddr;

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    /// LRU timestamp: larger = more recently used.
    stamp: u64,
}

/// A cache tag array.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two.
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Cache {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        stamp: 0
                    };
                    cfg.assoc
                ];
                sets
            ],
            set_mask: sets as u64 - 1,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        (block.0 & self.set_mask) as usize
    }

    /// Probes for `block`, updating LRU state and hit/miss counters.
    /// Returns whether the block was present.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == block.0) {
            way.stamp = clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Probes for `block` without disturbing LRU state or counters.
    #[must_use]
    pub fn peek(&self, block: BlockAddr) -> bool {
        let set = &self.sets[self.set_index(block)];
        set.iter().any(|w| w.valid && w.tag == block.0)
    }

    /// Inserts `block`, evicting the LRU way if the set is full. Returns
    /// the evicted block, if any.
    pub fn fill(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == block.0) {
            // Already present (e.g. racing fills of coalesced misses).
            way.stamp = clock;
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.stamp } else { 0 })
            .expect("associativity >= 1");
        let evicted = victim.valid.then_some(BlockAddr(victim.tag));
        *victim = Way {
            tag: block.0,
            valid: true,
            stamp: clock,
        };
        evicted
    }

    /// Invalidates `block` if present; returns whether it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == block.0) {
            way.valid = false;
            true
        } else {
            false
        }
    }

    /// Lifetime hit count.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over the cache's lifetime (0 when never accessed).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets the hit/miss counters, keeping the tag state.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways of 64 B blocks = 512 B.
        Cache::new(&CacheConfig {
            size_bytes: 512,
            assoc: 2,
            block_bytes: 64,
            ports: 1,
            mshrs: 4,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let b = BlockAddr(5);
        assert!(!c.access(b));
        c.fill(b);
        assert!(c.access(b));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.fill(BlockAddr(0));
        c.fill(BlockAddr(4));
        // Touch 0 so 4 becomes LRU.
        assert!(c.access(BlockAddr(0)));
        let evicted = c.fill(BlockAddr(8));
        assert_eq!(evicted, Some(BlockAddr(4)));
        assert!(c.peek(BlockAddr(0)));
        assert!(c.peek(BlockAddr(8)));
        assert!(!c.peek(BlockAddr(4)));
    }

    #[test]
    fn fill_of_present_block_is_idempotent() {
        let mut c = tiny();
        c.fill(BlockAddr(3));
        assert_eq!(c.fill(BlockAddr(3)), None);
        assert!(c.peek(BlockAddr(3)));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        for b in 0..4 {
            c.fill(BlockAddr(b));
        }
        for b in 0..4 {
            assert!(c.peek(BlockAddr(b)), "block {b} should be resident");
        }
    }

    #[test]
    fn invalidate() {
        let mut c = tiny();
        c.fill(BlockAddr(7));
        assert!(c.invalidate(BlockAddr(7)));
        assert!(!c.peek(BlockAddr(7)));
        assert!(!c.invalidate(BlockAddr(7)));
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = tiny();
        c.fill(BlockAddr(1));
        let (h, m) = (c.hits(), c.misses());
        let _ = c.peek(BlockAddr(1));
        let _ = c.peek(BlockAddr(2));
        assert_eq!((c.hits(), c.misses()), (h, m));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // 16 distinct blocks round-robin >> 8-block capacity.
        for round in 0..4 {
            for b in 0..16u64 {
                if !c.access(BlockAddr(b)) {
                    c.fill(BlockAddr(b));
                }
                let _ = round;
            }
        }
        assert!(
            c.miss_ratio() > 0.9,
            "expected thrashing, got {}",
            c.miss_ratio()
        );
    }
}
