//! The simulated memory system: functional backing store plus the timing
//! models for caches, MSHRs, ports, and memory controllers, composed into
//! [`MemorySystem`].

mod addr;
mod alloc;
mod backing;
mod cache;
mod memctrl;
mod mshr;
mod ports;
mod system;

pub use addr::{BlockAddr, PageAddr, VAddr, BLOCK_BYTES, PAGE_BYTES};
pub use alloc::{Region, RegionAllocator};
pub use backing::BackingMem;
pub use cache::Cache;
pub use memctrl::MemoryControllers;
pub use mshr::{MshrFile, MshrOutcome};
pub use ports::PortCalendar;
pub use system::{AccessResult, HitLevel, MemorySystem};
