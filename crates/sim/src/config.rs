//! System configuration — the evaluation parameters of Table 2.

/// Geometry and timing of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Block (line) size in bytes.
    pub block_bytes: usize,
    /// Number of access ports (simultaneous accesses per cycle).
    pub ports: usize,
    /// Miss-status holding registers (outstanding misses); `0` = untracked.
    pub mshrs: usize,
    /// Load-to-use latency for a hit, in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    #[must_use]
    pub fn sets(&self) -> usize {
        let blocks = self.size_bytes / self.block_bytes;
        assert!(
            blocks.is_multiple_of(self.assoc) && self.size_bytes.is_multiple_of(self.block_bytes),
            "cache geometry must divide evenly"
        );
        blocks / self.assoc
    }
}

/// TLB geometry and page-walk timing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of TLB entries (fully associative, LRU).
    pub entries: usize,
    /// Maximum concurrent page walks (Table 2: 2 in-flight translations).
    pub in_flight: usize,
    /// Latency of one page walk in cycles (walks mostly hit in the cache
    /// hierarchy; modelled as a constant).
    pub walk_latency: u64,
    /// Translation page size in bytes. Large (256 KB default): DBMS
    /// heaps sit on large pages, which is what makes the paper's
    /// worst-case 3% TLB miss ratio on a 1 GB index possible.
    pub page_bytes: u64,
}

/// Memory-controller and DRAM timing.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryConfig {
    /// Number of memory controllers (block-interleaved).
    pub controllers: usize,
    /// Peak bandwidth per controller in bytes per core cycle
    /// (12.8 GB/s at 2 GHz = 6.4 B/cycle).
    pub peak_bytes_per_cycle: f64,
    /// Achievable fraction of peak bandwidth (the paper uses 70 %,
    /// i.e. ~9 GB/s effective, citing DDR3 studies).
    pub efficiency: f64,
    /// DRAM access latency in cycles (45 ns at 2 GHz = 90 cycles).
    pub access_latency: u64,
}

impl MemoryConfig {
    /// Cycles a controller is occupied transferring one cache block.
    #[must_use]
    pub fn cycles_per_block(&self, block_bytes: usize) -> u64 {
        let effective = self.peak_bytes_per_cycle * self.efficiency;
        (block_bytes as f64 / effective).ceil() as u64
    }
}

/// Out-of-order core parameters (Xeon-like baseline of Table 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OooConfig {
    /// Dispatch/retire width (instructions per cycle).
    pub width: usize,
    /// Reorder-buffer capacity.
    pub rob: usize,
    /// Front-end refill cycles after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
}

/// In-order core parameters (Cortex-A8-like comparison point).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InOrderConfig {
    /// Issue width.
    pub width: usize,
    /// Maximum outstanding data-cache misses before issue stalls
    /// (a simple in-order pipeline supports limited hit-under-miss).
    pub max_outstanding_misses: usize,
    /// Refetch cycles after a mispredicted branch (shallow pipeline).
    pub mispredict_penalty: u64,
}

/// The full simulated system — defaults reproduce Table 2 of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Core and accelerator clock in GHz (for ns ↔ cycle conversions).
    pub freq_ghz: f64,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// One-way interconnect (crossbar) latency between L1 and LLC.
    pub xbar_latency: u64,
    /// TLB shared by the core and Widx.
    pub tlb: TlbConfig,
    /// Main memory.
    pub memory: MemoryConfig,
    /// OoO baseline core.
    pub ooo: OooConfig,
    /// In-order comparison core.
    pub inorder: InOrderConfig,
}

impl Default for SystemConfig {
    /// Table 2: 40 nm, 2 GHz; 32 KB split L1 with 2 ports, 64 B blocks,
    /// 10 MSHRs, 2-cycle load-to-use; 4 MB LLC with 6-cycle hit latency;
    /// 4-cycle crossbar; 2 MCs at 12.8 GB/s and 45 ns access latency;
    /// OoO 4-wide with 128-entry ROB; in-order 2-wide; TLB with
    /// 2 in-flight translations.
    fn default() -> SystemConfig {
        SystemConfig {
            freq_ghz: 2.0,
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                block_bytes: 64,
                ports: 2,
                mshrs: 10,
                hit_latency: 2,
            },
            llc: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                assoc: 16,
                block_bytes: 64,
                ports: 4,
                mshrs: 32,
                hit_latency: 6,
            },
            xbar_latency: 4,
            tlb: TlbConfig {
                entries: 192,
                in_flight: 2,
                walk_latency: 40,
                page_bytes: 256 * 1024,
            },
            memory: MemoryConfig {
                controllers: 2,
                peak_bytes_per_cycle: 6.4,
                efficiency: 0.7,
                access_latency: 90,
            },
            ooo: OooConfig {
                width: 4,
                rob: 128,
                mispredict_penalty: 15,
            },
            inorder: InOrderConfig {
                width: 2,
                max_outstanding_misses: 1,
                mispredict_penalty: 13,
            },
        }
    }
}

impl SystemConfig {
    /// Converts nanoseconds to cycles at the configured frequency.
    #[must_use]
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.freq_ghz).round() as u64
    }

    /// Total round-trip latency of an LLC hit as seen by an L1 miss
    /// (crossbar there + LLC array + crossbar back).
    #[must_use]
    pub fn llc_round_trip(&self) -> u64 {
        self.xbar_latency + self.llc.hit_latency + self.xbar_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = SystemConfig::default();
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.ports, 2);
        assert_eq!(c.l1d.mshrs, 10);
        assert_eq!(c.l1d.hit_latency, 2);
        assert_eq!(c.llc.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.llc.hit_latency, 6);
        assert_eq!(c.xbar_latency, 4);
        assert_eq!(c.memory.controllers, 2);
        assert_eq!(c.memory.access_latency, 90);
        assert_eq!(c.ooo.width, 4);
        assert_eq!(c.ooo.rob, 128);
        assert_eq!(c.inorder.width, 2);
        assert_eq!(c.tlb.in_flight, 2);
    }

    #[test]
    fn geometry() {
        let c = SystemConfig::default();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.llc.sets(), 4096);
    }

    #[test]
    fn ns_conversion() {
        let c = SystemConfig::default();
        assert_eq!(c.ns_to_cycles(45.0), 90);
    }

    #[test]
    fn bandwidth_cycles_per_block() {
        let c = SystemConfig::default();
        // 64 B at 6.4 B/cycle * 0.7 efficiency = 14.28 -> 15 cycles.
        assert_eq!(c.memory.cycles_per_block(64), 15);
        let full = MemoryConfig {
            efficiency: 1.0,
            ..c.memory
        };
        assert_eq!(full.cycles_per_block(64), 10);
    }

    #[test]
    fn llc_round_trip_latency() {
        assert_eq!(SystemConfig::default().llc_round_trip(), 14);
    }
}
