//! Trace-driven core models: the aggressive out-of-order baseline
//! (Xeon-like) and the in-order comparison point (Cortex-A8-like) of
//! Table 2.

mod inorder;
mod ooo;

pub use inorder::run_inorder;
pub use ooo::run_ooo;

use crate::Cycle;

/// Result of replaying a trace on a core model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreRunResult {
    /// Total cycles from first dispatch to last retire.
    pub cycles: Cycle,
    /// µops retired.
    pub retired: u64,
    /// Tuples (probe keys) covered by the trace.
    pub tuples: u64,
}

impl CoreRunResult {
    /// Mean cycles per tuple (`NaN`-free: 0 when the trace has no
    /// tuples).
    #[must_use]
    pub fn cycles_per_tuple(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.cycles as f64 / self.tuples as f64
        }
    }
}
