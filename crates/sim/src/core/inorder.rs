//! The in-order comparison core (Cortex-A8-like: 2-wide).
//!
//! µops issue strictly in program order, at most `width` per cycle,
//! stalling at issue until their operands are ready (scoreboarded
//! stall-at-use), and **complete in order** — a missing load backs up
//! everything younger, which is the fundamental reason a simple pipeline
//! exposes no memory-level parallelism across probes. Hit-under-miss is
//! limited to `max_outstanding_misses` data-cache misses.

use crate::config::InOrderConfig;
use crate::mem::{HitLevel, MemorySystem};
use crate::trace::{Trace, UopKind};
use crate::Cycle;

use super::CoreRunResult;

/// Replays `trace` on the in-order core model starting at `start`.
pub fn run_inorder(
    cfg: &InOrderConfig,
    trace: &Trace,
    mem: &mut MemorySystem,
    start: Cycle,
) -> CoreRunResult {
    let n = trace.len();
    if n == 0 {
        return CoreRunResult {
            cycles: 0,
            retired: 0,
            tuples: trace.tuples() as u64,
        };
    }
    let width = cfg.width.max(1);
    let miss_slots = cfg.max_outstanding_misses.max(1);
    let mut complete: Vec<Cycle> = vec![0; n];
    let mut issue: Vec<Cycle> = vec![0; n];
    // Completion times of the most recent outstanding misses.
    let mut miss_ring: Vec<Cycle> = vec![0; miss_slots];
    let mut miss_cursor = 0usize;
    // Cycle before which the front end cannot deliver µops.
    let mut fetch_barrier: Cycle = 0;
    // Cycle before which nothing may issue (blocking-cache stall).
    let mut issue_barrier: Cycle = 0;

    for (i, uop) in trace.uops().iter().enumerate() {
        let mut t = start.max(fetch_barrier).max(issue_barrier);
        if i > 0 {
            t = t.max(issue[i - 1]); // program order
        }
        if i >= width {
            t = t.max(issue[i - width] + 1); // issue bandwidth
        }
        for dep in uop.deps.into_iter().flatten() {
            t = t.max(complete[dep as usize]); // stall until operands ready
        }
        let raw_complete = match uop.kind {
            UopKind::Comp { latency } => t + Cycle::from(latency),
            UopKind::Load { addr, width } => {
                // Limited hit-under-miss: wait for a free miss slot
                // before a load may leave the pipeline.
                t = t.max(miss_ring[miss_cursor]);
                let (_, r) = mem.load(addr, width as usize, t);
                if r.level != HitLevel::L1 {
                    if miss_slots == 1 {
                        // A blocking L1-D (Cortex-A8-style): the whole
                        // pipeline stalls until the fill returns.
                        issue_barrier = issue_barrier.max(r.ready);
                    } else {
                        miss_ring[miss_cursor] = r.ready;
                        miss_cursor = (miss_cursor + 1) % miss_slots;
                    }
                }
                r.ready
            }
            UopKind::Store { addr, width, value } => {
                mem.store(addr, width as usize, value, t).ready
            }
            UopKind::Branch { mispredict } => {
                let resolve = t + 1;
                if mispredict {
                    fetch_barrier = fetch_barrier.max(resolve + cfg.mispredict_penalty);
                }
                resolve
            }
        };
        // In-order completion: younger µops cannot complete before
        // older ones.
        complete[i] = if i > 0 {
            raw_complete.max(complete[i - 1])
        } else {
            raw_complete
        };
        issue[i] = t;
    }

    let end = complete.iter().copied().max().unwrap_or(start);
    CoreRunResult {
        cycles: end.saturating_sub(start) + 1,
        retired: n as u64,
        tuples: trace.tuples() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OooConfig, SystemConfig};
    use crate::core::run_ooo;
    use crate::mem::VAddr;

    fn setup() -> (InOrderConfig, MemorySystem) {
        let sys = SystemConfig::default();
        (sys.inorder.clone(), MemorySystem::new(sys))
    }

    #[test]
    fn comp_throughput_is_two_wide() {
        let (cfg, mut mem) = setup();
        let mut t = Trace::new();
        for _ in 0..200 {
            t.comp(1, [None, None]);
        }
        let r = run_inorder(&cfg, &t, &mut mem, 0);
        // 200 independent unit ops at 2-wide ≈ 100 cycles.
        assert!(r.cycles >= 100 && r.cycles <= 115, "cycles {}", r.cycles);
    }

    #[test]
    fn slower_than_ooo_on_independent_misses() {
        let sys = SystemConfig::default();
        let mut t = Trace::new();
        for i in 0..64u64 {
            t.mark_tuple();
            t.load(VAddr::new(0x400_000 + i * 4096), 8, [None, None]);
        }
        let r_in = run_inorder(&sys.inorder, &t, &mut MemorySystem::new(sys.clone()), 0);
        let r_ooo = run_ooo(
            &OooConfig {
                width: 4,
                rob: 128,
                mispredict_penalty: 12,
            },
            &t,
            &mut MemorySystem::new(sys),
            0,
        );
        assert!(
            r_in.cycles > r_ooo.cycles,
            "in-order {} should trail OoO {}",
            r_in.cycles,
            r_ooo.cycles
        );
    }

    #[test]
    fn miss_slots_bound_mlp() {
        let sys = SystemConfig::default();
        let one = InOrderConfig {
            width: 2,
            max_outstanding_misses: 1,
            mispredict_penalty: 4,
        };
        let four = InOrderConfig {
            width: 2,
            max_outstanding_misses: 4,
            mispredict_penalty: 4,
        };
        let mut t = Trace::new();
        for i in 0..32u64 {
            t.load(VAddr::new(0x500_000 + i * 4096), 8, [None, None]);
        }
        let r1 = run_inorder(&one, &t, &mut MemorySystem::new(sys.clone()), 0);
        let r4 = run_inorder(&four, &t, &mut MemorySystem::new(sys), 0);
        assert!(
            r4.cycles < r1.cycles,
            "4 miss slots {} should beat 1 slot {}",
            r4.cycles,
            r1.cycles
        );
    }
}
