//! The out-of-order baseline core.
//!
//! A limit-study-style ROB model: µops dispatch in program order at
//! `width` per cycle into a `rob`-entry window, issue as soon as their
//! data dependences resolve, and retire in order at `width` per cycle. A
//! dispatch stalls when the ROB is full — i.e. when the µop `rob`
//! positions older has not yet retired.
//!
//! This captures exactly the property the paper credits the OoO baseline
//! with (Section 6.3): "the reorder logic and large instruction window
//! ... help in exposing the inter-key parallelism between two consecutive
//! hash table lookups" — independent probe chains overlap within the
//! 128-entry window, bounded by the shared L1 MSHRs and memory bandwidth
//! that the memory system charges for.

use crate::config::OooConfig;
use crate::mem::MemorySystem;
use crate::trace::{Trace, UopKind};
use crate::Cycle;

use super::CoreRunResult;

/// Replays `trace` on the OoO core model starting at `start`.
///
/// Memory timing (and functional stores) go through `mem`, so cache,
/// MSHR, TLB, and bandwidth state evolve exactly as they would for any
/// other agent sharing the memory system.
pub fn run_ooo(
    cfg: &OooConfig,
    trace: &Trace,
    mem: &mut MemorySystem,
    start: Cycle,
) -> CoreRunResult {
    let n = trace.len();
    if n == 0 {
        return CoreRunResult {
            cycles: 0,
            retired: 0,
            tuples: trace.tuples() as u64,
        };
    }
    let width = cfg.width.max(1);
    let rob = cfg.rob.max(1);
    let mut complete: Vec<Cycle> = vec![0; n];
    let mut retire: Vec<Cycle> = vec![0; n];

    // Cycle before which the front end cannot deliver µops (advanced by
    // mispredicted branches as they resolve).
    let mut fetch_barrier: Cycle = 0;
    // Front-end sequencing: consecutive dispatch groups are at least one
    // cycle apart, restarting after each fetch barrier.
    let mut prev_dispatch: Cycle = 0;

    for (i, uop) in trace.uops().iter().enumerate() {
        // Front-end: `width` dispatches per cycle...
        let mut dispatch = start + (i / width) as Cycle;
        dispatch = dispatch.max(fetch_barrier);
        if i % width == 0 && i > 0 {
            // A new dispatch group starts strictly after the previous one.
            dispatch = dispatch.max(prev_dispatch + 1);
        } else {
            dispatch = dispatch.max(prev_dispatch);
        }
        prev_dispatch = dispatch;
        // ...gated by ROB occupancy.
        if i >= rob {
            dispatch = dispatch.max(retire[i - rob]);
        }
        // Issue: wait for operands.
        let mut ready = dispatch;
        for dep in uop.deps.into_iter().flatten() {
            ready = ready.max(complete[dep as usize]);
        }
        complete[i] = match uop.kind {
            UopKind::Comp { latency } => ready + Cycle::from(latency),
            UopKind::Load { addr, width } => mem.load(addr, width as usize, ready).1.ready,
            UopKind::Store { addr, width, value } => {
                mem.store(addr, width as usize, value, ready).ready
            }
            UopKind::Branch { mispredict } => {
                let resolve = ready + 1;
                if mispredict {
                    // Squash: younger µops refetch after resolution.
                    fetch_barrier = fetch_barrier.max(resolve + cfg.mispredict_penalty);
                }
                resolve
            }
        };
        // In-order retire at `width` per cycle.
        let mut r = complete[i];
        if i > 0 {
            r = r.max(retire[i - 1]);
        }
        if i >= width {
            r = r.max(retire[i - width] + 1);
        }
        retire[i] = r;
    }

    CoreRunResult {
        cycles: retire[n - 1].saturating_sub(start) + 1,
        retired: n as u64,
        tuples: trace.tuples() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::mem::VAddr;

    fn setup() -> (OooConfig, MemorySystem) {
        let sys = SystemConfig::default();
        (sys.ooo.clone(), MemorySystem::new(sys))
    }

    #[test]
    fn empty_trace() {
        let (cfg, mut mem) = setup();
        let r = run_ooo(&cfg, &Trace::new(), &mut mem, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn independent_comp_throughput_is_width_limited() {
        let (cfg, mut mem) = setup();
        let mut t = Trace::new();
        for _ in 0..400 {
            t.comp(1, [None, None]);
        }
        let r = run_ooo(&cfg, &t, &mut mem, 0);
        // 400 unit-latency independent µops at 4-wide ≈ 100 cycles.
        assert!(r.cycles >= 100 && r.cycles <= 110, "cycles {}", r.cycles);
    }

    #[test]
    fn dependent_chain_serializes() {
        let (cfg, mut mem) = setup();
        let mut t = Trace::new();
        let mut prev = t.comp(1, [None, None]);
        for _ in 0..99 {
            prev = t.comp(1, [Some(prev), None]);
        }
        let r = run_ooo(&cfg, &t, &mut mem, 0);
        assert!(
            r.cycles >= 100,
            "chain of 100 unit ops takes >= 100, got {}",
            r.cycles
        );
    }

    #[test]
    fn independent_loads_overlap() {
        let (cfg, mut mem) = setup();
        // Serial pointer chase: 8 dependent loads to distinct blocks.
        let mut chase = Trace::new();
        let mut prev = None;
        for i in 0..8u64 {
            let dep = [prev, None];
            prev = Some(chase.load(VAddr::new(0x100_000 + i * 4096), 8, dep));
        }
        let serial = run_ooo(&cfg, &chase, &mut mem.clone(), 0);

        // Same 8 loads, independent.
        let mut parallel = Trace::new();
        for i in 0..8u64 {
            parallel.load(VAddr::new(0x100_000 + i * 4096), 8, [None, None]);
        }
        let par = run_ooo(&cfg, &parallel, &mut mem, 0);
        assert!(
            par.cycles * 3 < serial.cycles,
            "parallel {} vs serial {}",
            par.cycles,
            serial.cycles
        );
    }

    #[test]
    fn rob_bounds_run_ahead() {
        // With a tiny ROB, independent long-latency loads cannot overlap
        // beyond the window.
        let sys = SystemConfig::default();
        let small = OooConfig {
            width: 4,
            rob: 4,
            mispredict_penalty: 12,
        };
        let big = OooConfig {
            width: 4,
            rob: 128,
            mispredict_penalty: 12,
        };
        let mut t = Trace::new();
        for i in 0..32u64 {
            t.load(VAddr::new(0x200_000 + i * 4096), 8, [None, None]);
        }
        let r_small = run_ooo(&small, &t, &mut MemorySystem::new(sys.clone()), 0);
        let r_big = run_ooo(&big, &t, &mut MemorySystem::new(sys), 0);
        assert!(
            r_big.cycles < r_small.cycles,
            "big ROB {} should beat small ROB {}",
            r_big.cycles,
            r_small.cycles
        );
    }

    #[test]
    fn mispredicts_throttle_overlap() {
        let sys = SystemConfig::default();
        // 16 independent DRAM loads, each followed by a branch.
        let build = |mispredict: bool| {
            let mut t = Trace::new();
            for i in 0..16u64 {
                let ld = t.load(VAddr::new(0x600_000 + i * 4096), 8, [None, None]);
                t.branch(mispredict, [Some(ld), None]);
            }
            t
        };
        let cfg = sys.ooo.clone();
        let fast = run_ooo(&cfg, &build(false), &mut MemorySystem::new(sys.clone()), 0);
        let slow = run_ooo(&cfg, &build(true), &mut MemorySystem::new(sys), 0);
        assert!(
            slow.cycles > fast.cycles * 3,
            "mispredicted {} vs predicted {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn cycles_per_tuple() {
        let (cfg, mut mem) = setup();
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.mark_tuple();
            t.load(VAddr::new(0x300_000 + i * 64), 8, [None, None]);
        }
        let r = run_ooo(&cfg, &t, &mut mem, 0);
        assert_eq!(r.tuples, 10);
        assert!(r.cycles_per_tuple() > 0.0);
    }
}
