//! TLB with a bounded number of in-flight page walks.
//!
//! Widx has no translation hardware of its own: "TLB misses ... are
//! handled by the host core's MMU in its usual fashion" (paper
//! Section 4.3), and Table 2 allows **2 in-flight translations**. All
//! units (or, for the baseline, the core's load/store stream) share this
//! structure.

use crate::config::TlbConfig;
use crate::mem::{PageAddr, VAddr};
use crate::Cycle;

// NOTE: the TLB's page size is a *translation* granularity and is
// independent of the 4 KB allocation granularity of the functional
// backing store. Database servers back large heaps with large pages
// (the paper's worst-case TLB miss ratio is 3% on a 1 GB index, which
// is only achievable with large-page translations), so the default
// `TlbConfig` uses 256 KB pages.

/// Outcome of a translation request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbResult {
    /// Cycle at which the translation is available (equals the request
    /// cycle on a hit).
    pub ready: Cycle,
    /// Whether a page walk was required.
    pub miss: bool,
}

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    page: PageAddr,
    stamp: u64,
}

/// A fully associative, LRU-replaced TLB with `in_flight` hardware page
/// walkers.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    capacity: usize,
    walkers_free: Vec<Cycle>,
    walk_latency: u64,
    page_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    /// In-flight walks: (page, done). A second miss to the same page
    /// while a walk is in flight shares the walk.
    pending: Vec<(PageAddr, Cycle)>,
}

impl Tlb {
    /// Creates an empty TLB from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.entries` or `cfg.in_flight` is zero.
    #[must_use]
    pub fn new(cfg: &TlbConfig) -> Tlb {
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        assert!(cfg.in_flight > 0, "TLB needs at least one page walker");
        Tlb {
            entries: Vec::with_capacity(cfg.entries),
            capacity: cfg.entries,
            walkers_free: vec![0; cfg.in_flight],
            walk_latency: cfg.walk_latency,
            page_bytes: cfg.page_bytes.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            pending: Vec::new(),
        }
    }

    /// Translates the page of `addr` at cycle `now`.
    ///
    /// Hits complete immediately. Misses occupy one of the page-walk
    /// slots (queuing behind earlier walks when both are busy — this is
    /// the "2 in-flight translations" limit of Table 2) and install the
    /// entry when the walk completes.
    pub fn translate(&mut self, addr: VAddr, now: Cycle) -> TlbResult {
        self.clock += 1;
        let clock = self.clock;
        let page = PageAddr(addr.get() / self.page_bytes);
        self.pending.retain(|(_, done)| *done > now);

        if let Some(e) = self.entries.iter_mut().find(|e| e.page == page) {
            e.stamp = clock;
            self.hits += 1;
            return TlbResult {
                ready: now,
                miss: false,
            };
        }
        self.misses += 1;

        // Share an in-flight walk of the same page.
        if let Some((_, done)) = self.pending.iter().find(|(p, _)| *p == page) {
            return TlbResult {
                ready: *done,
                miss: true,
            };
        }

        let slot = self
            .walkers_free
            .iter_mut()
            .min()
            .expect("at least one walker");
        let start = (*slot).max(now);
        let done = start + self.walk_latency;
        *slot = done;
        self.pending.push((page, done));
        self.install(page, clock);
        TlbResult {
            ready: done,
            miss: true,
        }
    }

    fn install(&mut self, page: PageAddr, stamp: u64) {
        if self.entries.len() < self.capacity {
            self.entries.push(TlbEntry { page, stamp });
        } else {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|e| e.stamp)
                .expect("TLB is non-empty");
            *victim = TlbEntry { page, stamp };
        }
    }

    /// Lifetime hit count.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over the TLB's lifetime (0 when never accessed).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets hit/miss counters, keeping translations.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TlbConfig {
        TlbConfig {
            entries: 4,
            in_flight: 2,
            walk_latency: 40,
            page_bytes: 4096,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(&cfg());
        let a = VAddr::new(0x1000);
        let r1 = tlb.translate(a, 0);
        assert!(r1.miss);
        assert_eq!(r1.ready, 40);
        let r2 = tlb.translate(a, 50);
        assert!(!r2.miss);
        assert_eq!(r2.ready, 50);
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(&cfg());
        let _ = tlb.translate(VAddr::new(0x1000), 0);
        let r = tlb.translate(VAddr::new(0x1ff8), 41);
        assert!(!r.miss);
    }

    #[test]
    fn two_walkers_then_queue() {
        let mut tlb = Tlb::new(&cfg());
        let r1 = tlb.translate(VAddr::new(0x1000), 0);
        let r2 = tlb.translate(VAddr::new(0x2000), 0);
        let r3 = tlb.translate(VAddr::new(0x3000), 0);
        assert_eq!(r1.ready, 40);
        assert_eq!(r2.ready, 40);
        // Third walk waits for a free walker.
        assert_eq!(r3.ready, 80);
    }

    #[test]
    fn concurrent_walk_to_same_page_is_shared() {
        let mut tlb = Tlb::new(&cfg());
        let r1 = tlb.translate(VAddr::new(0x5000), 0);
        // Entry is installed upon walk issue, so a later request hits;
        // but a request *while the walk is pending* at the same page
        // shares the completion time instead of issuing a second walk.
        let r2 = tlb.translate(VAddr::new(0x5008), 10);
        assert!(r1.miss);
        assert!(!r2.miss || r2.ready == r1.ready);
    }

    #[test]
    fn lru_replacement() {
        let mut tlb = Tlb::new(&cfg());
        for p in 0..4u64 {
            let _ = tlb.translate(VAddr::new(p * 4096 + 0x10_000), (p + 1) * 100);
        }
        // Touch page 0 so page 1 is LRU.
        let _ = tlb.translate(VAddr::new(0x10_000), 1000);
        // A fifth page evicts page 1.
        let _ = tlb.translate(VAddr::new(9 * 4096 + 0x10_000), 1100);
        let r = tlb.translate(VAddr::new(4096 + 0x10_000), 2000);
        assert!(r.miss, "page 1 should have been evicted");
        let r0 = tlb.translate(VAddr::new(0x10_000), 3000);
        assert!(!r0.miss, "page 0 should have survived");
    }
}
