//! # widx-sim — cycle-level simulation substrate
//!
//! The evaluation in *Meet the Walkers* (MICRO 2013) runs on Flexus, a
//! full-system cycle-accurate simulator. This crate is the from-scratch
//! replacement substrate used by the reproduction: a cycle-level model of
//! the memory system and cores of Table 2, exposing both *functional*
//! state (real bytes in a paged backing store) and *timing* (per-access
//! ready cycles shaped by cache hits, MSHR occupancy, port conflicts,
//! finite memory bandwidth, and TLB walks).
//!
//! Components:
//!
//! * [`mem`] — virtual addresses, paged functional memory, a region
//!   allocator, set-associative L1-D and LLC models with LRU replacement,
//!   MSHRs with same-block coalescing, load ports, bandwidth-limited
//!   memory controllers, and the composed [`mem::MemorySystem`].
//! * [`tlb`] — a TLB with a bounded number of in-flight page walks
//!   (Table 2: "2 in-flight translations").
//! * [`trace`] — dependence-annotated µop traces used to drive the core
//!   models.
//! * [`core`] — trace-driven out-of-order (Xeon-like: 4-wide, 128-entry
//!   ROB) and in-order (Cortex-A8-like: 2-wide) core models.
//! * [`config`] — [`config::SystemConfig`], the Table 2 parameter set.
//! * [`stats`] — counters and the Comp/Mem/TLB/Idle cycle breakdown used
//!   by the paper's Figures 8a/9a/9b.
//! * [`sampling`] — mean / confidence-interval helpers in the spirit of
//!   the paper's SMARTS/SimFlex sampling methodology.
//!
//! Timing model style: *resource calendars*. Every contended resource
//! (cache port, MSHR slot, memory-controller channel, page-walker) tracks
//! the cycle at which it next becomes free; an access walks the path
//! L1 → crossbar → LLC → memory controller accumulating latency and
//! queuing delays, and returns the absolute cycle at which its data is
//! ready. Tag arrays are real (set-associative, LRU) over the workload's
//! actual virtual addresses, so locality emerges from the data layout
//! rather than from assumed miss ratios.
//!
//! # Example
//!
//! ```
//! use widx_sim::config::SystemConfig;
//! use widx_sim::mem::{MemorySystem, VAddr};
//!
//! let mut mem = MemorySystem::new(SystemConfig::default());
//! let addr = VAddr::new(0x1000);
//! mem.write_u64(addr, 42);
//!
//! // First access: compulsory miss all the way to DRAM.
//! let (value, first) = mem.load(addr, 8, 0);
//! assert_eq!(value, 42);
//!
//! // Second access right after: an L1 hit, far cheaper.
//! let (_, second) = mem.load(addr, 8, first.ready);
//! assert!(second.ready - first.ready < first.ready);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod core;
pub mod mem;
pub mod sampling;
pub mod stats;
pub mod tlb;
pub mod trace;

/// A point in simulated time, measured in core clock cycles at the 2 GHz
/// design point of Table 2.
pub type Cycle = u64;
