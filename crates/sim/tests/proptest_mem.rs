//! Property tests for the memory system: functional correctness under
//! arbitrary access sequences, and timing-model invariants.

use proptest::prelude::*;
use widx_sim::config::SystemConfig;
use widx_sim::mem::{MemorySystem, VAddr};

#[derive(Clone, Debug)]
enum Op {
    Write { slot: u8, value: u64 },
    Load { slot: u8 },
    Store { slot: u8, value: u64 },
    Prefetch { slot: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(slot, value)| Op::Write { slot, value }),
        any::<u8>().prop_map(|slot| Op::Load { slot }),
        (any::<u8>(), any::<u64>()).prop_map(|(slot, value)| Op::Store { slot, value }),
        any::<u8>().prop_map(|slot| Op::Prefetch { slot }),
    ]
}

fn addr_of(slot: u8) -> VAddr {
    // Spread slots over several pages and cache sets.
    VAddr::new(0x10_000 + u64::from(slot) * 72)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The timed memory system never returns stale or wrong data,
    /// regardless of the interleaving of timed/untimed accesses, and its
    /// ready times never precede the request.
    #[test]
    fn memory_is_coherent_and_causal(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut model = std::collections::HashMap::<u8, u64>::new();
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Write { slot, value } => {
                    mem.write_u64(addr_of(slot), value);
                    model.insert(slot, value);
                }
                Op::Load { slot } => {
                    let (got, r) = mem.load(addr_of(slot), 8, now);
                    prop_assert_eq!(got, model.get(&slot).copied().unwrap_or(0));
                    prop_assert!(r.ready >= now, "data cannot arrive before the request");
                    prop_assert!(r.issue >= now);
                    now = r.ready;
                }
                Op::Store { slot, value } => {
                    let r = mem.store(addr_of(slot), 8, value, now);
                    model.insert(slot, value);
                    prop_assert!(r.ready >= now);
                    now = r.ready;
                }
                Op::Prefetch { slot } => {
                    let _ = mem.prefetch(addr_of(slot), now);
                }
            }
        }
    }

    /// Re-loading the same address becomes strictly cheaper (L1 hit) and
    /// MSHR occupancy never exceeds capacity.
    #[test]
    fn locality_pays_and_mshrs_bounded(slots in prop::collection::vec(any::<u8>(), 1..60)) {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut now = 0u64;
        for slot in &slots {
            let (_, r) = mem.load(addr_of(*slot), 8, now);
            now = r.ready;
        }
        prop_assert!(mem.l1_mshr_peak() <= mem.cfg().l1d.mshrs);
        // Second pass: every access is at worst an LLC hit, mostly L1.
        for slot in &slots {
            let (_, r) = mem.load(addr_of(*slot), 8, now);
            prop_assert!(
                r.ready - now <= 40,
                "revisit should be cache-resident, took {}",
                r.ready - now
            );
            now = r.ready;
        }
    }

    /// Partial-width writes only touch their bytes.
    #[test]
    fn width_isolation(base in any::<u64>(), narrow in any::<u32>(), width in prop_oneof![Just(1usize), Just(2), Just(4)]) {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let addr = VAddr::new(0x40_000);
        mem.write_u64(addr, base);
        mem.write_uint(addr, width, u64::from(narrow));
        let expect = {
            let mask = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
            (base & !mask) | (u64::from(narrow) & mask)
        };
        prop_assert_eq!(mem.read_u64(addr), expect);
    }
}
