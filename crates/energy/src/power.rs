//! Power parameters (paper Section 5 "Power and Area" + Section 6.3).

/// Power figures in watts at 2 GHz, 40 nm.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerParams {
    /// Nominal operating power of the OoO (Xeon-like) core including
    /// its private caches — the paper assumes "the power consumption of
    /// the baseline OoO core to be equal to Xeon's nominal operating
    /// power".
    pub ooo_core_w: f64,
    /// Idle power as a fraction of nominal ("idle power is estimated to
    /// be 30% of the nominal power").
    pub idle_fraction: f64,
    /// In-order (Cortex-A8-like) core power including L1 caches — the
    /// paper quotes 480 mW from the scale-out-processors study.
    pub inorder_w: f64,
    /// One Widx unit with its queues — synthesized at 53 mW.
    pub widx_unit_w: f64,
    /// The full 6-unit Widx complex — synthesized at 320 mW.
    pub widx_total_w: f64,
    /// Host private-cache power kept active while Widx runs (the
    /// "Widx-enabled design relies on the core's data caches"; estimated
    /// with CACTI in the paper).
    pub cache_w: f64,
}

impl Default for PowerParams {
    fn default() -> PowerParams {
        PowerParams {
            ooo_core_w: 7.5,
            idle_fraction: 0.30,
            inorder_w: 0.48,
            widx_unit_w: 0.053,
            widx_total_w: 0.32,
            cache_w: 1.5,
        }
    }
}

impl PowerParams {
    /// Power drawn while Widx runs: the host core idles (at the idle
    /// fraction of nominal), its caches stay active for Widx, and the
    /// six Widx units draw their synthesized power.
    #[must_use]
    pub fn widx_mode_w(&self) -> f64 {
        self.ooo_core_w * self.idle_fraction + self.cache_w + self.widx_total_w
    }

    /// Power of the OoO design point.
    #[must_use]
    pub fn ooo_mode_w(&self) -> f64 {
        self.ooo_core_w
    }

    /// Power of the in-order design point.
    #[must_use]
    pub fn inorder_mode_w(&self) -> f64 {
        self.inorder_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = PowerParams::default();
        assert!((p.widx_unit_w - 0.053).abs() < 1e-12, "53 mW per unit");
        assert!((p.widx_total_w - 0.32).abs() < 1e-12, "320 mW for 6 units");
        assert!((p.inorder_w - 0.48).abs() < 1e-12, "A8 at 480 mW");
        assert!((p.idle_fraction - 0.30).abs() < 1e-12);
    }

    #[test]
    fn widx_mode_is_idle_core_plus_widx() {
        let p = PowerParams::default();
        let w = p.widx_mode_w();
        assert!(w < p.ooo_core_w, "offload must save power");
        assert!(w > p.widx_total_w, "idle host + caches dominate");
        assert!((w - (2.25 + 1.5 + 0.32)).abs() < 1e-9);
    }

    #[test]
    fn six_units_cost_less_than_six_times_one() {
        // 6 x 53 mW = 318 mW ~ 320 mW: the paper's total is consistent
        // with its per-unit figure.
        let p = PowerParams::default();
        assert!((6.0 * p.widx_unit_w - p.widx_total_w).abs() < 0.01);
    }
}
