//! # widx-energy — area, power, energy, and energy-delay models
//!
//! Reproduces the paper's Section 6.3 analysis: Widx's synthesized area
//! and power (TSMC 40 nm, 2 GHz), the comparison cores' published
//! numbers, and the Figure 11 runtime / energy / energy-delay summary.
//!
//! The paper composes *published* power figures with *simulated*
//! runtimes; this crate does the same arithmetic with this repository's
//! measured cycle counts. The default [`PowerParams`] are chosen so
//! that, at the paper's own runtime ratios (in-order 2.2x slower than
//! OoO; Widx 3.1x faster), the paper's four headline efficiency numbers
//! all fall out: 86 % energy reduction for in-order, 83 % for Widx,
//! 5.5x EDP improvement over in-order, and 17.5x over OoO.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod figure11;
pub mod power;

pub use area::AreaParams;
pub use figure11::{figure11, DesignPoint, Figure11, Runtimes};
pub use power::PowerParams;
