//! Area parameters (paper Section 6.3).

/// Synthesized and published areas in mm² at 40 nm.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaParams {
    /// One Widx unit including its two-entry input/output buffers.
    pub widx_unit_mm2: f64,
    /// The 6-unit Widx complex (dispatcher + 4 walkers + producer).
    pub widx_total_mm2: f64,
    /// ARM Cortex-A8-like in-order core including L1 caches.
    pub a8_mm2: f64,
    /// ARM Cortex-M4 microcontroller (the paper: "roughly the same area
    /// as the single Widx unit").
    pub m4_mm2: f64,
}

impl Default for AreaParams {
    fn default() -> AreaParams {
        AreaParams {
            widx_unit_mm2: 0.039,
            widx_total_mm2: 0.24,
            a8_mm2: 1.3,
            m4_mm2: 0.04,
        }
    }
}

impl AreaParams {
    /// Widx area as a fraction of the A8 — the paper's headline "18 % of
    /// Cortex A8".
    #[must_use]
    pub fn widx_vs_a8(&self) -> f64 {
        self.widx_total_mm2 / self.a8_mm2
    }

    /// Area of `n` Widx units plus shared wiring (linear in units; the
    /// paper's 6-unit total is consistent with 6x the unit area).
    #[must_use]
    pub fn units_mm2(&self, n: usize) -> f64 {
        self.widx_unit_mm2 * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_area_anchors() {
        let a = AreaParams::default();
        assert!((a.widx_unit_mm2 - 0.039).abs() < 1e-12);
        assert!((a.widx_total_mm2 - 0.24).abs() < 1e-12);
        // "Widx's area overhead is only 18% of Cortex A8".
        let frac = a.widx_vs_a8();
        assert!((0.17..=0.19).contains(&frac), "A8 fraction {frac}");
    }

    #[test]
    fn unit_scaling_consistent_with_total() {
        let a = AreaParams::default();
        let six = a.units_mm2(6);
        assert!((six - a.widx_total_mm2).abs() < 0.01);
    }

    #[test]
    fn m4_comparison() {
        let a = AreaParams::default();
        assert!((a.m4_mm2 - a.widx_unit_mm2).abs() < 0.01, "M4 ~ one unit");
    }
}
