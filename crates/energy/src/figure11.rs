//! Figure 11: indexing runtime, energy, and energy-delay product of the
//! OoO baseline, the in-order core, and Widx (on an idling OoO host),
//! all normalized to the OoO baseline (lower is better).

use crate::PowerParams;

/// Measured indexing runtimes (any consistent unit — cycles work) for
/// the three design points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Runtimes {
    /// OoO baseline runtime.
    pub ooo: f64,
    /// In-order core runtime.
    pub inorder: f64,
    /// Widx runtime (full offload).
    pub widx: f64,
}

/// One design point's normalized metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignPoint {
    /// Design-point name.
    pub name: &'static str,
    /// Runtime normalized to OoO.
    pub runtime: f64,
    /// Energy normalized to OoO.
    pub energy: f64,
    /// Energy-delay product normalized to OoO.
    pub edp: f64,
}

/// The full Figure 11 row set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Figure11 {
    /// The OoO baseline (all ones by construction).
    pub ooo: DesignPoint,
    /// The in-order core.
    pub inorder: DesignPoint,
    /// Widx attached to the (idling) OoO core.
    pub widx: DesignPoint,
}

impl Figure11 {
    /// Energy reduction of Widx vs. the OoO baseline (paper: 83 %).
    #[must_use]
    pub fn widx_energy_reduction(&self) -> f64 {
        1.0 - self.widx.energy
    }

    /// Energy reduction of the in-order core vs. OoO (paper: 86 %).
    #[must_use]
    pub fn inorder_energy_reduction(&self) -> f64 {
        1.0 - self.inorder.energy
    }

    /// EDP improvement of Widx over the OoO baseline (paper: 17.5x).
    #[must_use]
    pub fn widx_edp_gain_vs_ooo(&self) -> f64 {
        self.ooo.edp / self.widx.edp
    }

    /// EDP improvement of Widx over the in-order core (paper: 5.5x).
    #[must_use]
    pub fn widx_edp_gain_vs_inorder(&self) -> f64 {
        self.inorder.edp / self.widx.edp
    }
}

/// Computes Figure 11 from measured runtimes and power parameters.
///
/// # Panics
///
/// Panics if any runtime is non-positive.
#[must_use]
pub fn figure11(runtimes: Runtimes, power: &PowerParams) -> Figure11 {
    assert!(
        runtimes.ooo > 0.0 && runtimes.inorder > 0.0 && runtimes.widx > 0.0,
        "runtimes must be positive"
    );
    let point = |name, time: f64, watts: f64| {
        let t = time / runtimes.ooo;
        let energy = (watts * time) / (power.ooo_mode_w() * runtimes.ooo);
        DesignPoint {
            name,
            runtime: t,
            energy,
            edp: energy * t,
        }
    };
    Figure11 {
        ooo: point("OoO", runtimes.ooo, power.ooo_mode_w()),
        inorder: point("In-order", runtimes.inorder, power.inorder_mode_w()),
        widx: point("Widx (w/ OoO)", runtimes.widx, power.widx_mode_w()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's own runtime ratios (Sec. 6.3: in-order 2.2x slower
    /// than OoO; Widx 3.1x faster).
    fn paper_runtimes() -> Runtimes {
        Runtimes {
            ooo: 1.0,
            inorder: 2.2,
            widx: 1.0 / 3.1,
        }
    }

    #[test]
    fn ooo_is_unity() {
        let f = figure11(paper_runtimes(), &PowerParams::default());
        assert!((f.ooo.runtime - 1.0).abs() < 1e-12);
        assert!((f.ooo.energy - 1.0).abs() < 1e-12);
        assert!((f.ooo.edp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_anchor_energy_reductions() {
        let f = figure11(paper_runtimes(), &PowerParams::default());
        let inorder = f.inorder_energy_reduction();
        let widx = f.widx_energy_reduction();
        assert!(
            (0.84..=0.88).contains(&inorder),
            "in-order reduction {inorder} (paper 86%)"
        );
        assert!(
            (0.81..=0.85).contains(&widx),
            "Widx reduction {widx} (paper 83%)"
        );
    }

    #[test]
    fn paper_anchor_edp_gains() {
        let f = figure11(paper_runtimes(), &PowerParams::default());
        let vs_ooo = f.widx_edp_gain_vs_ooo();
        let vs_inorder = f.widx_edp_gain_vs_inorder();
        assert!(
            (15.0..=20.0).contains(&vs_ooo),
            "EDP vs OoO {vs_ooo} (paper 17.5x)"
        );
        assert!(
            (5.0..=6.0).contains(&vs_inorder),
            "EDP vs in-order {vs_inorder} (paper 5.5x)"
        );
    }

    #[test]
    fn inorder_trades_time_for_energy() {
        let f = figure11(paper_runtimes(), &PowerParams::default());
        assert!(f.inorder.runtime > 2.0);
        assert!(f.inorder.energy < 0.2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_runtime_rejected() {
        let _ = figure11(
            Runtimes {
                ooo: 0.0,
                inorder: 1.0,
                widx: 1.0,
            },
            &PowerParams::default(),
        );
    }

    #[test]
    fn scale_invariance() {
        // Absolute cycle counts should not matter, only ratios.
        let a = figure11(paper_runtimes(), &PowerParams::default());
        let b = figure11(
            Runtimes {
                ooo: 1e9,
                inorder: 2.2e9,
                widx: 1e9 / 3.1,
            },
            &PowerParams::default(),
        );
        assert!((a.widx.edp - b.widx.edp).abs() < 1e-9);
    }
}
