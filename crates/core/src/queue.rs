//! Timed bounded queues of 64-bit word *pairs*.
//!
//! Figure 6 of the paper shows "Key, Hashed key" flowing from the
//! dispatcher to the walkers — queue entries are two words wide. Units
//! push and pop single words through their [`Reg::OUT`]/[`Reg::IN`]
//! ports; the routing layer latches the first word and enqueues the
//! completed pair atomically, and consumers pop the two halves in order.
//!
//! [`Reg::OUT`]: widx_isa::Reg::OUT
//! [`Reg::IN`]: widx_isa::Reg::IN

use std::collections::VecDeque;

use widx_sim::Cycle;

/// A two-word queue entry.
pub type Pair = [u64; 2];

/// Forwarding latency: a pair pushed at cycle `t` is visible to the
/// consumer from cycle `t + 1`.
pub const FORWARD_LATENCY: Cycle = 1;

/// A bounded queue of pairs with per-entry availability times.
#[derive(Clone, Debug)]
pub struct PairQueue {
    cap: usize,
    items: VecDeque<(Pair, Cycle)>,
    /// Second word of a half-consumed pair (its slot stays occupied).
    half: Option<(u64, Cycle)>,
    pushes: u64,
    pops: u64,
}

impl PairQueue {
    /// Creates a queue holding at most `cap` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn new(cap: usize) -> PairQueue {
        assert!(cap > 0, "queue capacity must be positive");
        PairQueue {
            cap,
            items: VecDeque::with_capacity(cap),
            half: None,
            pushes: 0,
            pops: 0,
        }
    }

    /// Pairs currently occupying slots (a half-popped pair still counts).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.items.len() + usize::from(self.half.is_some())
    }

    /// Whether a new pair can be accepted.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.occupancy() < self.cap
    }

    /// Whether no words are available at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty() && self.half.is_none()
    }

    /// Enqueues a pair pushed at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics when full; callers must check [`has_space`](Self::has_space).
    pub fn push(&mut self, pair: Pair, now: Cycle) {
        assert!(self.has_space(), "push into full queue");
        self.items.push_back((pair, now + FORWARD_LATENCY));
        self.pushes += 1;
    }

    /// Pops the next word if one exists, returning it with the cycle it
    /// became (or becomes) visible. The caller stalls until that cycle
    /// if it is in the future.
    ///
    /// Returns `None` when the queue is empty. A pair's slot frees when
    /// its *second* word is popped.
    pub fn pop_word(&mut self) -> Option<(u64, Cycle)> {
        if let Some((word, at)) = self.half.take() {
            self.pops += 1;
            return Some((word, at));
        }
        let (pair, at) = self.items.pop_front()?;
        self.half = Some((pair[1], at));
        self.pops += 1;
        Some((pair[0], at))
    }

    /// Whether the most recent pop freed a slot (i.e. no half remains).
    #[must_use]
    pub fn half_pending(&self) -> bool {
        self.half.is_some()
    }

    /// Total pairs pushed.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// The queue's capacity in pairs.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_pair_in_order() {
        let mut q = PairQueue::new(2);
        q.push([1, 2], 10);
        q.push([3, 4], 11);
        assert!(!q.has_space());
        assert_eq!(q.pop_word(), Some((1, 11)));
        // Slot not yet free: second word pending.
        assert!(!q.has_space());
        assert_eq!(q.pop_word(), Some((2, 11)));
        assert!(q.has_space());
        assert_eq!(q.pop_word(), Some((3, 12)));
        assert_eq!(q.pop_word(), Some((4, 12)));
        assert_eq!(q.pop_word(), None);
    }

    #[test]
    fn forwarding_latency_applied() {
        let mut q = PairQueue::new(1);
        q.push([7, 8], 100);
        let (w, at) = q.pop_word().unwrap();
        assert_eq!(w, 7);
        assert_eq!(at, 100 + FORWARD_LATENCY);
    }

    #[test]
    #[should_panic(expected = "full queue")]
    fn overfill_panics() {
        let mut q = PairQueue::new(1);
        q.push([0, 0], 0);
        q.push([1, 1], 0);
    }

    #[test]
    fn occupancy_counts_half_popped() {
        let mut q = PairQueue::new(2);
        q.push([1, 2], 0);
        let _ = q.pop_word();
        assert_eq!(q.occupancy(), 1);
        assert!(q.half_pending());
        let _ = q.pop_word();
        assert_eq!(q.occupancy(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn counters() {
        let mut q = PairQueue::new(4);
        q.push([1, 2], 0);
        q.push([3, 4], 0);
        let _ = q.pop_word();
        assert_eq!(q.pushes(), 2);
        assert_eq!(q.capacity(), 4);
    }
}
