//! The Widx unit: a 2-stage pipelined RISC core (paper Figure 7)
//! interpreting `widx-isa` programs against the simulated memory system.
//!
//! Timing rules:
//!
//! * one pipeline slot (1 cycle, charged as **Comp**) per instruction;
//! * taken branches pay one extra bubble (the branch resolves in the
//!   second stage — the paper calls the relative branch address
//!   calculation its critical path);
//! * `LD` blocks until the data returns; the wait beyond the pipeline
//!   slot is charged as **Mem**. A blocking load means one outstanding
//!   miss per unit — the `MLP = 1` per walker assumed by the paper's
//!   Section 3.2 model (inter-key parallelism comes from *multiple
//!   walkers*, not from within one);
//! * a TLB miss triggers the paper's Section 4.3 retry: the PC is rolled
//!   back, the 2-stage pipeline refills, and the access replays once the
//!   host MMU delivers the translation — all charged as **Tlb**;
//! * `TOUCH` issues a non-binding prefetch and does not block;
//! * `ST` retires through the store buffer (1 slot, no stall);
//! * reading [`Reg::IN`] pops the input queue, writing [`Reg::OUT`]
//!   pushes the output queue; stalls on either are charged as **Idle**
//!   by the scheduler.

use widx_isa::{Instruction, Opcode, Program, Reg, Src, UnitClass};
use widx_sim::mem::{MemorySystem, VAddr};
use widx_sim::stats::CycleBreakdown;
use widx_sim::Cycle;

use crate::placement::Placement;

/// Pipeline refill cost after a TLB-miss replay (2-stage pipe).
pub const TLB_REPLAY_CYCLES: Cycle = 2;

/// Queue interface a unit sees during one step. Implemented by the
/// accelerator's routing layer ([`crate::widx`]).
pub trait UnitIo {
    /// Pops one word from the unit's input queue; `None` when empty.
    /// The returned cycle is when the word becomes visible (the unit
    /// stalls until then, charged as Idle).
    fn try_pop(&mut self) -> Option<(u64, Cycle)>;
    /// Whether the output can accept one word right now.
    fn can_push(&mut self) -> bool;
    /// Pushes one word; must follow a successful [`can_push`](Self::can_push).
    fn push(&mut self, word: u64, now: Cycle);
}

/// Result of stepping a unit by one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction completed.
    Progress,
    /// Blocked: input queue empty (no state was consumed).
    NeedPop,
    /// Blocked: output queue full (no state was consumed).
    NeedPush,
    /// The unit executed `HALT` (now or earlier).
    Halted,
}

/// One Widx unit: registers, PC, local clock, and cycle accounting.
#[derive(Clone, Debug)]
pub struct Unit {
    label: String,
    class: UnitClass,
    code: Vec<Instruction>,
    regs: [u64; Reg::COUNT],
    pc: usize,
    now: Cycle,
    halted: bool,
    breakdown: CycleBreakdown,
    executed: u64,
    tlb_replays: u64,
    stores: u64,
    placement: Placement,
}

impl Unit {
    /// Creates a unit at `start` executing `program` (whose initial
    /// register image is applied).
    #[must_use]
    pub fn new(label: &str, program: &Program, start: Cycle) -> Unit {
        Unit {
            label: label.to_string(),
            class: program.class(),
            code: program.code().to_vec(),
            regs: program.init().to_register_file(),
            pc: 0,
            now: start,
            halted: false,
            breakdown: CycleBreakdown::new(),
            executed: 0,
            tlb_replays: 0,
            stores: 0,
            placement: Placement::CoreCoupled,
        }
    }

    /// Sets the unit's memory-path placement (see [`Placement`]).
    pub fn set_placement(&mut self, placement: Placement) {
        self.placement = placement;
    }

    /// The unit's diagnostic label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The unit's class.
    #[must_use]
    pub fn class(&self) -> UnitClass {
        self.class
    }

    /// The unit's local clock.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether the unit has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Cycle accounting so far.
    #[must_use]
    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    /// Instructions executed.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// TLB-miss replays performed.
    #[must_use]
    pub fn tlb_replays(&self) -> u64 {
        self.tlb_replays
    }

    /// Stores executed (producer result words).
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Advances the local clock to `at`, charging the gap as Idle.
    /// Used by the scheduler when un-parking a queue-blocked unit.
    pub fn wake_at(&mut self, at: Cycle) {
        if at > self.now {
            self.breakdown.idle += at - self.now;
            self.now = at;
        }
    }

    fn reg(&self, r: Reg, popped: Option<u64>) -> u64 {
        if r.is_zero() {
            0
        } else if r.is_in_port() {
            popped.expect("IN port read without a popped word")
        } else {
            self.regs[r.index()]
        }
    }

    fn src(&self, s: Src, popped: Option<u64>) -> u64 {
        match s {
            Src::Reg(r) => self.reg(r, popped),
            Src::Imm(i) => i as i64 as u64,
        }
    }

    fn write(&mut self, r: Reg, value: u64, io: &mut dyn UnitIo) {
        if r.is_zero() {
            // hardwired zero: discard
        } else if r.is_out_port() {
            io.push(value, self.now);
        } else {
            self.regs[r.index()] = value;
        }
    }

    /// Translates `addr`, applying the retry-on-TLB-miss protocol:
    /// a miss stalls the unit until the walk completes plus the pipeline
    /// refill, charged as Tlb.
    fn translate_with_retry(&mut self, mem: &mut MemorySystem, addr: VAddr) {
        let tlb = match self.placement {
            Placement::CoreCoupled => mem.translate(addr, self.now),
            Placement::LlcSide => mem.translate_dedicated(addr, self.now),
        };
        if tlb.miss {
            let stall = (tlb.ready - self.now) + TLB_REPLAY_CYCLES;
            self.breakdown.tlb += stall;
            self.now += stall;
            self.tlb_replays += 1;
        }
    }

    /// Executes one instruction to completion.
    ///
    /// Blocking on queues returns [`StepOutcome::NeedPop`] /
    /// [`StepOutcome::NeedPush`] *before* any architectural state
    /// changes, so the step can simply be retried once the scheduler
    /// unblocks the unit.
    pub fn step(&mut self, mem: &mut MemorySystem, io: &mut dyn UnitIo) -> StepOutcome {
        if self.halted {
            return StepOutcome::Halted;
        }
        let inst = self.code[self.pc];

        // Pre-flight queue checks (replay-safe: nothing consumed yet).
        if inst.writes_out_port() && !io.can_push() {
            return StepOutcome::NeedPush;
        }
        let mut popped: Option<u64> = None;
        if inst.in_port_reads() == 1 {
            match io.try_pop() {
                None => return StepOutcome::NeedPop,
                Some((word, at)) => {
                    if at > self.now {
                        self.breakdown.idle += at - self.now;
                        self.now = at;
                    }
                    popped = Some(word);
                }
            }
        }

        // The pipeline slot.
        self.breakdown.comp += 1;
        self.now += 1;
        self.executed += 1;
        self.pc += 1;

        match inst {
            Instruction::Alu { op, rd, rs1, src2 } => {
                let a = self.reg(rs1, popped);
                let b = self.src(src2, popped);
                let v = match op {
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::And => a & b,
                    Opcode::Xor => a ^ b,
                    Opcode::Shl => a << (b & 63),
                    Opcode::Shr => a >> (b & 63),
                    Opcode::Cmp => u64::from(a == b),
                    Opcode::CmpLe => u64::from(a <= b),
                    other => unreachable!("{other} is not an ALU opcode"),
                };
                self.write(rd, v, io);
            }
            Instruction::AluShf {
                op,
                rd,
                rs1,
                rs2,
                shift,
            } => {
                let a = self.reg(rs1, popped);
                let b = shift.apply(self.reg(rs2, popped));
                let v = match op {
                    Opcode::AddShf => a.wrapping_add(b),
                    Opcode::AndShf => a & b,
                    Opcode::XorShf => a ^ b,
                    other => unreachable!("{other} is not a fused opcode"),
                };
                self.write(rd, v, io);
            }
            Instruction::Ba { target } => {
                self.pc = target as usize;
                // Taken-branch bubble.
                self.breakdown.comp += 1;
                self.now += 1;
            }
            Instruction::Ble { rs1, src2, target } => {
                let a = self.reg(rs1, popped);
                let b = self.src(src2, popped);
                if a <= b {
                    self.pc = target as usize;
                    self.breakdown.comp += 1;
                    self.now += 1;
                }
            }
            Instruction::Ld {
                rd,
                base,
                offset,
                width,
            } => {
                let addr = VAddr::new(
                    self.reg(base, popped)
                        .wrapping_add_signed(i64::from(offset)),
                );
                self.translate_with_retry(mem, addr);
                let (value, r) = match self.placement {
                    Placement::CoreCoupled => mem.load_translated(addr, width.bytes(), self.now),
                    Placement::LlcSide => mem.load_llc_direct(addr, width.bytes(), self.now),
                };
                if r.ready > self.now {
                    self.breakdown.mem += r.ready - self.now;
                    self.now = r.ready;
                }
                self.write(rd, value, io);
            }
            Instruction::St {
                rs,
                base,
                offset,
                width,
            } => {
                let addr = VAddr::new(
                    self.reg(base, popped)
                        .wrapping_add_signed(i64::from(offset)),
                );
                self.translate_with_retry(mem, addr);
                let value = self.reg(rs, popped);
                match self.placement {
                    Placement::CoreCoupled => {
                        let _ = mem.store_translated(addr, width.bytes(), value, self.now);
                    }
                    Placement::LlcSide => {
                        let _ = mem.store_llc_direct(addr, width.bytes(), value, self.now);
                    }
                }
                self.stores += 1;
            }
            Instruction::Touch { base, offset } => {
                let addr = VAddr::new(
                    self.reg(base, popped)
                        .wrapping_add_signed(i64::from(offset)),
                );
                self.translate_with_retry(mem, addr);
                match self.placement {
                    Placement::CoreCoupled => {
                        let _ = mem.prefetch_translated(addr, self.now);
                    }
                    Placement::LlcSide => {
                        // Non-binding: start the LLC fill, do not wait.
                        let _ = mem.load_llc_direct(addr, 1, self.now);
                    }
                }
            }
            Instruction::Halt => {
                self.halted = true;
                return StepOutcome::Halted;
            }
        }
        StepOutcome::Progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widx_isa::ProgramBuilder;
    use widx_sim::config::SystemConfig;

    /// Test IO: scripted input words, unbounded output.
    struct TestIo {
        input: Vec<u64>,
        cursor: usize,
        out: Vec<u64>,
        push_ok: bool,
    }

    impl TestIo {
        fn new(input: Vec<u64>) -> TestIo {
            TestIo {
                input,
                cursor: 0,
                out: Vec::new(),
                push_ok: true,
            }
        }
    }

    impl UnitIo for TestIo {
        fn try_pop(&mut self) -> Option<(u64, Cycle)> {
            let w = *self.input.get(self.cursor)?;
            self.cursor += 1;
            Some((w, 0))
        }
        fn can_push(&mut self) -> bool {
            self.push_ok
        }
        fn push(&mut self, word: u64, _now: Cycle) {
            self.out.push(word);
        }
    }

    fn mem() -> MemorySystem {
        MemorySystem::new(SystemConfig::default())
    }

    fn run_to_halt(unit: &mut Unit, mem: &mut MemorySystem, io: &mut TestIo) {
        for _ in 0..10_000 {
            match unit.step(mem, io) {
                StepOutcome::Halted => return,
                StepOutcome::Progress => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut b = ProgramBuilder::new(UnitClass::Dispatcher);
        b.init_reg(Reg::R1, 40);
        b.add(Reg::R2, Reg::R1, Src::Imm(2));
        b.xor(Reg::R3, Reg::R2, Src::Reg(Reg::R1));
        b.shl(Reg::R4, Reg::R1, Src::Imm(2));
        b.cmp(Reg::R5, Reg::R2, Src::Imm(42));
        b.cmp_le(Reg::R6, Reg::R2, Src::Imm(41));
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        let mut io = TestIo::new(vec![]);
        run_to_halt(&mut u, &mut mem(), &mut io);
        assert_eq!(u.regs[2], 42);
        assert_eq!(u.regs[3], 42 ^ 40);
        assert_eq!(u.regs[4], 160);
        assert_eq!(u.regs[5], 1);
        assert_eq!(u.regs[6], 0);
        assert_eq!(u.executed(), 6);
    }

    #[test]
    fn fused_shift_semantics() {
        let mut b = ProgramBuilder::new(UnitClass::Dispatcher);
        b.init_reg(Reg::R1, 0xFF00);
        b.xor_shf(Reg::R2, Reg::R1, Reg::R1, widx_isa::Shift::right(8));
        b.add_shf(Reg::R3, Reg::R1, Reg::R1, widx_isa::Shift::left(1));
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        run_to_halt(&mut u, &mut mem(), &mut TestIo::new(vec![]));
        assert_eq!(u.regs[2], 0xFF00 ^ 0xFF);
        assert_eq!(u.regs[3], 0xFF00 + 0x1FE00);
    }

    #[test]
    fn loop_counts_and_branch_bubbles() {
        // Count 0..5 with a backwards BLE.
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        let top = b.new_label();
        b.bind(top);
        b.add(Reg::R1, Reg::R1, Src::Imm(1));
        b.ble(Reg::R1, Src::Imm(4), top);
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        run_to_halt(&mut u, &mut mem(), &mut TestIo::new(vec![]));
        assert_eq!(u.regs[1], 5);
        // 5 adds + 5 bles + halt = 11 instructions; 4 taken branches add
        // 4 bubbles: comp = 11 + 4.
        assert_eq!(u.executed(), 11);
        assert_eq!(u.breakdown().comp, 15);
    }

    #[test]
    fn load_blocks_and_charges_mem() {
        let mut m = mem();
        m.write_u64(VAddr::new(0x2000), 77);
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        b.init_reg(Reg::R1, 0x2000);
        b.ld_d(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        run_to_halt(&mut u, &mut m, &mut TestIo::new(vec![]));
        assert_eq!(u.regs[2], 77);
        // Cold access: TLB walk charged as Tlb, DRAM as Mem.
        assert!(u.breakdown().tlb >= 40, "tlb {}", u.breakdown().tlb);
        assert!(u.breakdown().mem >= 90, "mem {}", u.breakdown().mem);
        assert_eq!(u.tlb_replays(), 1);
    }

    #[test]
    fn store_does_not_block() {
        let mut m = mem();
        let mut b = ProgramBuilder::new(UnitClass::Producer);
        b.init_reg(Reg::R1, 0x3000);
        b.init_reg(Reg::R2, 123);
        b.st_d(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        run_to_halt(&mut u, &mut m, &mut TestIo::new(vec![]));
        assert_eq!(m.read_u64(VAddr::new(0x3000)), 123);
        assert_eq!(u.stores(), 1);
        // Mem stall is only the TLB walk, not DRAM latency.
        assert_eq!(u.breakdown().mem, 0);
    }

    #[test]
    fn queue_ports_pop_and_push() {
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        b.add(Reg::R1, Reg::IN, Src::Imm(0));
        b.add(Reg::OUT, Reg::R1, Src::Imm(1));
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        let mut io = TestIo::new(vec![41]);
        run_to_halt(&mut u, &mut mem(), &mut io);
        assert_eq!(io.out, vec![42]);
    }

    #[test]
    fn blocked_pop_is_replay_safe() {
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        b.add(Reg::R1, Reg::IN, Src::Imm(0));
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        let mut io = TestIo::new(vec![]);
        let mut m = mem();
        assert_eq!(u.step(&mut m, &mut io), StepOutcome::NeedPop);
        assert_eq!(u.executed(), 0);
        // Words arrive; the retried step succeeds.
        io.input.push(9);
        assert_eq!(u.step(&mut m, &mut io), StepOutcome::Progress);
        assert_eq!(u.regs[1], 9);
    }

    #[test]
    fn blocked_push_is_replay_safe() {
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        b.init_reg(Reg::R1, 5);
        b.add(Reg::OUT, Reg::R1, Src::Imm(0));
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        let mut io = TestIo::new(vec![]);
        io.push_ok = false;
        let mut m = mem();
        assert_eq!(u.step(&mut m, &mut io), StepOutcome::NeedPush);
        assert_eq!(u.executed(), 0);
        io.push_ok = true;
        assert_eq!(u.step(&mut m, &mut io), StepOutcome::Progress);
        assert_eq!(io.out, vec![5]);
    }

    #[test]
    fn wake_charges_idle() {
        let p = {
            let mut b = ProgramBuilder::new(UnitClass::Walker);
            b.halt();
            b.build().unwrap()
        };
        let mut u = Unit::new("t", &p, 100);
        u.wake_at(150);
        assert_eq!(u.breakdown().idle, 50);
        assert_eq!(u.now(), 150);
        u.wake_at(120); // never goes backwards
        assert_eq!(u.now(), 150);
    }

    #[test]
    fn touch_prefetches_without_blocking() {
        let mut m = mem();
        let mut b = ProgramBuilder::new(UnitClass::Walker);
        b.init_reg(Reg::R1, 0x9000);
        b.touch(Reg::R1, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut u = Unit::new("t", &p, 0);
        run_to_halt(&mut u, &mut m, &mut TestIo::new(vec![]));
        // No Mem stall charged; but the prefetch was issued.
        assert_eq!(u.breakdown().mem, 0);
        assert_eq!(m.stats().prefetches, 1);
    }
}
