//! Canonical Widx unit programs.
//!
//! The paper's programming API (Section 4.2): "a database system
//! developer must specify three functions: one for key hashing, another
//! for the node walk, and the last one for emitting the results". These
//! generators produce exactly those three programs for a given hash
//! recipe, node layout, and materialized index image — covering every
//! schema the evaluation uses (4-byte direct keys for the join kernel,
//! 8-byte MonetDB-style indirect keys for the DSS queries).
//!
//! Register conventions:
//!
//! | Unit | Registers |
//! |---|---|
//! | dispatcher | `r1` input cursor, `r2` input end, `r3` hash value, `r4` saved key, `r5` bucket mask, `r6` bucket base, `r16..` hash constants, `r26` poison |
//! | walker | `r1` probe key, `r2` node address, `r3` count, `r4` node key, `r5` payload, `r6` next pointer, `r9` flag, `r20` poison |
//! | producer | `r1` output cursor, `r3` key, `r4` payload, `r9` flag, `r20` poison, `r21` live-walker count |

use widx_db::hash::{HashRecipe, HashStep};
use widx_db::index::{KeyKind, NodeLayout};
use widx_isa::{Program, ProgramBuilder, Reg, Shift, Src, UnitClass, Width};
use widx_workloads::memimg::IndexImage;

use crate::POISON_KEY;

fn width_of(bytes: usize) -> Width {
    match bytes {
        1 => Width::B,
        2 => Width::H,
        4 => Width::W,
        8 => Width::D,
        other => panic!("unsupported access width {other}"),
    }
}

/// First register used for hash constants.
const CONST_BASE: u8 = 16;

/// Compiles one hash step onto `x` (in place), allocating constant
/// registers through `alloc`.
fn emit_hash_step(b: &mut ProgramBuilder, x: Reg, step: HashStep, alloc: &mut Vec<u64>) {
    let mut const_reg = |b: &mut ProgramBuilder, value: u64| -> Reg {
        if let Some(pos) = alloc.iter().position(|v| *v == value) {
            return Reg::new(CONST_BASE + pos as u8);
        }
        alloc.push(value);
        let reg = Reg::new(CONST_BASE + (alloc.len() - 1) as u8);
        assert!(reg.index() < 26, "hash recipe uses too many constants");
        b.init_reg(reg, value);
        reg
    };
    match step {
        HashStep::XorConst(c) => {
            let r = const_reg(b, c);
            b.xor(x, x, Src::Reg(r));
        }
        HashStep::AddConst(c) => {
            let r = const_reg(b, c);
            b.add(x, x, Src::Reg(r));
        }
        HashStep::AndConst(c) => {
            let r = const_reg(b, c);
            b.and(x, x, Src::Reg(r));
        }
        HashStep::XorShr(a) => {
            b.xor_shf(x, x, x, Shift::right(a));
        }
        HashStep::XorShl(a) => {
            b.xor_shf(x, x, x, Shift::left(a));
        }
        HashStep::AddShl(a) => {
            b.add_shf(x, x, x, Shift::left(a));
        }
        HashStep::AddShr(a) => {
            b.add_shf(x, x, x, Shift::right(a));
        }
    }
}

/// Builds the dispatcher program: the key-iterator loop of Listing 1
/// with the hash function inlined, streaming `(key, bucket address)`
/// pairs to the walkers and poison pairs at end-of-input.
///
/// # Panics
///
/// Panics if the recipe needs more constant registers than available.
#[must_use]
pub fn dispatcher_program(
    recipe: &HashRecipe,
    image: &IndexImage,
    walkers: usize,
    touch_ahead: bool,
) -> Program {
    let kw = image.layout.key_width;
    let mut b = ProgramBuilder::new(UnitClass::Dispatcher);
    b.init_reg(Reg::R1, image.input_base.get());
    b.init_reg(
        Reg::R2,
        image.input_base.get() + image.input_count * kw as u64,
    );
    b.init_reg(Reg::R5, image.bucket_count - 1);
    b.init_reg(Reg::R6, image.bucket_base.get());
    b.init_reg(Reg::R26, POISON_KEY);
    let mut consts = Vec::new();

    let top = b.new_label();
    let done = b.new_label();
    b.bind(top);
    b.ble(Reg::R2, Src::Reg(Reg::R1), done); // end <= cursor → done
    b.ld(Reg::R3, Reg::R1, 0, width_of(kw));
    b.mov(Reg::R4, Reg::R3);
    for step in recipe.steps() {
        emit_hash_step(&mut b, Reg::R3, *step, &mut consts);
    }
    b.and(Reg::R3, Reg::R3, Src::Reg(Reg::R5));
    // bucket address = base + idx * HEADER_STRIDE (32 = << 5).
    b.shl(Reg::R3, Reg::R3, Src::Imm(5));
    b.add(Reg::R3, Reg::R3, Src::Reg(Reg::R6));
    if touch_ahead {
        b.touch(Reg::R3, 0);
    }
    b.add(Reg::OUT, Reg::R4, Src::Imm(0)); // key
    b.add(Reg::OUT, Reg::R3, Src::Imm(0)); // bucket address
    b.add(Reg::R1, Reg::R1, Src::Imm(kw as i16));
    b.ba(top);
    b.bind(done);
    for _ in 0..walkers {
        b.add(Reg::OUT, Reg::R26, Src::Imm(0));
        b.add(Reg::OUT, Reg::ZERO, Src::Imm(0));
    }
    b.halt();
    b.build().expect("dispatcher program verifies")
}

/// Builds the walker program: pop `(key, bucket address)`, halt on
/// poison (forwarding it), otherwise walk the header node and the
/// overflow chain emitting `(key, payload)` for every match.
#[must_use]
pub fn walker_program(layout: NodeLayout) -> Program {
    let kw = width_of(layout.key_width);
    let sw = width_of(layout.slot_width());
    let mut b = ProgramBuilder::new(UnitClass::Walker);
    b.init_reg(Reg::R20, POISON_KEY);

    let item = b.new_label();
    let walk = b.new_label();
    let hnext = b.new_label();
    let chain = b.new_label();
    let cnext = b.new_label();

    b.bind(item);
    b.add(Reg::R1, Reg::IN, Src::Imm(0)); // key
    b.add(Reg::R2, Reg::IN, Src::Imm(0)); // bucket address
    b.cmp(Reg::R9, Reg::R1, Src::Reg(Reg::R20));
    b.ble(Reg::R9, Src::Imm(0), walk); // not poison → walk
    b.add(Reg::OUT, Reg::R20, Src::Imm(0)); // forward poison
    b.add(Reg::OUT, Reg::ZERO, Src::Imm(0));
    b.halt();

    b.bind(walk);
    b.ld(
        Reg::R3,
        Reg::R2,
        NodeLayout::HEADER_COUNT_OFFSET as i16,
        Width::W,
    );
    b.ble(Reg::R3, Src::Imm(0), item); // empty bucket
                                       // Header node key (extra dereference when indirect).
    b.ld(Reg::R4, Reg::R2, NodeLayout::HEADER_SLOT_OFFSET as i16, sw);
    if layout.key_kind == KeyKind::Indirect {
        b.ld(Reg::R4, Reg::R4, 0, kw);
    }
    b.cmp(Reg::R9, Reg::R4, Src::Reg(Reg::R1));
    b.ble(Reg::R9, Src::Imm(0), hnext); // no match
    b.ld(
        Reg::R5,
        Reg::R2,
        NodeLayout::HEADER_PAYLOAD_OFFSET as i16,
        Width::D,
    );
    b.add(Reg::OUT, Reg::R1, Src::Imm(0));
    b.add(Reg::OUT, Reg::R5, Src::Imm(0));
    b.bind(hnext);
    b.ld(
        Reg::R6,
        Reg::R2,
        NodeLayout::HEADER_NEXT_OFFSET as i16,
        Width::D,
    );

    b.bind(chain);
    b.ble(Reg::R6, Src::Imm(0), item); // NULL → next item
    b.ld(Reg::R4, Reg::R6, NodeLayout::NODE_SLOT_OFFSET as i16, sw);
    if layout.key_kind == KeyKind::Indirect {
        b.ld(Reg::R4, Reg::R4, 0, kw);
    }
    b.cmp(Reg::R9, Reg::R4, Src::Reg(Reg::R1));
    b.ble(Reg::R9, Src::Imm(0), cnext);
    b.ld(
        Reg::R5,
        Reg::R6,
        NodeLayout::NODE_PAYLOAD_OFFSET as i16,
        Width::D,
    );
    b.add(Reg::OUT, Reg::R1, Src::Imm(0));
    b.add(Reg::OUT, Reg::R5, Src::Imm(0));
    b.bind(cnext);
    b.ld(
        Reg::R6,
        Reg::R6,
        NodeLayout::NODE_NEXT_OFFSET as i16,
        Width::D,
    );
    b.ba(chain);

    b.build().expect("walker program verifies")
}

/// Builds the producer program: pop `(key, payload)` pairs, store them
/// to consecutive 16-byte result slots, and halt after one poison per
/// walker has arrived.
#[must_use]
pub fn producer_program(image: &IndexImage, walkers: usize) -> Program {
    let mut b = ProgramBuilder::new(UnitClass::Producer);
    b.init_reg(Reg::R1, image.output_base.get());
    b.init_reg(Reg::R20, POISON_KEY);
    b.init_reg(Reg::R21, walkers as u64);

    let top = b.new_label();
    let store = b.new_label();
    let done = b.new_label();
    b.bind(top);
    b.add(Reg::R3, Reg::IN, Src::Imm(0));
    b.add(Reg::R4, Reg::IN, Src::Imm(0));
    b.cmp(Reg::R9, Reg::R3, Src::Reg(Reg::R20));
    b.ble(Reg::R9, Src::Imm(0), store); // not poison
    b.add(Reg::R21, Reg::R21, Src::Imm(-1));
    b.ble(Reg::R21, Src::Imm(0), done);
    b.ba(top);
    b.bind(store);
    b.st_d(Reg::R3, Reg::R1, 0);
    b.st_d(Reg::R4, Reg::R1, 8);
    b.add(Reg::R1, Reg::R1, Src::Imm(16));
    b.ba(top);
    b.bind(done);
    b.halt();
    b.build().expect("producer program verifies")
}

/// Compiles one hash step *without* the dispatcher-only fused forms.
///
/// Table 1 reserves `XOR-SHF`/`AND-SHF` for the dispatcher (`ADD-SHF`
/// is also available to walkers), so a walker hashing its own keys —
/// the coupled design of Figure 3b — must expand those steps into a
/// shift + logic pair through a scratch register. This is precisely why
/// the paper puts hashing on a dedicated unit class.
fn emit_hash_step_unfused(
    b: &mut ProgramBuilder,
    x: Reg,
    tmp: Reg,
    step: HashStep,
    alloc: &mut Vec<u64>,
) {
    let mut const_reg = |b: &mut ProgramBuilder, value: u64| -> Reg {
        if let Some(pos) = alloc.iter().position(|v| *v == value) {
            return Reg::new(CONST_BASE + pos as u8);
        }
        alloc.push(value);
        let reg = Reg::new(CONST_BASE + (alloc.len() - 1) as u8);
        assert!(reg.index() < 26, "hash recipe uses too many constants");
        b.init_reg(reg, value);
        reg
    };
    match step {
        HashStep::XorConst(c) => {
            let r = const_reg(b, c);
            b.xor(x, x, Src::Reg(r));
        }
        HashStep::AddConst(c) => {
            let r = const_reg(b, c);
            b.add(x, x, Src::Reg(r));
        }
        HashStep::AndConst(c) => {
            let r = const_reg(b, c);
            b.and(x, x, Src::Reg(r));
        }
        HashStep::XorShr(a) => {
            b.shr(tmp, x, Src::Imm(i16::from(a)));
            b.xor(x, x, Src::Reg(tmp));
        }
        HashStep::XorShl(a) => {
            b.shl(tmp, x, Src::Imm(i16::from(a)));
            b.xor(x, x, Src::Reg(tmp));
        }
        // ADD-SHF is walker-legal per Table 1.
        HashStep::AddShl(a) => {
            b.add_shf(x, x, x, Shift::left(a));
        }
        HashStep::AddShr(a) => {
            b.add_shf(x, x, x, Shift::right(a));
        }
    }
}

/// Builds the *streaming* dispatcher of the coupled design (Figure 3b):
/// no hashing, it only feeds raw keys to the walkers.
#[must_use]
pub fn streaming_dispatcher_program(image: &IndexImage, walkers: usize) -> Program {
    let kw = image.layout.key_width;
    let mut b = ProgramBuilder::new(UnitClass::Dispatcher);
    b.init_reg(Reg::R1, image.input_base.get());
    b.init_reg(
        Reg::R2,
        image.input_base.get() + image.input_count * kw as u64,
    );
    b.init_reg(Reg::R26, POISON_KEY);
    let top = b.new_label();
    let done = b.new_label();
    b.bind(top);
    b.ble(Reg::R2, Src::Reg(Reg::R1), done);
    b.ld(Reg::R3, Reg::R1, 0, width_of(kw));
    b.add(Reg::OUT, Reg::R3, Src::Imm(0));
    b.add(Reg::OUT, Reg::ZERO, Src::Imm(0)); // pair filler
    b.add(Reg::R1, Reg::R1, Src::Imm(kw as i16));
    b.ba(top);
    b.bind(done);
    for _ in 0..walkers {
        b.add(Reg::OUT, Reg::R26, Src::Imm(0));
        b.add(Reg::OUT, Reg::ZERO, Src::Imm(0));
    }
    b.halt();
    b.build().expect("streaming dispatcher verifies")
}

/// Builds the coupled walker of Figure 3b: pops a raw key, hashes it
/// *itself* (with the unfused expansions Table 1 forces on walkers),
/// computes the bucket address, then walks — hashing sits on the
/// critical path of every traversal, which is exactly what the
/// decoupled design removes.
#[must_use]
pub fn hashing_walker_program(recipe: &HashRecipe, image: &IndexImage) -> Program {
    let layout = image.layout;
    let kw = width_of(layout.key_width);
    let sw = width_of(layout.slot_width());
    let mut b = ProgramBuilder::new(UnitClass::Walker);
    b.init_reg(Reg::R20, POISON_KEY);
    b.init_reg(Reg::R14, image.bucket_count - 1);
    b.init_reg(Reg::R15, image.bucket_base.get());
    let mut consts = Vec::new();

    let item = b.new_label();
    let walk = b.new_label();
    let hnext = b.new_label();
    let chain = b.new_label();
    let cnext = b.new_label();

    b.bind(item);
    b.add(Reg::R1, Reg::IN, Src::Imm(0)); // key
    b.add(Reg::R10, Reg::IN, Src::Imm(0)); // pair filler
    b.cmp(Reg::R9, Reg::R1, Src::Reg(Reg::R20));
    b.ble(Reg::R9, Src::Imm(0), walk);
    b.add(Reg::OUT, Reg::R20, Src::Imm(0));
    b.add(Reg::OUT, Reg::ZERO, Src::Imm(0));
    b.halt();

    b.bind(walk);
    // Hash on the walker itself (coupled design).
    b.mov(Reg::R2, Reg::R1);
    for step in recipe.steps() {
        emit_hash_step_unfused(&mut b, Reg::R2, Reg::R8, *step, &mut consts);
    }
    b.and(Reg::R2, Reg::R2, Src::Reg(Reg::R14));
    b.shl(Reg::R2, Reg::R2, Src::Imm(5));
    b.add(Reg::R2, Reg::R2, Src::Reg(Reg::R15));

    b.ld(
        Reg::R3,
        Reg::R2,
        NodeLayout::HEADER_COUNT_OFFSET as i16,
        Width::W,
    );
    b.ble(Reg::R3, Src::Imm(0), item);
    b.ld(Reg::R4, Reg::R2, NodeLayout::HEADER_SLOT_OFFSET as i16, sw);
    if layout.key_kind == KeyKind::Indirect {
        b.ld(Reg::R4, Reg::R4, 0, kw);
    }
    b.cmp(Reg::R9, Reg::R4, Src::Reg(Reg::R1));
    b.ble(Reg::R9, Src::Imm(0), hnext);
    b.ld(
        Reg::R5,
        Reg::R2,
        NodeLayout::HEADER_PAYLOAD_OFFSET as i16,
        Width::D,
    );
    b.add(Reg::OUT, Reg::R1, Src::Imm(0));
    b.add(Reg::OUT, Reg::R5, Src::Imm(0));
    b.bind(hnext);
    b.ld(
        Reg::R6,
        Reg::R2,
        NodeLayout::HEADER_NEXT_OFFSET as i16,
        Width::D,
    );

    b.bind(chain);
    b.ble(Reg::R6, Src::Imm(0), item);
    b.ld(Reg::R4, Reg::R6, NodeLayout::NODE_SLOT_OFFSET as i16, sw);
    if layout.key_kind == KeyKind::Indirect {
        b.ld(Reg::R4, Reg::R4, 0, kw);
    }
    b.cmp(Reg::R9, Reg::R4, Src::Reg(Reg::R1));
    b.ble(Reg::R9, Src::Imm(0), cnext);
    b.ld(
        Reg::R5,
        Reg::R6,
        NodeLayout::NODE_PAYLOAD_OFFSET as i16,
        Width::D,
    );
    b.add(Reg::OUT, Reg::R1, Src::Imm(0));
    b.add(Reg::OUT, Reg::R5, Src::Imm(0));
    b.bind(cnext);
    b.ld(
        Reg::R6,
        Reg::R6,
        NodeLayout::NODE_NEXT_OFFSET as i16,
        Width::D,
    );
    b.ba(chain);

    b.build().expect("hashing walker verifies")
}

/// Generates the coupled (non-decoupled, Figure 3b) program triple:
/// a streaming dispatcher plus hashing walkers.
#[must_use]
pub fn coupled_program_set(recipe: &HashRecipe, image: &IndexImage, walkers: usize) -> ProgramSet {
    ProgramSet {
        dispatcher: streaming_dispatcher_program(image, walkers),
        walker: hashing_walker_program(recipe, image),
        producer: producer_program(image, walkers),
    }
}

/// The full program triple for an offload.
#[derive(Clone, Debug)]
pub struct ProgramSet {
    /// Dispatcher program.
    pub dispatcher: Program,
    /// Walker program (instantiated once per walker).
    pub walker: Program,
    /// Producer program.
    pub producer: Program,
}

/// Generates all three programs for an offload over `image`.
#[must_use]
pub fn program_set(
    recipe: &HashRecipe,
    image: &IndexImage,
    walkers: usize,
    touch_ahead: bool,
) -> ProgramSet {
    ProgramSet {
        dispatcher: dispatcher_program(recipe, image, walkers, touch_ahead),
        walker: walker_program(image.layout),
        producer: producer_program(image, walkers),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widx_db::index::HashIndex;
    use widx_sim::config::SystemConfig;
    use widx_sim::mem::{MemorySystem, RegionAllocator};
    use widx_workloads::memimg;

    fn image(layout: NodeLayout) -> IndexImage {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let index = HashIndex::build(HashRecipe::robust64(), 64, (0..10u64).map(|k| (k, k)));
        memimg::materialize(&mut mem, &mut alloc, &index, &[1, 2, 3], layout, 3)
    }

    #[test]
    fn all_programs_verify() {
        let img = image(NodeLayout::direct8());
        for recipe in [
            HashRecipe::trivial(),
            HashRecipe::robust64(),
            HashRecipe::heavy128(),
        ] {
            let set = program_set(&recipe, &img, 4, false);
            assert!(set.dispatcher.verify().is_ok());
            assert!(set.walker.verify().is_ok());
            assert!(set.producer.verify().is_ok());
        }
    }

    #[test]
    fn indirect_walker_has_extra_loads() {
        let direct = walker_program(NodeLayout::direct8());
        let indirect = walker_program(NodeLayout::indirect8());
        assert_eq!(indirect.len(), direct.len() + 2);
    }

    #[test]
    fn dispatcher_length_tracks_hash_cost() {
        let img = image(NodeLayout::direct8());
        let light = dispatcher_program(&HashRecipe::trivial(), &img, 1, false);
        let heavy = dispatcher_program(&HashRecipe::heavy128(), &img, 1, false);
        assert!(heavy.len() > light.len());
        let diff = HashRecipe::heavy128().op_count() - HashRecipe::trivial().op_count();
        assert_eq!(heavy.len() - light.len(), diff);
    }

    #[test]
    fn touch_ahead_adds_one_instruction() {
        let img = image(NodeLayout::direct8());
        let plain = dispatcher_program(&HashRecipe::robust64(), &img, 2, false);
        let touch = dispatcher_program(&HashRecipe::robust64(), &img, 2, true);
        assert_eq!(touch.len(), plain.len() + 1);
    }

    #[test]
    fn poison_epilogue_scales_with_walkers() {
        let img = image(NodeLayout::direct8());
        let one = dispatcher_program(&HashRecipe::trivial(), &img, 1, false);
        let four = dispatcher_program(&HashRecipe::trivial(), &img, 4, false);
        assert_eq!(four.len() - one.len(), 6); // 2 pushes per extra walker
    }

    #[test]
    fn programs_encode_for_control_block() {
        let img = image(NodeLayout::indirect8());
        let set = program_set(&HashRecipe::heavy128(), &img, 4, true);
        assert!(set.dispatcher.encode_words().is_ok());
        assert!(set.walker.encode_words().is_ok());
        assert!(set.producer.encode_words().is_ok());
    }
}
