//! The Widx control block (paper Section 4.3).
//!
//! "The application binary must contain a Widx control block, composed
//! of constants and instructions for each of the Widx dispatcher,
//! walker, and output producer units. To configure Widx, the processor
//! initializes memory-mapped registers inside Widx with the starting
//! address ... and length of the Widx control block. Widx then issues a
//! series of loads to consecutive virtual addresses ... to load the
//! instructions and internal registers for each of its units."
//!
//! Binary format (all fields little-endian u64 unless noted):
//!
//! ```text
//! +0   magic  "WIDXCTL1"
//! +8   unit-section count
//! then per section:
//!   +0   unit class      (0 = dispatcher, 1 = walker, 2 = producer)
//!   +8   instruction count N
//!   +16  initialized-register count R
//!   +24  N encoded instruction words (u32 each)
//!   ...  R (register index u64, value u64) pairs
//! ```

use widx_isa::{Program, RegImage, UnitClass};
use widx_sim::mem::{MemorySystem, RegionAllocator, VAddr};
use widx_sim::Cycle;

/// Control-block magic value (`WIDXCTL1` as little-endian bytes).
pub const MAGIC: u64 = u64::from_le_bytes(*b"WIDXCTL1");

/// Error deserializing a control block from memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlBlockError {
    /// The magic word did not match.
    BadMagic(u64),
    /// A unit class tag was invalid.
    BadClass(u64),
    /// An instruction word failed to decode or verify.
    BadProgram(String),
    /// A register index was out of range.
    BadRegister(u64),
}

impl std::fmt::Display for ControlBlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlBlockError::BadMagic(m) => write!(f, "bad control block magic {m:#x}"),
            ControlBlockError::BadClass(c) => write!(f, "bad unit class tag {c}"),
            ControlBlockError::BadProgram(e) => write!(f, "bad unit program: {e}"),
            ControlBlockError::BadRegister(r) => write!(f, "bad register index {r}"),
        }
    }
}

impl std::error::Error for ControlBlockError {}

fn class_tag(class: UnitClass) -> u64 {
    match class {
        UnitClass::Dispatcher => 0,
        UnitClass::Walker => 1,
        UnitClass::Producer => 2,
    }
}

fn class_from_tag(tag: u64) -> Option<UnitClass> {
    match tag {
        0 => Some(UnitClass::Dispatcher),
        1 => Some(UnitClass::Walker),
        2 => Some(UnitClass::Producer),
        _ => None,
    }
}

/// Serializes `programs` into a fresh region of simulated memory;
/// returns the control block's base address and byte length.
///
/// # Panics
///
/// Panics if a program fails to encode (it was already verified, so
/// only pathological branch distances can trigger this).
pub fn write_control_block(
    mem: &mut MemorySystem,
    alloc: &mut RegionAllocator,
    programs: &[&Program],
) -> (VAddr, u64) {
    let mut bytes: Vec<u8> = Vec::new();
    let put64 = |bytes: &mut Vec<u8>, v: u64| bytes.extend_from_slice(&v.to_le_bytes());
    put64(&mut bytes, MAGIC);
    put64(&mut bytes, programs.len() as u64);
    for p in programs {
        put64(&mut bytes, class_tag(p.class()));
        let words = p.encode_words().expect("verified programs encode");
        put64(&mut bytes, words.len() as u64);
        put64(&mut bytes, p.init().len() as u64);
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        for (reg, value) in p.init().iter() {
            put64(&mut bytes, reg.index() as u64);
            put64(&mut bytes, value);
        }
    }
    let region = alloc.alloc_blocks("widx.control", bytes.len() as u64);
    mem.write_bytes(region.base(), &bytes);
    (region.base(), bytes.len() as u64)
}

/// Result of loading a control block: the decoded programs plus the
/// configuration-load latency Widx pays before starting (the paper:
/// "the latency cost of configuring Widx is amortized over the millions
/// of hash table probes").
#[derive(Clone, Debug)]
pub struct LoadedControlBlock {
    /// Decoded, verified unit programs in section order.
    pub programs: Vec<Program>,
    /// Cycle at which configuration completed.
    pub ready_at: Cycle,
}

/// Loads a control block through the memory system with timed accesses.
///
/// # Errors
///
/// Returns [`ControlBlockError`] on a malformed block.
pub fn load_control_block(
    mem: &mut MemorySystem,
    base: VAddr,
    start: Cycle,
) -> Result<LoadedControlBlock, ControlBlockError> {
    let mut cursor = base;
    let mut now = start;
    // Sequential timed u64 loads, as the paper describes.
    let read64 = |mem: &mut MemorySystem, cursor: &mut VAddr, now: &mut Cycle| -> u64 {
        let (v, r) = mem.load(*cursor, 8, *now);
        *now = r.ready;
        *cursor = cursor.offset(8);
        v
    };
    let magic = read64(mem, &mut cursor, &mut now);
    if magic != MAGIC {
        return Err(ControlBlockError::BadMagic(magic));
    }
    let sections = read64(mem, &mut cursor, &mut now);
    let mut programs = Vec::new();
    for _ in 0..sections {
        let class = class_from_tag(read64(mem, &mut cursor, &mut now))
            .ok_or(ControlBlockError::BadClass(u64::MAX))?;
        let n_inst = read64(mem, &mut cursor, &mut now) as usize;
        let n_regs = read64(mem, &mut cursor, &mut now) as usize;
        let mut words = Vec::with_capacity(n_inst);
        for _ in 0..n_inst {
            let (v, r) = mem.load(cursor, 4, now);
            now = r.ready;
            cursor = cursor.offset(4);
            words.push(v as u32);
        }
        let mut init = RegImage::new();
        for _ in 0..n_regs {
            let idx = read64(mem, &mut cursor, &mut now);
            let value = read64(mem, &mut cursor, &mut now);
            let reg = u8::try_from(idx)
                .ok()
                .and_then(widx_isa::Reg::try_new)
                .ok_or(ControlBlockError::BadRegister(idx))?;
            init.set(reg, value);
        }
        let program = Program::decode_words(class, &words, init)
            .map_err(|e| ControlBlockError::BadProgram(e.to_string()))?;
        programs.push(program);
    }
    Ok(LoadedControlBlock {
        programs,
        ready_at: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use widx_db::hash::HashRecipe;
    use widx_db::index::{HashIndex, NodeLayout};
    use widx_sim::config::SystemConfig;
    use widx_workloads::memimg;

    fn setup() -> (MemorySystem, RegionAllocator, crate::programs::ProgramSet) {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let index = HashIndex::build(HashRecipe::robust64(), 16, (0..10u64).map(|k| (k, k)));
        let image = memimg::materialize(
            &mut mem,
            &mut alloc,
            &index,
            &[1, 2],
            NodeLayout::direct8(),
            2,
        );
        let set = programs::program_set(&HashRecipe::robust64(), &image, 4, false);
        (mem, alloc, set)
    }

    #[test]
    fn round_trip_through_memory() {
        let (mut mem, mut alloc, set) = setup();
        let (base, len) = write_control_block(
            &mut mem,
            &mut alloc,
            &[&set.dispatcher, &set.walker, &set.producer],
        );
        assert!(len > 0);
        let loaded = load_control_block(&mut mem, base, 0).expect("well-formed block");
        assert_eq!(loaded.programs.len(), 3);
        assert_eq!(loaded.programs[0], set.dispatcher);
        assert_eq!(loaded.programs[1], set.walker);
        assert_eq!(loaded.programs[2], set.producer);
        // Configuration costs real (but modest) time.
        assert!(loaded.ready_at > 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let (mut mem, mut alloc, set) = setup();
        let (base, _) = write_control_block(&mut mem, &mut alloc, &[&set.walker]);
        mem.write_u64(base, 0xdead);
        assert!(matches!(
            load_control_block(&mut mem, base, 0),
            Err(ControlBlockError::BadMagic(0xdead))
        ));
    }

    #[test]
    fn corrupted_register_index_rejected() {
        let (mut mem, mut alloc, set) = setup();
        let (base, len) = write_control_block(&mut mem, &mut alloc, &[&set.producer]);
        // The producer block ends with (reg, value) pairs; smash the last
        // pair's register index.
        let idx_addr = base.offset(len as i64 - 16);
        mem.write_u64(idx_addr, 99);
        assert!(matches!(
            load_control_block(&mut mem, base, 0),
            Err(ControlBlockError::BadRegister(99))
        ));
    }
}
