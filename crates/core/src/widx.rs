//! The Widx accelerator: units, queues, routing, and the time-ordered
//! scheduler.
//!
//! Topology (paper Figure 6): the dispatcher's output port fans out to
//! one 2-entry pair-queue per walker (round-robin to the first queue
//! with space — "the dispatcher can run ahead with key hashing" while
//! walkers stall); every walker's output port feeds the producer's
//! input queue. Poison pairs (see [`crate::POISON_KEY`]) are routed
//! strictly round-robin so each walker receives exactly one.
//!
//! The scheduler always advances the unit with the smallest local clock,
//! so inter-unit resource contention (shared L1 ports, MSHRs, memory
//! bandwidth, TLB walkers) is resolved in global time order. Units
//! blocked on a queue park until the counterpart acts; parked time is
//! charged to their Idle category — for walkers this is exactly the
//! paper's "walker stall time waiting for a new key from the
//! dispatcher" (Figure 8a).

use widx_sim::mem::MemorySystem;
use widx_sim::stats::CycleBreakdown;
use widx_sim::Cycle;

use crate::config::WidxConfig;
use crate::programs::ProgramSet;
use crate::queue::{Pair, PairQueue};
use crate::unit::{StepOutcome, Unit, UnitIo};
use crate::POISON_KEY;

/// Why a unit is parked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Park {
    /// Runnable.
    None,
    /// Waiting for its input queue to become non-empty.
    OnPop,
    /// Waiting for space in its output destination(s).
    OnPush,
}

/// Queue events produced while stepping one unit, used to un-park
/// counterparties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum QueueEvent {
    /// A pair was pushed into walker `i`'s queue at the given cycle.
    PushedToWalker(usize, Cycle),
    /// A slot freed in walker `i`'s queue.
    FreedWalkerSlot(usize, Cycle),
    /// A pair was pushed into the producer queue.
    PushedToProducer(Cycle),
    /// A slot freed in the producer queue.
    FreedProducerSlot(Cycle),
}

/// Aggregate result of one Widx offload run.
#[derive(Clone, Debug)]
pub struct WidxRunStats {
    /// Wall-clock cycles from offload start to the last unit halting.
    pub total_cycles: Cycle,
    /// Input tuples (probe keys) processed.
    pub tuples: u64,
    /// Result pairs the producer wrote.
    pub matches: u64,
    /// Dispatcher cycle breakdown.
    pub dispatcher: CycleBreakdown,
    /// Per-walker cycle breakdowns.
    pub walkers: Vec<CycleBreakdown>,
    /// Producer cycle breakdown.
    pub producer: CycleBreakdown,
    /// TLB replays across all units.
    pub tlb_replays: u64,
}

impl WidxRunStats {
    /// Mean walker breakdown (the paper's Figures 8a/9a/9b plot walker
    /// cycles per tuple).
    #[must_use]
    pub fn walker_mean(&self) -> CycleBreakdown {
        let n = self.walkers.len().max(1) as u64;
        let sum: CycleBreakdown = self.walkers.iter().copied().sum();
        CycleBreakdown {
            comp: sum.comp / n,
            mem: sum.mem / n,
            tlb: sum.tlb / n,
            idle: sum.idle / n,
        }
    }

    /// Walker cycles per tuple, split by category — the paper's
    /// Figure 8a/9 y-axis. Each walker's elapsed time divides into
    /// Comp/Mem/TLB/Idle; averaging across walkers and dividing by the
    /// *total* tuple count yields a per-tuple breakdown that shrinks
    /// linearly as walkers are added (the mean walker processes
    /// `tuples / N` keys in the same elapsed window).
    #[must_use]
    pub fn walker_cycles_per_tuple(&self) -> widx_sim::stats::BreakdownPer {
        self.walker_mean().per(self.tuples.max(1))
    }

    /// Total cycles per tuple — the indexing-throughput metric the
    /// speedup figures compare against the OoO baseline.
    #[must_use]
    pub fn cycles_per_tuple(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.tuples as f64
        }
    }
}

/// The accelerator instance.
#[derive(Clone, Debug)]
pub struct Widx {
    dispatcher: Unit,
    walkers: Vec<Unit>,
    producer: Unit,
    walker_qs: Vec<PairQueue>,
    prod_q: PairQueue,
    /// First word of a partially assembled outgoing pair, per unit
    /// (index 0 = dispatcher, 1.. = walkers).
    latches: Vec<Option<u64>>,
    rr_next: usize,
    poison_next: usize,
    parked: Vec<Park>,
    start: Cycle,
}

impl Widx {
    /// Builds an accelerator at `start` from a program set and config.
    #[must_use]
    pub fn new(programs: &ProgramSet, config: &WidxConfig, start: Cycle) -> Widx {
        let make = |label: &str, program| {
            let mut unit = Unit::new(label, program, start);
            unit.set_placement(config.placement);
            unit
        };
        let walkers: Vec<Unit> = (0..config.walkers)
            .map(|i| make(&format!("walker{i}"), &programs.walker))
            .collect();
        Widx {
            dispatcher: make("dispatcher", &programs.dispatcher),
            producer: make("producer", &programs.producer),
            walker_qs: (0..config.walkers)
                .map(|_| PairQueue::new(config.queue_depth))
                .collect(),
            prod_q: PairQueue::new(config.producer_queue_depth),
            latches: vec![None; config.walkers + 1],
            rr_next: 0,
            poison_next: 0,
            parked: vec![Park::None; config.walkers + 2],
            walkers,
            start,
        }
    }

    fn unit_count(&self) -> usize {
        self.walkers.len() + 2
    }

    /// Unit ids: 0 = dispatcher, 1..=W = walkers, W+1 = producer.
    fn unit(&self, id: usize) -> &Unit {
        match id {
            0 => &self.dispatcher,
            i if i <= self.walkers.len() => &self.walkers[i - 1],
            _ => &self.producer,
        }
    }

    /// Runs the offload to completion and reports statistics.
    ///
    /// # Panics
    ///
    /// Panics on protocol deadlock (a bug in unit programs) or if the
    /// run exceeds an internal step bound.
    pub fn run(&mut self, mem: &mut MemorySystem) -> WidxRunStats {
        let step_bound: u64 = 20_000_000_000;
        let mut steps = 0u64;
        loop {
            let Some(uid) = self.pick_runnable() else {
                if self.all_halted() {
                    break;
                }
                panic!(
                    "Widx deadlock: parked={:?} pcs/halted={:?}",
                    self.parked,
                    (0..self.unit_count())
                        .map(|i| (self.unit(i).label().to_string(), self.unit(i).halted()))
                        .collect::<Vec<_>>()
                );
            };
            let (outcome, events) = self.step_unit(uid, mem);
            match outcome {
                StepOutcome::Progress | StepOutcome::Halted => {}
                StepOutcome::NeedPop => self.parked[uid] = Park::OnPop,
                StepOutcome::NeedPush => self.parked[uid] = Park::OnPush,
            }
            self.apply_events(&events);
            steps += 1;
            assert!(steps < step_bound, "Widx run exceeded step bound");
        }
        self.collect_stats()
    }

    fn all_halted(&self) -> bool {
        (0..self.unit_count()).all(|i| self.unit(i).halted())
    }

    fn pick_runnable(&self) -> Option<usize> {
        (0..self.unit_count())
            .filter(|i| !self.unit(*i).halted() && self.parked[*i] == Park::None)
            .min_by_key(|i| self.unit(*i).now())
    }

    fn apply_events(&mut self, events: &[QueueEvent]) {
        for event in events {
            match *event {
                QueueEvent::PushedToWalker(i, t) => {
                    let uid = 1 + i;
                    if self.parked[uid] == Park::OnPop {
                        self.parked[uid] = Park::None;
                        self.walkers[i].wake_at(t);
                    }
                }
                QueueEvent::FreedWalkerSlot(_, t) => {
                    if self.parked[0] == Park::OnPush {
                        self.parked[0] = Park::None;
                        self.dispatcher.wake_at(t);
                    }
                }
                QueueEvent::PushedToProducer(t) => {
                    let uid = self.walkers.len() + 1;
                    if self.parked[uid] == Park::OnPop {
                        self.parked[uid] = Park::None;
                        self.producer.wake_at(t);
                    }
                }
                QueueEvent::FreedProducerSlot(t) => {
                    for (i, walker) in self.walkers.iter_mut().enumerate() {
                        if self.parked[1 + i] == Park::OnPush {
                            self.parked[1 + i] = Park::None;
                            walker.wake_at(t);
                        }
                    }
                }
            }
        }
    }

    fn step_unit(&mut self, uid: usize, mem: &mut MemorySystem) -> (StepOutcome, Vec<QueueEvent>) {
        let mut events = Vec::new();
        let walkers_len = self.walkers.len();
        if uid == 0 {
            let mut io = DispatcherIo {
                latch: &mut self.latches[0],
                queues: &mut self.walker_qs,
                rr_next: &mut self.rr_next,
                poison_next: &mut self.poison_next,
                events: &mut events,
            };
            let outcome = self.dispatcher.step(mem, &mut io);
            (outcome, events)
        } else if uid <= walkers_len {
            let i = uid - 1;
            let mut io = WalkerIo {
                index: i,
                in_q: &mut self.walker_qs[i],
                latch: &mut self.latches[1 + i],
                prod_q: &mut self.prod_q,
                events: &mut events,
            };
            let outcome = self.walkers[i].step(mem, &mut io);
            (outcome, events)
        } else {
            let mut io = ProducerIo {
                in_q: &mut self.prod_q,
                events: &mut events,
            };
            let outcome = self.producer.step(mem, &mut io);
            (outcome, events)
        }
    }

    fn collect_stats(&self) -> WidxRunStats {
        let end = (0..self.unit_count())
            .map(|i| self.unit(i).now())
            .max()
            .unwrap_or(self.start);
        let poisons = self.walkers.len() as u64;
        let tuples = self.walker_qs.iter().map(PairQueue::pushes).sum::<u64>() - poisons;
        WidxRunStats {
            total_cycles: end - self.start,
            tuples,
            matches: self.producer.stores() / 2,
            dispatcher: self.dispatcher.breakdown(),
            walkers: self.walkers.iter().map(Unit::breakdown).collect(),
            producer: self.producer.breakdown(),
            tlb_replays: (0..self.unit_count())
                .map(|i| self.unit(i).tlb_replays())
                .sum(),
        }
    }
}

/// Dispatcher IO: no input; output latches words into pairs and routes
/// them to walker queues.
struct DispatcherIo<'a> {
    latch: &'a mut Option<u64>,
    queues: &'a mut [PairQueue],
    rr_next: &'a mut usize,
    poison_next: &'a mut usize,
    events: &'a mut Vec<QueueEvent>,
}

impl DispatcherIo<'_> {
    fn target_for(&self, first_word: u64) -> Option<usize> {
        if first_word == POISON_KEY {
            let t = *self.poison_next;
            return self.queues[t].has_space().then_some(t);
        }
        let n = self.queues.len();
        (0..n)
            .map(|k| (*self.rr_next + k) % n)
            .find(|q| self.queues[*q].has_space())
    }
}

impl UnitIo for DispatcherIo<'_> {
    fn try_pop(&mut self) -> Option<(u64, Cycle)> {
        None // the dispatcher has no input queue
    }

    fn can_push(&mut self) -> bool {
        match *self.latch {
            None => true, // the pair latch always has room for word 1
            Some(first) => self.target_for(first).is_some(),
        }
    }

    fn push(&mut self, word: u64, now: Cycle) {
        match self.latch.take() {
            None => *self.latch = Some(word),
            Some(first) => {
                let target = self.target_for(first).expect("push follows can_push");
                let pair: Pair = [first, word];
                self.queues[target].push(pair, now);
                if first == POISON_KEY {
                    *self.poison_next += 1;
                } else {
                    *self.rr_next = (target + 1) % self.queues.len();
                }
                self.events.push(QueueEvent::PushedToWalker(target, now));
            }
        }
    }
}

/// Walker IO: pops its own queue, pushes pairs to the producer queue.
struct WalkerIo<'a> {
    index: usize,
    in_q: &'a mut PairQueue,
    latch: &'a mut Option<u64>,
    prod_q: &'a mut PairQueue,
    events: &'a mut Vec<QueueEvent>,
}

impl UnitIo for WalkerIo<'_> {
    fn try_pop(&mut self) -> Option<(u64, Cycle)> {
        let popped = self.in_q.pop_word();
        if let Some((_, at)) = popped {
            if !self.in_q.half_pending() {
                self.events
                    .push(QueueEvent::FreedWalkerSlot(self.index, at));
            }
        }
        popped
    }

    fn can_push(&mut self) -> bool {
        match *self.latch {
            None => true, // word 1 goes to the pair latch
            Some(_) => self.prod_q.has_space(),
        }
    }

    fn push(&mut self, word: u64, now: Cycle) {
        match self.latch.take() {
            None => *self.latch = Some(word),
            Some(first) => {
                self.prod_q.push([first, word], now);
                self.events.push(QueueEvent::PushedToProducer(now));
            }
        }
    }
}

/// Producer IO: pops the shared queue; never pushes.
struct ProducerIo<'a> {
    in_q: &'a mut PairQueue,
    events: &'a mut Vec<QueueEvent>,
}

impl UnitIo for ProducerIo<'_> {
    fn try_pop(&mut self) -> Option<(u64, Cycle)> {
        let popped = self.in_q.pop_word();
        if let Some((_, at)) = popped {
            if !self.in_q.half_pending() {
                self.events.push(QueueEvent::FreedProducerSlot(at));
            }
        }
        popped
    }

    fn can_push(&mut self) -> bool {
        false
    }

    fn push(&mut self, _word: u64, _now: Cycle) {
        panic!("the producer has no output queue");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::program_set;
    use widx_db::hash::HashRecipe;
    use widx_db::index::{HashIndex, NodeLayout};
    use widx_sim::config::SystemConfig;
    use widx_sim::mem::RegionAllocator;
    use widx_workloads::memimg;

    fn run(walkers: usize, probes: usize) -> WidxRunStats {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let index = HashIndex::build(HashRecipe::robust64(), 64, (0..64u64).map(|k| (k, k)));
        let probe_keys: Vec<u64> = (0..probes as u64).map(|i| i % 64).collect();
        let image = memimg::materialize(
            &mut mem,
            &mut alloc,
            &index,
            &probe_keys,
            NodeLayout::direct8(),
            probes as u64,
        );
        let set = program_set(index.recipe(), &image, walkers, false);
        Widx::new(&set, &WidxConfig::with_walkers(walkers), 0).run(&mut mem)
    }

    #[test]
    fn every_walker_terminates_via_poison() {
        for walkers in [1, 2, 3, 4] {
            let stats = run(walkers, 40);
            assert_eq!(stats.walkers.len(), walkers);
            assert_eq!(stats.tuples, 40, "walkers={walkers}");
            assert_eq!(stats.matches, 40);
        }
    }

    #[test]
    fn breakdowns_cover_elapsed_time() {
        let stats = run(2, 60);
        for w in &stats.walkers {
            // A walker is busy or stalled for (almost) the whole run;
            // small slack covers start/finish skew.
            assert!(w.total() <= stats.total_cycles + 2);
            assert!(
                w.total() * 2 >= stats.total_cycles,
                "walker under-accounted: {w:?}"
            );
        }
    }

    #[test]
    fn stats_math() {
        let stats = WidxRunStats {
            total_cycles: 1000,
            tuples: 100,
            matches: 40,
            dispatcher: Default::default(),
            walkers: vec![
                widx_sim::stats::CycleBreakdown {
                    comp: 100,
                    mem: 300,
                    tlb: 0,
                    idle: 0,
                },
                widx_sim::stats::CycleBreakdown {
                    comp: 200,
                    mem: 400,
                    tlb: 0,
                    idle: 100,
                },
            ],
            producer: Default::default(),
            tlb_replays: 0,
        };
        assert!((stats.cycles_per_tuple() - 10.0).abs() < 1e-12);
        let mean = stats.walker_mean();
        assert_eq!(mean.comp, 150);
        assert_eq!(mean.mem, 350);
        let per = stats.walker_cycles_per_tuple();
        assert!((per.comp - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_probe_run_terminates_quickly() {
        let stats = run(4, 0);
        assert_eq!(stats.tuples, 0);
        assert_eq!(stats.matches, 0);
        assert!(stats.total_cycles < 1000);
    }
}
