//! Widx configuration: unit counts, queue depths, and the memory-mapped
//! configuration registers of the paper's Section 4.3.

use widx_sim::mem::VAddr;

use crate::placement::Placement;

/// Accelerator configuration.
///
/// The paper's evaluated design points are 1, 2, and 4 walkers, always
/// with one shared dispatcher and one result producer, and "2-entry
/// queues at the input and output of each walker unit" (Section 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WidxConfig {
    /// Number of walker units (the paper evaluates 1, 2, 4; its
    /// Section 3.2 model bounds useful counts at ~4).
    pub walkers: usize,
    /// Per-walker input queue depth in pairs.
    pub queue_depth: usize,
    /// Producer input queue depth in pairs.
    pub producer_queue_depth: usize,
    /// Whether the dispatcher issues a `TOUCH` for the bucket header
    /// before handing the key to a walker (prefetch ablation; off by
    /// default, matching the paper's described design).
    pub touch_ahead: bool,
    /// Where Widx sits in the hierarchy (core-coupled by default; the
    /// Section 7 LLC-side ablation is available via
    /// [`with_placement`](WidxConfig::with_placement)).
    pub placement: Placement,
}

impl WidxConfig {
    /// The paper's default design point: 4 walkers, 2-entry queues.
    #[must_use]
    pub fn paper_default() -> WidxConfig {
        WidxConfig::with_walkers(4)
    }

    /// A design point with `walkers` walkers and 2-entry queues.
    ///
    /// # Panics
    ///
    /// Panics if `walkers` is zero.
    #[must_use]
    pub fn with_walkers(walkers: usize) -> WidxConfig {
        assert!(walkers > 0, "at least one walker is required");
        WidxConfig {
            walkers,
            queue_depth: 2,
            producer_queue_depth: 2 * walkers,
            touch_ahead: false,
            placement: Placement::CoreCoupled,
        }
    }

    /// Overrides the placement (LLC-side ablation).
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> WidxConfig {
        self.placement = placement;
        self
    }

    /// Overrides the per-walker queue depth (queue-depth ablation).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> WidxConfig {
        assert!(depth > 0, "queue depth must be positive");
        self.queue_depth = depth;
        self.producer_queue_depth = self.producer_queue_depth.max(depth);
        self
    }

    /// Enables dispatcher touch-ahead (prefetch ablation).
    #[must_use]
    pub fn with_touch_ahead(mut self) -> WidxConfig {
        self.touch_ahead = true;
        self
    }

    /// Total unit count (dispatcher + walkers + producer) — the paper's
    /// area/power numbers are quoted for 6 units (4 walkers).
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.walkers + 2
    }
}

impl Default for WidxConfig {
    fn default() -> WidxConfig {
        WidxConfig::paper_default()
    }
}

/// The memory-mapped configuration registers the host writes before
/// signalling Widx to begin (paper Section 4.3): "base address and
/// length of the input table, base address of the hash table, starting
/// address of the results region, and a NULL value identifier".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigRegisters {
    /// Base of the probe-key input table.
    pub input_base: VAddr,
    /// Number of input keys.
    pub input_len: u64,
    /// Base of the hash-table bucket array.
    pub hash_table_base: VAddr,
    /// Base of the results region.
    pub results_base: VAddr,
    /// NULL identifier (doubles as the poison key).
    pub null_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_four_walkers() {
        let c = WidxConfig::paper_default();
        assert_eq!(c.walkers, 4);
        assert_eq!(c.queue_depth, 2);
        assert_eq!(c.unit_count(), 6);
        assert!(!c.touch_ahead);
    }

    #[test]
    fn builders() {
        let c = WidxConfig::with_walkers(2)
            .with_queue_depth(8)
            .with_touch_ahead();
        assert_eq!(c.walkers, 2);
        assert_eq!(c.queue_depth, 8);
        assert!(c.touch_ahead);
        assert!(c.producer_queue_depth >= 8);
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn zero_walkers_rejected() {
        let _ = WidxConfig::with_walkers(0);
    }
}
