//! Widx programs for B+-tree traversal — the paper's Section 7
//! extension to "other index structures, such as balanced trees".
//!
//! The division of labour mirrors the hash pipeline: the dispatcher
//! streams `(key, root address)` pairs (trees need no key hashing — the
//! dispatcher is pure key fetch), walkers descend the tree comparing
//! separator keys and chasing child pointers, and the shared producer
//! writes `(key, payload)` matches.

use widx_db::index::BTreeIndex;
use widx_isa::{Program, ProgramBuilder, Reg, Src, UnitClass};
use widx_sim::mem::MemorySystem;
use widx_workloads::btree_img::BTreeImage;

use crate::config::{ConfigRegisters, WidxConfig};
use crate::programs::ProgramSet;
use crate::widx::Widx;
use crate::POISON_KEY;

/// Builds the B+-tree dispatcher: stream `(key, root)` pairs, then
/// poison pills.
#[must_use]
pub fn btree_dispatcher_program(image: &BTreeImage, walkers: usize) -> Program {
    let mut b = ProgramBuilder::new(UnitClass::Dispatcher);
    b.init_reg(Reg::R1, image.input_base.get());
    b.init_reg(Reg::R2, image.input_base.get() + image.input_count * 8);
    b.init_reg(Reg::R7, image.root_addr.get());
    b.init_reg(Reg::R26, POISON_KEY);
    let top = b.new_label();
    let done = b.new_label();
    b.bind(top);
    b.ble(Reg::R2, Src::Reg(Reg::R1), done);
    b.ld_d(Reg::R3, Reg::R1, 0);
    b.add(Reg::OUT, Reg::R3, Src::Imm(0));
    b.add(Reg::OUT, Reg::R7, Src::Imm(0));
    b.add(Reg::R1, Reg::R1, Src::Imm(8));
    b.ba(top);
    b.bind(done);
    for _ in 0..walkers {
        b.add(Reg::OUT, Reg::R26, Src::Imm(0));
        b.add(Reg::OUT, Reg::ZERO, Src::Imm(0));
    }
    b.halt();
    b.build().expect("btree dispatcher verifies")
}

/// Builds the B+-tree walker: descend `inner_levels` inner nodes by
/// scanning separators, then scan the leaf and emit the first match
/// (the tree's `lookup` semantics).
///
/// # Panics
///
/// Panics if the fanout's field offsets exceed the load-offset
/// immediate range (fanout ≤ 128 is always safe).
#[must_use]
pub fn btree_walker_program(image: &BTreeImage) -> Program {
    let f = image.fanout;
    let child_off = i16::try_from(BTreeImage::child_array_offset(f)).expect("fanout in range");
    let payload_delta = i16::try_from(8 * f).expect("fanout in range");
    let mut b = ProgramBuilder::new(UnitClass::Walker);
    b.init_reg(Reg::R20, POISON_KEY);
    b.init_reg(Reg::R12, image.inner_levels);

    let item = b.new_label();
    let descend = b.new_label();
    let inner_top = b.new_label();
    let scan = b.new_label();
    let pick = b.new_label();
    let leaf = b.new_label();
    let lscan = b.new_label();
    let lnext = b.new_label();

    b.bind(item);
    b.add(Reg::R1, Reg::IN, Src::Imm(0)); // key
    b.add(Reg::R2, Reg::IN, Src::Imm(0)); // root address
    b.cmp(Reg::R9, Reg::R1, Src::Reg(Reg::R20));
    b.ble(Reg::R9, Src::Imm(0), descend);
    b.add(Reg::OUT, Reg::R20, Src::Imm(0)); // forward poison
    b.add(Reg::OUT, Reg::ZERO, Src::Imm(0));
    b.halt();

    b.bind(descend);
    b.mov(Reg::R10, Reg::R12); // levels remaining

    b.bind(inner_top);
    b.ble(Reg::R10, Src::Imm(0), leaf);
    b.ld_d(Reg::R3, Reg::R2, 0); // separator count
    b.li(Reg::R6, 0); // slot i
    b.add(Reg::R5, Reg::R2, Src::Imm(8)); // cursor at keys[0]
    b.bind(scan);
    b.ble(Reg::R3, Src::Reg(Reg::R6), pick); // i >= count -> last child
    b.ld_d(Reg::R4, Reg::R5, 0);
    b.cmp_le(Reg::R9, Reg::R4, Src::Reg(Reg::R1)); // keys[i] <= key ?
    b.ble(Reg::R9, Src::Imm(0), pick); // key < keys[i] -> child i
    b.add(Reg::R6, Reg::R6, Src::Imm(1));
    b.add(Reg::R5, Reg::R5, Src::Imm(8));
    b.ba(scan);
    b.bind(pick);
    b.shl(Reg::R7, Reg::R6, Src::Imm(3));
    b.add(Reg::R7, Reg::R7, Src::Reg(Reg::R2));
    b.ld_d(Reg::R2, Reg::R7, child_off); // child address
    b.add(Reg::R10, Reg::R10, Src::Imm(-1));
    b.ba(inner_top);

    b.bind(leaf);
    b.ld_d(Reg::R3, Reg::R2, 0); // key count
    b.li(Reg::R6, 0);
    b.add(Reg::R5, Reg::R2, Src::Imm(8));
    b.bind(lscan);
    b.ble(Reg::R3, Src::Reg(Reg::R6), item); // exhausted -> next item
    b.ld_d(Reg::R4, Reg::R5, 0);
    b.cmp(Reg::R9, Reg::R4, Src::Reg(Reg::R1));
    b.ble(Reg::R9, Src::Imm(0), lnext);
    b.ld_d(Reg::R8, Reg::R5, payload_delta); // payloads sit 8*F past keys
    b.add(Reg::OUT, Reg::R1, Src::Imm(0));
    b.add(Reg::OUT, Reg::R8, Src::Imm(0));
    b.ba(item); // first-match semantics
    b.bind(lnext);
    b.add(Reg::R6, Reg::R6, Src::Imm(1));
    b.add(Reg::R5, Reg::R5, Src::Imm(8));
    b.ba(lscan);

    b.build().expect("btree walker verifies")
}

/// Builds the producer for a B+-tree offload (identical role to the
/// hash producer; only the output base differs).
#[must_use]
pub fn btree_producer_program(image: &BTreeImage, walkers: usize) -> Program {
    let mut b = ProgramBuilder::new(UnitClass::Producer);
    b.init_reg(Reg::R1, image.output_base.get());
    b.init_reg(Reg::R20, POISON_KEY);
    b.init_reg(Reg::R21, walkers as u64);
    let top = b.new_label();
    let store = b.new_label();
    let done = b.new_label();
    b.bind(top);
    b.add(Reg::R3, Reg::IN, Src::Imm(0));
    b.add(Reg::R4, Reg::IN, Src::Imm(0));
    b.cmp(Reg::R9, Reg::R3, Src::Reg(Reg::R20));
    b.ble(Reg::R9, Src::Imm(0), store);
    b.add(Reg::R21, Reg::R21, Src::Imm(-1));
    b.ble(Reg::R21, Src::Imm(0), done);
    b.ba(top);
    b.bind(store);
    b.st_d(Reg::R3, Reg::R1, 0);
    b.st_d(Reg::R4, Reg::R1, 8);
    b.add(Reg::R1, Reg::R1, Src::Imm(16));
    b.ba(top);
    b.bind(done);
    b.halt();
    b.build().expect("btree producer verifies")
}

/// Result of a B+-tree offload.
#[derive(Clone, Debug)]
pub struct BTreeOffloadResult {
    /// Timing and per-unit accounting.
    pub stats: crate::widx::WidxRunStats,
    /// `(key, payload)` matches read back from the output region.
    pub matches: Vec<(u64, u64)>,
    /// Configuration registers used.
    pub registers: ConfigRegisters,
}

/// Offloads a B+-tree probe batch (already materialized as `image`).
#[must_use]
pub fn offload_btree_probe(
    mem: &mut MemorySystem,
    image: &BTreeImage,
    config: &WidxConfig,
) -> BTreeOffloadResult {
    let set = ProgramSet {
        dispatcher: btree_dispatcher_program(image, config.walkers),
        walker: btree_walker_program(image),
        producer: btree_producer_program(image, config.walkers),
    };
    let mut widx = Widx::new(&set, config, 0);
    let stats = widx.run(mem);
    let matches = (0..stats.matches)
        .map(|i| {
            let slot = image.output_addr(i);
            (mem.read_u64(slot), mem.read_u64(slot.offset(8)))
        })
        .collect();
    BTreeOffloadResult {
        registers: ConfigRegisters {
            input_base: image.input_base,
            input_len: image.input_count,
            hash_table_base: image.root_addr,
            results_base: image.output_base,
            null_id: POISON_KEY,
        },
        stats,
        matches,
    }
}

/// Builds a tree + probes, materializes, and offloads in one call (used
/// by tests and the ablation harness).
#[must_use]
pub fn run_btree(
    tree: &BTreeIndex,
    probes: &[u64],
    config: &WidxConfig,
) -> (BTreeOffloadResult, BTreeImage) {
    use widx_sim::config::SystemConfig;
    use widx_sim::mem::RegionAllocator;
    let mut mem = MemorySystem::new(SystemConfig::default());
    let mut alloc = RegionAllocator::new();
    let expected = probes.iter().filter(|p| tree.lookup(**p).is_some()).count() as u64;
    let image =
        widx_workloads::btree_img::materialize_btree(&mut mem, &mut alloc, tree, probes, expected);
    let result = offload_btree_probe(&mut mem, &image, config);
    (result, image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(entries: u64, fanout: usize) -> BTreeIndex {
        BTreeIndex::build(fanout, (0..entries).map(|k| (k * 3, k)))
    }

    fn check(tree: &BTreeIndex, probes: &[u64], walkers: usize) {
        let (result, _) = run_btree(tree, probes, &WidxConfig::with_walkers(walkers));
        let mut got = result.matches.clone();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = probes
            .iter()
            .filter_map(|p| tree.lookup(*p).map(|v| (*p, v)))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "walkers={walkers}");
    }

    #[test]
    fn matches_oracle_across_walker_counts() {
        let t = tree(2000, 8);
        let probes: Vec<u64> = (0..500u64).map(|i| i * 7 % 6600).collect();
        for walkers in [1, 2, 4] {
            check(&t, &probes, walkers);
        }
    }

    #[test]
    fn single_leaf_tree_works() {
        let t = tree(5, 8);
        check(&t, &[0, 3, 6, 9, 100], 2);
    }

    #[test]
    fn deep_narrow_tree_works() {
        let t = tree(3000, 4);
        let probes: Vec<u64> = (0..300u64).map(|i| i * 31 % 9100).collect();
        check(&t, &probes, 4);
    }

    #[test]
    fn walkers_scale_on_dram_resident_tree() {
        // Large tree: descents are pointer chases through DRAM.
        let t = tree(200_000, 8);
        let probes: Vec<u64> = (0..600u64).map(|i| (i * 997) % 600_000).collect();
        let (one, _) = run_btree(&t, &probes, &WidxConfig::with_walkers(1));
        let (four, _) = run_btree(&t, &probes, &WidxConfig::with_walkers(4));
        assert!(
            four.stats.total_cycles * 2 < one.stats.total_cycles,
            "4 walkers {} vs 1 walker {}",
            four.stats.total_cycles,
            one.stats.total_cycles
        );
    }

    #[test]
    fn programs_verify_and_encode() {
        let t = tree(1000, 16);
        let probes = vec![1u64];
        let mut mem = MemorySystem::new(widx_sim::config::SystemConfig::default());
        let mut alloc = widx_sim::mem::RegionAllocator::new();
        let image =
            widx_workloads::btree_img::materialize_btree(&mut mem, &mut alloc, &t, &probes, 1);
        for p in [
            btree_dispatcher_program(&image, 4),
            btree_walker_program(&image),
            btree_producer_program(&image, 4),
        ] {
            assert!(p.verify().is_ok());
            assert!(p.encode_words().is_ok());
        }
    }
}
