//! Widx placement: core-coupled (the paper's design) vs. LLC-side (the
//! Section 7 ablation).
//!
//! The paper argues the balance favours coupling Widx to a host core —
//! reusing its MMU and L1-D — but notes an LLC-side Widx would enjoy
//! lower LLC access latency and reduced L1 MSHR pressure at the cost of
//! dedicated translation hardware and the loss of L1 locality. This
//! module provides the alternative placement so the
//! `ablation_llc_widx` harness can quantify that trade-off.

use widx_sim::config::TlbConfig;

/// Where the Widx units' memory accesses enter the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Tightly coupled to the host core: translation through the host
    /// MMU, data through the host L1-D (the paper's design).
    #[default]
    CoreCoupled,
    /// Next to the LLC: a dedicated (smaller) TLB, accesses enter at
    /// the LLC — no L1 hits, but no L1-port/MSHR contention and one
    /// crossbar traversal less per access.
    LlcSide,
}

impl Placement {
    /// The dedicated TLB an LLC-side Widx carries (smaller than the
    /// core MMU's: translation hardware is expensive next to the LLC).
    #[must_use]
    pub fn dedicated_tlb_config() -> TlbConfig {
        TlbConfig {
            entries: 32,
            in_flight: 2,
            walk_latency: 60,
            page_bytes: 4096,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_core_coupled() {
        assert_eq!(Placement::default(), Placement::CoreCoupled);
    }

    #[test]
    fn dedicated_tlb_is_smaller_and_slower() {
        let dedicated = Placement::dedicated_tlb_config();
        let host = widx_sim::config::SystemConfig::default().tlb;
        assert!(dedicated.entries < host.entries);
        assert!(dedicated.walk_latency > host.walk_latency);
    }
}
