//! Full offload of an index-probe operation (paper Section 4.3).
//!
//! The host core writes Widx's configuration registers, signals it to
//! start, and "enters an idle loop" — Widx owns the probe until the
//! producer halts, after which the results sit in the output region.

use widx_db::index::HashIndex;
use widx_sim::mem::MemorySystem;
use widx_sim::Cycle;
use widx_workloads::memimg::IndexImage;

use crate::config::{ConfigRegisters, WidxConfig};
use crate::programs::program_set;
use crate::widx::{Widx, WidxRunStats};

/// Result of a completed offload.
#[derive(Clone, Debug)]
pub struct OffloadResult {
    /// Timing and per-unit accounting.
    pub stats: WidxRunStats,
    /// `(probe key, payload)` pairs read back from the output region.
    matches: Vec<(u64, u64)>,
    /// The configuration registers used.
    pub registers: ConfigRegisters,
}

impl OffloadResult {
    /// The result pairs Widx wrote, in emission order.
    #[must_use]
    pub fn matches(&self) -> &[(u64, u64)] {
        &self.matches
    }
}

/// Offloads probing `image` with `probes` (already materialized into
/// `mem`) onto a Widx instance configured by `config`, starting at
/// cycle 0.
#[must_use]
pub fn offload_probe(
    mem: &mut MemorySystem,
    index: &HashIndex,
    image: &IndexImage,
    probes: &[u64],
    config: &WidxConfig,
) -> OffloadResult {
    offload_probe_at(mem, index, image, probes, config, 0)
}

/// [`offload_probe`] with an explicit start cycle.
///
/// # Panics
///
/// Panics if Widx writes more result slots than the image reserved
/// (the caller under-sized `expected_matches` at materialization).
#[must_use]
pub fn offload_probe_at(
    mem: &mut MemorySystem,
    index: &HashIndex,
    image: &IndexImage,
    probes: &[u64],
    config: &WidxConfig,
    start: Cycle,
) -> OffloadResult {
    let registers = ConfigRegisters {
        input_base: image.input_base,
        input_len: probes.len() as u64,
        hash_table_base: image.bucket_base,
        results_base: image.output_base,
        null_id: crate::POISON_KEY,
    };
    if config.placement == crate::placement::Placement::LlcSide {
        mem.install_dedicated_tlb(&crate::placement::Placement::dedicated_tlb_config());
    }
    let set = program_set(index.recipe(), image, config.walkers, config.touch_ahead);
    let mut widx = Widx::new(&set, config, start);
    let stats = widx.run(mem);

    assert!(
        stats.matches <= image.output_capacity,
        "output region overflow: {} matches, capacity {}",
        stats.matches,
        image.output_capacity
    );
    let matches = (0..stats.matches)
        .map(|i| {
            let slot = image.output_addr(i);
            (mem.read_u64(slot), mem.read_u64(slot.offset(8)))
        })
        .collect();
    OffloadResult {
        stats,
        matches,
        registers,
    }
}

/// Offloads with the *coupled* (Figure 3b) design: a streaming
/// dispatcher and walkers that hash their own keys — the ablation
/// quantifying what decoupled hashing buys (the paper: decoupling
/// "reduces the time per list traversal by 29% on average").
#[must_use]
pub fn offload_probe_coupled(
    mem: &mut MemorySystem,
    index: &HashIndex,
    image: &IndexImage,
    probes: &[u64],
    config: &WidxConfig,
) -> OffloadResult {
    let registers = ConfigRegisters {
        input_base: image.input_base,
        input_len: probes.len() as u64,
        hash_table_base: image.bucket_base,
        results_base: image.output_base,
        null_id: crate::POISON_KEY,
    };
    let set = crate::programs::coupled_program_set(index.recipe(), image, config.walkers);
    let mut widx = Widx::new(&set, config, 0);
    let stats = widx.run(mem);
    let matches = (0..stats.matches)
        .map(|i| {
            let slot = image.output_addr(i);
            (mem.read_u64(slot), mem.read_u64(slot.offset(8)))
        })
        .collect();
    OffloadResult {
        stats,
        matches,
        registers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widx_db::hash::HashRecipe;
    use widx_db::index::NodeLayout;
    use widx_sim::config::SystemConfig;
    use widx_sim::mem::RegionAllocator;
    use widx_workloads::memimg;

    struct Fixture {
        mem: MemorySystem,
        index: HashIndex,
        image: IndexImage,
        probes: Vec<u64>,
    }

    fn fixture(layout: NodeLayout, recipe: HashRecipe, entries: u64, probes: Vec<u64>) -> Fixture {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        // Payloads are the build-row ids, as indirect layouts require.
        let index = HashIndex::build(recipe, entries as usize, (0..entries).map(|k| (k, k)));
        let expected: u64 = probes
            .iter()
            .map(|p| index.lookup_all(*p).len() as u64)
            .sum();
        let image = memimg::materialize(&mut mem, &mut alloc, &index, &probes, layout, expected);
        Fixture {
            mem,
            index,
            image,
            probes,
        }
    }

    /// Oracle: multiset of (key, payload) matches.
    fn oracle(index: &HashIndex, probes: &[u64]) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = probes
            .iter()
            .flat_map(|p| index.lookup_all(*p).into_iter().map(move |v| (*p, v)))
            .collect();
        out.sort_unstable();
        out
    }

    fn check_matches(result: &OffloadResult, index: &HashIndex, probes: &[u64]) {
        let mut got = result.matches().to_vec();
        got.sort_unstable();
        assert_eq!(
            got,
            oracle(index, probes),
            "Widx results must match the oracle"
        );
    }

    #[test]
    fn direct_layout_results_match_oracle() {
        let probes: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let mut f = fixture(NodeLayout::direct8(), HashRecipe::robust64(), 100, probes);
        for walkers in [1, 2, 4] {
            let mut mem = f.mem.clone();
            let r = offload_probe(
                &mut mem,
                &f.index,
                &f.image,
                &f.probes,
                &WidxConfig::with_walkers(walkers),
            );
            check_matches(&r, &f.index, &f.probes);
            assert_eq!(r.stats.tuples, 50);
        }
        let _ = &mut f;
    }

    #[test]
    fn indirect_layout_results_match_oracle() {
        let probes: Vec<u64> = (0..40).collect();
        let mut f = fixture(NodeLayout::indirect8(), HashRecipe::robust64(), 64, probes);
        let r = offload_probe(
            &mut f.mem,
            &f.index,
            &f.image,
            &f.probes,
            &WidxConfig::paper_default(),
        );
        check_matches(&r, &f.index, &f.probes);
    }

    #[test]
    fn kernel4_layout_results_match_oracle() {
        let probes: Vec<u64> = (0..30).collect();
        let mut f = fixture(NodeLayout::kernel4(), HashRecipe::trivial(), 64, probes);
        let r = offload_probe(
            &mut f.mem,
            &f.index,
            &f.image,
            &f.probes,
            &WidxConfig::with_walkers(2),
        );
        check_matches(&r, &f.index, &f.probes);
    }

    #[test]
    fn duplicate_keys_all_emitted() {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let pairs = vec![(5u64, 1u64), (5, 2), (5, 3), (7, 9)];
        let index = HashIndex::build(HashRecipe::robust64(), 8, pairs);
        let probes = vec![5u64, 7, 11];
        let image = memimg::materialize(
            &mut mem,
            &mut alloc,
            &index,
            &probes,
            NodeLayout::direct8(),
            4,
        );
        let r = offload_probe(
            &mut mem,
            &index,
            &image,
            &probes,
            &WidxConfig::with_walkers(2),
        );
        check_matches(&r, &index, &probes);
        assert_eq!(r.stats.matches, 4);
    }

    #[test]
    fn empty_probe_stream_terminates() {
        let mut f = fixture(NodeLayout::direct8(), HashRecipe::robust64(), 16, vec![]);
        let r = offload_probe(
            &mut f.mem,
            &f.index,
            &f.image,
            &f.probes,
            &WidxConfig::with_walkers(4),
        );
        assert_eq!(r.stats.tuples, 0);
        assert_eq!(r.stats.matches, 0);
        assert!(r.matches().is_empty());
    }

    #[test]
    fn misses_produce_no_output() {
        let probes: Vec<u64> = (1000..1050).collect(); // all misses
        let mut f = fixture(NodeLayout::direct8(), HashRecipe::robust64(), 100, probes);
        let r = offload_probe(
            &mut f.mem,
            &f.index,
            &f.image,
            &f.probes,
            &WidxConfig::with_walkers(4),
        );
        assert_eq!(r.stats.matches, 0);
        assert_eq!(r.stats.tuples, 50);
    }

    #[test]
    fn more_walkers_do_not_change_results_but_speed_up() {
        let probes: Vec<u64> = (0..400).map(|i| i % 128).collect();
        let f = fixture(
            NodeLayout::direct8(),
            HashRecipe::robust64(),
            128,
            probes.clone(),
        );
        let mut cycles = Vec::new();
        for walkers in [1, 2, 4] {
            let mut mem = f.mem.clone();
            let r = offload_probe(
                &mut mem,
                &f.index,
                &f.image,
                &probes,
                &WidxConfig::with_walkers(walkers),
            );
            check_matches(&r, &f.index, &probes);
            cycles.push(r.stats.total_cycles);
        }
        assert!(
            cycles[1] < cycles[0],
            "2 walkers {} < 1 walker {}",
            cycles[1],
            cycles[0]
        );
        assert!(
            cycles[2] < cycles[1],
            "4 walkers {} < 2 walkers {}",
            cycles[2],
            cycles[1]
        );
    }

    #[test]
    fn coupled_design_matches_oracle_but_is_slower() {
        // LLC-resident index with a robust hash: hashing on the walk
        // critical path should cost measurably more than the decoupled
        // design (the paper's ~29% traversal-time claim).
        let probes: Vec<u64> = (0..600).map(|i| i % 256).collect();
        let f = fixture(
            NodeLayout::direct8(),
            HashRecipe::robust64(),
            256,
            probes.clone(),
        );
        let cfg = WidxConfig::with_walkers(1);
        let mut mem_a = f.mem.clone();
        let decoupled = offload_probe(&mut mem_a, &f.index, &f.image, &probes, &cfg);
        let mut mem_b = f.mem.clone();
        let coupled = offload_probe_coupled(&mut mem_b, &f.index, &f.image, &probes, &cfg);
        check_matches(&coupled, &f.index, &probes);
        assert!(
            coupled.stats.total_cycles > decoupled.stats.total_cycles,
            "coupled {} should exceed decoupled {}",
            coupled.stats.total_cycles,
            decoupled.stats.total_cycles
        );
    }

    #[test]
    fn walker_idle_appears_when_dispatcher_bound() {
        // A tiny L1-resident index: walkers are fast, the dispatcher's
        // robust hash is the bottleneck, so walkers accumulate Idle —
        // the paper's Small-index behaviour (Fig. 8a).
        let probes: Vec<u64> = (0..300).map(|i| i % 16).collect();
        let mut f = fixture(NodeLayout::direct8(), HashRecipe::heavy128(), 16, probes);
        widx_workloads::memimg::warm(&mut f.mem, &f.image);
        let r = offload_probe(
            &mut f.mem,
            &f.index,
            &f.image,
            &f.probes,
            &WidxConfig::with_walkers(4),
        );
        let idle: u64 = r.stats.walkers.iter().map(|w| w.idle).sum();
        assert!(
            idle > 0,
            "expected walker idle cycles, breakdown {:?}",
            r.stats.walkers
        );
    }
}
