//! # widx-core — the Widx accelerator
//!
//! The paper's contribution: a cycle-level, *functional* model of the
//! Widx database-indexing accelerator (Figure 6) — one key-hashing
//! **dispatcher**, up to four node-list **walkers**, and an **output
//! producer**, each a 2-stage RISC unit executing `widx-isa` programs,
//! communicating through 2-entry queues, and sharing the host core's MMU
//! and cache hierarchy (`widx-sim`).
//!
//! "Functional" matters: the units really execute their programs against
//! the simulated memory's real bytes. The join results Widx produces are
//! read back from the output region and checked against software
//! oracles, so the timing model cannot drift from the semantics.
//!
//! Modules:
//!
//! * [`queue`] — timed bounded pair-queues between units.
//! * [`unit`] — the 2-stage pipeline interpreter with the paper's
//!   blocking loads, `TOUCH` prefetch, queue-port register semantics,
//!   and retry-on-TLB-miss (Section 4.3).
//! * [`programs`] — canonical dispatcher / walker / producer programs
//!   generated for a hash recipe + node layout (Section 4.2's
//!   "three functions" the DBMS developer supplies).
//! * [`config`] — [`config::WidxConfig`]: walker count, queue depths,
//!   and the memory-mapped configuration registers of Section 4.3.
//! * [`control`] — the in-memory Widx control block (encoded programs +
//!   initial register images) and its load path.
//! * [`widx`] — the accelerator itself: the time-ordered scheduler over
//!   all units, pair routing (round-robin dispatch to walkers, poison-
//!   pill termination), and per-unit Comp/Mem/TLB/Idle accounting.
//! * [`offload`] — one-call offload of a materialized index probe, plus
//!   result read-back.
//! * [`placement`] — the LLC-side Widx ablation of Section 7.
//! * [`btree`] — B+-tree walker programs, the Section 7 "other index
//!   structures" extension.
//!
//! # Example
//!
//! ```
//! use widx_core::config::WidxConfig;
//! use widx_core::offload;
//! use widx_db::hash::HashRecipe;
//! use widx_db::index::{HashIndex, NodeLayout};
//! use widx_sim::config::SystemConfig;
//! use widx_sim::mem::{MemorySystem, RegionAllocator};
//! use widx_workloads::memimg;
//!
//! let mut mem = MemorySystem::new(SystemConfig::default());
//! let mut alloc = RegionAllocator::new();
//! let index = HashIndex::build(HashRecipe::robust64(), 64, (0..100u64).map(|k| (k, k)));
//! let probes: Vec<u64> = (0..20u64).collect();
//! let image = memimg::materialize(&mut mem, &mut alloc, &index, &probes,
//!                                 NodeLayout::direct8(), 20);
//!
//! let result = offload::offload_probe(&mut mem, &index, &image, &probes,
//!                                     &WidxConfig::with_walkers(4));
//! assert_eq!(result.matches().len(), 20); // every probe matched once
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod config;
pub mod control;
pub mod offload;
pub mod placement;
pub mod programs;
pub mod queue;
pub mod unit;
pub mod widx;

/// The poison-pill key that terminates the unit pipeline: the dispatcher
/// sends one per walker after the last input key; each walker forwards
/// it to the producer and halts; the producer halts after collecting one
/// from every walker. This doubles as the configuration interface's
/// "NULL value identifier" (paper Section 4.3).
pub const POISON_KEY: u64 = u64::MAX;
