//! Property test: for arbitrary build/probe multisets, layouts, hash
//! recipes, and walker counts, the Widx accelerator's output equals the
//! software oracle — the strongest end-to-end guarantee the functional
//! simulation offers.

use proptest::prelude::*;
use widx_core::config::WidxConfig;
use widx_core::offload::offload_probe;
use widx_db::hash::HashRecipe;
use widx_db::index::{HashIndex, KeyKind, NodeLayout};
use widx_sim::config::SystemConfig;
use widx_sim::mem::{MemorySystem, RegionAllocator};
use widx_workloads::memimg;

fn arb_layout() -> impl Strategy<Value = NodeLayout> {
    prop_oneof![
        Just(NodeLayout::kernel4()),
        Just(NodeLayout::direct8()),
        Just(NodeLayout::indirect8()),
        Just(NodeLayout {
            key_width: 4,
            key_kind: KeyKind::Indirect
        }),
    ]
}

fn arb_recipe() -> impl Strategy<Value = HashRecipe> {
    prop_oneof![
        Just(HashRecipe::trivial()),
        Just(HashRecipe::robust64()),
        Just(HashRecipe::heavy128()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn widx_equals_oracle(
        // Keys bounded so 4-byte layouts are exact.
        pairs in prop::collection::vec((0u64..5000, 0u64..1000), 0..120),
        probes in prop::collection::vec(0u64..6000, 0..60),
        layout in arb_layout(),
        recipe in arb_recipe(),
        walkers in 1usize..=4,
        buckets in 1usize..64,
    ) {
        // Indirect layouts require payloads to be build-row ids (they
        // index the materialized key column); renumber accordingly.
        let pairs: Vec<(u64, u64)> = if layout.key_kind == KeyKind::Indirect {
            pairs.iter().enumerate().map(|(row, (k, _))| (*k, row as u64)).collect()
        } else {
            pairs.clone()
        };
        let index = HashIndex::build(recipe, buckets, pairs.iter().copied());
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let expected: u64 = probes.iter().map(|p| index.lookup_all(*p).len() as u64).sum();
        let image = memimg::materialize(&mut mem, &mut alloc, &index, &probes, layout, expected);
        let result = offload_probe(&mut mem, &index, &image, &probes, &WidxConfig::with_walkers(walkers));

        let mut got = result.matches().to_vec();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = probes
            .iter()
            .flat_map(|p| index.lookup_all(*p).into_iter().map(move |v| (*p, v)))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(result.stats.tuples as usize, probes.len());
        // Time accounting sanity: every walker's breakdown sums to no
        // more than the elapsed window.
        for w in &result.stats.walkers {
            prop_assert!(w.total() <= result.stats.total_cycles + 2);
        }
    }
}
