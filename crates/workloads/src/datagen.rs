//! Seeded key generators.
//!
//! All workloads are generated from explicit seeds (the harnesses print
//! them), making every simulation bit-reproducible — the stand-in for the
//! paper's dbgen/dsdgen-generated datasets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Creates the workspace's deterministic RNG from a seed.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` uniformly distributed keys in `[0, bound)` (with repetition) —
/// the paper's outer relation is "128M uniformly distributed 4B keys".
#[must_use]
pub fn uniform_keys(seed: u64, n: usize, bound: u64) -> Vec<u64> {
    assert!(bound > 0, "bound must be positive");
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..bound)).collect()
}

/// The keys `0..n` in shuffled order — a dense unique key column, the
/// shape of a primary-key build side.
#[must_use]
pub fn unique_shuffled_keys(seed: u64, n: usize) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..n as u64).collect();
    keys.shuffle(&mut rng(seed));
    keys
}

/// A Zipfian sampler over ranks `0..n` with exponent `theta`.
///
/// Used for skewed probe distributions (hot keys), a standard DSS
/// stressor. Sampling is by inverse CDF over a precomputed table.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with skew `theta` (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, r: &mut impl Rng) -> u64 {
        let u: f64 = r.gen();
        self.cdf.partition_point(|c| *c < u) as u64
    }

    /// Draws `n` ranks.
    pub fn sample_n(&self, r: &mut impl Rng, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(r)).collect()
    }
}

/// `n` Zipfian-distributed keys in `[0, bound)` with skew `theta` —
/// the skewed probe stream a serving front-end sees when a few hot keys
/// dominate the request mix. Rank `r` maps to key `r` (rank 0 is the
/// hottest key), matching [`Zipf`]'s convention.
///
/// # Panics
///
/// Panics if `bound` is zero or `theta` is negative.
#[must_use]
pub fn zipf_keys(seed: u64, n: usize, bound: u64, theta: f64) -> Vec<u64> {
    assert!(bound > 0, "bound must be positive");
    let z = Zipf::new(bound as usize, theta);
    let mut r = rng(seed);
    z.sample_n(&mut r, n)
}

/// `n` range queries `(lo, hi)` with `lo <= hi`: Zipfian-distributed
/// starting keys in `[0, bound)` (skew `theta` — hot *ranges*, the way
/// a serving front-end sees popular scans) and uniform span lengths in
/// `[1, max_span]`, saturating at `u64::MAX`.
///
/// # Panics
///
/// Panics if `bound` or `max_span` is zero or `theta` is negative.
#[must_use]
pub fn range_queries(
    seed: u64,
    n: usize,
    bound: u64,
    max_span: u64,
    theta: f64,
) -> Vec<(u64, u64)> {
    assert!(max_span > 0, "max_span must be positive");
    let z = Zipf::new(usize::try_from(bound).expect("bound fits usize"), theta);
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            let lo = z.sample(&mut r);
            let span = r.gen_range(1..=max_span);
            (lo, lo.saturating_add(span))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform_keys(7, 100, 1000), uniform_keys(7, 100, 1000));
        assert_ne!(uniform_keys(7, 100, 1000), uniform_keys(8, 100, 1000));
        assert_eq!(unique_shuffled_keys(3, 50), unique_shuffled_keys(3, 50));
    }

    #[test]
    fn uniform_respects_bound() {
        let keys = uniform_keys(1, 10_000, 64);
        assert!(keys.iter().all(|k| *k < 64));
        // All values should appear for this density.
        let mut seen = [false; 64];
        for k in &keys {
            seen[*k as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn unique_is_a_permutation() {
        let keys = unique_shuffled_keys(9, 1000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000u64).collect::<Vec<_>>());
        // And actually shuffled.
        assert_ne!(keys, (0..1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut r = rng(42);
        let samples = z.sample_n(&mut r, 20_000);
        let head = samples.iter().filter(|s| **s < 10).count();
        let tail = samples.iter().filter(|s| **s >= 990).count();
        assert!(head > tail * 10, "head {head} tail {tail}");
        assert!(samples.iter().all(|s| *s < 1000));
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let z = Zipf::new(100, 0.0);
        let mut r = rng(1);
        let samples = z.sample_n(&mut r, 50_000);
        let head = samples.iter().filter(|s| **s < 50).count();
        let frac = head as f64 / samples.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn range_queries_are_ordered_bounded_and_skewed() {
        let ranges = range_queries(5, 10_000, 1000, 64, 0.99);
        assert_eq!(ranges, range_queries(5, 10_000, 1000, 64, 0.99));
        for (lo, hi) in &ranges {
            assert!(lo <= hi && *lo < 1000 && *hi <= 1000 + 64);
            assert!(*hi - *lo >= 1 && *hi - *lo <= 64);
        }
        // Starting keys are skewed toward the head of the key space.
        let head = ranges.iter().filter(|(lo, _)| *lo < 10).count();
        let tail = ranges.iter().filter(|(lo, _)| *lo >= 990).count();
        assert!(head > tail * 10, "head {head} tail {tail}");
    }

    #[test]
    fn zipf_keys_deterministic_bounded_and_skewed() {
        let a = zipf_keys(11, 20_000, 500, 0.99);
        let b = zipf_keys(11, 20_000, 500, 0.99);
        assert_eq!(a, b);
        assert!(a.iter().all(|k| *k < 500));
        let head = a.iter().filter(|k| **k < 5).count();
        let tail = a.iter().filter(|k| **k >= 495).count();
        assert!(head > tail * 10, "head {head} tail {tail}");
    }
}
