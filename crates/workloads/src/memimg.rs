//! Materialization of a logical hash index into simulated memory.
//!
//! The Widx accelerator operates on real bytes: bucket headers, overflow
//! nodes, the probe-key column, and the output region are serialized into
//! the [`MemorySystem`]'s backing store exactly as described by the
//! [`NodeLayout`]. `next` pointers become absolute virtual addresses
//! (0 = NULL), and indirect layouts additionally materialize the build
//! side's key column so that key reads really do take the extra
//! dereference.

use widx_db::index::{HashIndex, NodeLayout, NONE};
use widx_sim::mem::{MemorySystem, RegionAllocator, VAddr};

/// Addresses and geometry of a materialized index image.
#[derive(Clone, Debug)]
pub struct IndexImage {
    /// Physical layout of headers and nodes.
    pub layout: NodeLayout,
    /// Base of the bucket-header array.
    pub bucket_base: VAddr,
    /// Number of buckets (a power of two).
    pub bucket_count: u64,
    /// Base of the overflow-node pool.
    pub node_base: VAddr,
    /// Overflow nodes in the pool.
    pub node_count: u64,
    /// Base of the build-side key column (indirect layouts only).
    pub build_keys_base: Option<VAddr>,
    /// Base of the probe-key input column.
    pub input_base: VAddr,
    /// Probe keys in the input column.
    pub input_count: u64,
    /// Total index entries (= rows of the build-side key column).
    pub entry_count: u64,
    /// Base of the output (result) region.
    pub output_base: VAddr,
    /// Capacity of the output region in 16-byte result slots.
    pub output_capacity: u64,
}

impl IndexImage {
    /// Address of bucket `b`'s header.
    #[must_use]
    pub fn header_addr(&self, b: u64) -> VAddr {
        debug_assert!(b < self.bucket_count);
        self.bucket_base + b * NodeLayout::HEADER_STRIDE as u64
    }

    /// Address of pool node `i`.
    #[must_use]
    pub fn node_addr(&self, i: u64) -> VAddr {
        debug_assert!(i < self.node_count);
        self.node_base + i * NodeLayout::NODE_STRIDE as u64
    }

    /// Address of probe key `i` in the input column.
    #[must_use]
    pub fn input_addr(&self, i: u64) -> VAddr {
        debug_assert!(i < self.input_count);
        self.input_base + i * self.layout.key_width as u64
    }

    /// Address of build row `row`'s key in the materialized key column.
    ///
    /// # Panics
    ///
    /// Panics for direct layouts, which have no key column.
    #[must_use]
    pub fn build_key_addr(&self, row: u64) -> VAddr {
        self.build_keys_base.expect("indirect layout required") + row * self.layout.key_width as u64
    }

    /// Address of output slot `i`.
    #[must_use]
    pub fn output_addr(&self, i: u64) -> VAddr {
        self.output_base + i * 16
    }

    /// Bytes occupied by the index proper (headers + nodes + key column),
    /// i.e. the paper's "index size" axis.
    #[must_use]
    pub fn index_bytes(&self) -> u64 {
        let keys = if self.build_keys_base.is_some() {
            self.entry_count * self.layout.key_width as u64
        } else {
            0
        };
        self.bucket_count * NodeLayout::HEADER_STRIDE as u64
            + self.node_count * NodeLayout::NODE_STRIDE as u64
            + keys
    }
}

/// Serializes `index` and `probes` into `mem`, carving regions from
/// `alloc`. `expected_matches` sizes the output region (use the oracle
/// match count; the region is padded generously).
///
/// # Panics
///
/// For indirect layouts, panics if any entry's payload is not a valid
/// build-side row id (`payload < index.len()`): the payload indexes the
/// materialized key column, exactly as MonetDB's index nodes point at
/// their base column.
pub fn materialize(
    mem: &mut MemorySystem,
    alloc: &mut RegionAllocator,
    index: &HashIndex,
    probes: &[u64],
    layout: NodeLayout,
    expected_matches: u64,
) -> IndexImage {
    let bucket_count = index.bucket_count() as u64;
    let node_count = index.nodes().len() as u64;
    let kw = layout.key_width as u64;

    let bucket_region = alloc.alloc_pages(
        "hash.buckets",
        bucket_count * NodeLayout::HEADER_STRIDE as u64,
    );
    let node_region = alloc.alloc_pages(
        "hash.nodes",
        (node_count.max(1)) * NodeLayout::NODE_STRIDE as u64,
    );
    let build_keys_base = match layout.key_kind {
        widx_db::index::KeyKind::Direct => None,
        widx_db::index::KeyKind::Indirect => {
            let entries = index.len() as u64;
            let valid = index
                .buckets()
                .iter()
                .filter(|b| b.count > 0)
                .all(|b| b.payload < entries)
                && index.nodes().iter().all(|n| n.payload < entries);
            assert!(
                valid,
                "indirect layouts require payloads to be build-side row ids (< {entries})"
            );
            Some(alloc.alloc_pages("build.keys", entries.max(1) * kw).base())
        }
    };
    let input_region = alloc.alloc_pages("probe.input", (probes.len() as u64).max(1) * kw);
    let output_capacity = (expected_matches + probes.len() as u64).max(16);
    let output_region = alloc.alloc_pages("probe.output", output_capacity * 16);

    let image = IndexImage {
        layout,
        bucket_base: bucket_region.base(),
        bucket_count,
        node_base: node_region.base(),
        node_count,
        build_keys_base,
        input_base: input_region.base(),
        input_count: probes.len() as u64,
        entry_count: index.len() as u64,
        output_base: output_region.base(),
        output_capacity,
    };

    // For indirect layouts the "payload" doubles as the build row id;
    // the key column is indexed by that row id.
    let slot_value = |key: u64, payload: u64| -> u64 {
        match layout.key_kind {
            widx_db::index::KeyKind::Direct => key,
            widx_db::index::KeyKind::Indirect => {
                let addr = image.build_key_addr(payload);
                addr.get()
            }
        }
    };

    // Bucket headers.
    for (b, bucket) in index.buckets().iter().enumerate() {
        let base = image.header_addr(b as u64);
        mem.write_u32(
            base.offset(NodeLayout::HEADER_COUNT_OFFSET as i64),
            bucket.count,
        );
        if bucket.count > 0 {
            mem.write_uint(
                base.offset(NodeLayout::HEADER_SLOT_OFFSET as i64),
                layout.slot_width(),
                slot_value(bucket.key, bucket.payload),
            );
            mem.write_u64(
                base.offset(NodeLayout::HEADER_PAYLOAD_OFFSET as i64),
                bucket.payload,
            );
            let next = if bucket.next == NONE {
                0
            } else {
                image.node_addr(u64::from(bucket.next)).get()
            };
            mem.write_u64(base.offset(NodeLayout::HEADER_NEXT_OFFSET as i64), next);
            if let widx_db::index::KeyKind::Indirect = layout.key_kind {
                mem.write_uint(
                    image.build_key_addr(bucket.payload),
                    layout.key_width,
                    bucket.key,
                );
            }
        }
    }

    // Overflow nodes.
    for (i, node) in index.nodes().iter().enumerate() {
        let base = image.node_addr(i as u64);
        mem.write_uint(
            base.offset(NodeLayout::NODE_SLOT_OFFSET as i64),
            layout.slot_width(),
            slot_value(node.key, node.payload),
        );
        mem.write_u64(
            base.offset(NodeLayout::NODE_PAYLOAD_OFFSET as i64),
            node.payload,
        );
        let next = if node.next == NONE {
            0
        } else {
            image.node_addr(u64::from(node.next)).get()
        };
        mem.write_u64(base.offset(NodeLayout::NODE_NEXT_OFFSET as i64), next);
        if let widx_db::index::KeyKind::Indirect = layout.key_kind {
            mem.write_uint(
                image.build_key_addr(node.payload),
                layout.key_width,
                node.key,
            );
        }
    }

    // Probe input column.
    for (i, key) in probes.iter().enumerate() {
        mem.write_uint(image.input_addr(i as u64), layout.key_width, *key);
    }

    image
}

/// Warms the memory hierarchy over the image the way the paper's warmed
/// checkpoints do: the index and input become LLC-resident up to
/// capacity (LRU keeps the most recently touched blocks), and structures
/// that fit in half the L1 are also installed there.
pub fn warm(mem: &mut MemorySystem, image: &IndexImage) {
    let l1_budget = mem.cfg().l1d.size_bytes as u64 / 2;
    let mut warm_region = |base: VAddr, bytes: u64| {
        let into_l1 = bytes <= l1_budget;
        let mut addr = base;
        let end = base + bytes;
        while addr < end {
            if into_l1 {
                mem.warm_block(addr);
            } else {
                mem.warm_llc_block(addr);
            }
            addr = addr + 64;
        }
    };
    warm_region(
        image.bucket_base,
        image.bucket_count * NodeLayout::HEADER_STRIDE as u64,
    );
    if image.node_count > 0 {
        warm_region(
            image.node_base,
            image.node_count * NodeLayout::NODE_STRIDE as u64,
        );
    }
    if let Some(base) = image.build_keys_base {
        warm_region(
            base,
            image.entry_count.max(1) * image.layout.key_width as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widx_db::hash::HashRecipe;
    use widx_sim::config::SystemConfig;

    fn setup(layout: NodeLayout) -> (MemorySystem, IndexImage, HashIndex, Vec<u64>) {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let pairs: Vec<(u64, u64)> = (0..200u64).map(|k| (k * 3, k)).collect();
        let index = HashIndex::build(HashRecipe::robust64(), 64, pairs.iter().copied());
        let probes: Vec<u64> = (0..50u64).map(|i| i * 3).collect();
        let image = materialize(&mut mem, &mut alloc, &index, &probes, layout, 50);
        (mem, image, index, probes)
    }

    /// Software walk over the *materialized image* — reads simulated
    /// memory only, no logical-index shortcuts.
    fn image_lookup_all(
        mem: &MemorySystem,
        image: &IndexImage,
        key: u64,
        index: &HashIndex,
    ) -> Vec<u64> {
        let b = index.recipe().bucket_of(key, image.bucket_count);
        let header = image.header_addr(b);
        let mut out = Vec::new();
        let count = mem.read_u32(header.offset(NodeLayout::HEADER_COUNT_OFFSET as i64));
        if count == 0 {
            return out;
        }
        let read_key = |mem: &MemorySystem, slot_addr: VAddr| -> u64 {
            match image.layout.key_kind {
                widx_db::index::KeyKind::Direct => mem.read_uint(slot_addr, image.layout.key_width),
                widx_db::index::KeyKind::Indirect => {
                    let ptr = VAddr::new(mem.read_u64(slot_addr));
                    mem.read_uint(ptr, image.layout.key_width)
                }
            }
        };
        let k0 = read_key(mem, header.offset(NodeLayout::HEADER_SLOT_OFFSET as i64));
        if k0 == key {
            out.push(mem.read_u64(header.offset(NodeLayout::HEADER_PAYLOAD_OFFSET as i64)));
        }
        let mut next = mem.read_u64(header.offset(NodeLayout::HEADER_NEXT_OFFSET as i64));
        while next != 0 {
            let node = VAddr::new(next);
            let k = read_key(mem, node.offset(NodeLayout::NODE_SLOT_OFFSET as i64));
            if k == key {
                out.push(mem.read_u64(node.offset(NodeLayout::NODE_PAYLOAD_OFFSET as i64)));
            }
            next = mem.read_u64(node.offset(NodeLayout::NODE_NEXT_OFFSET as i64));
        }
        out
    }

    #[test]
    fn direct_image_walks_match_logical_index() {
        let (mem, image, index, probes) = setup(NodeLayout::direct8());
        for key in probes.iter().chain([1u64, 5, 1000].iter()) {
            let mut got = image_lookup_all(&mem, &image, *key, &index);
            let mut want = index.lookup_all(*key);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "key {key}");
        }
    }

    #[test]
    fn indirect_image_walks_match_logical_index() {
        let (mem, image, index, probes) = setup(NodeLayout::indirect8());
        assert!(image.build_keys_base.is_some());
        for key in probes {
            let mut got = image_lookup_all(&mem, &image, key, &index);
            let mut want = index.lookup_all(key);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "key {key}");
        }
    }

    #[test]
    fn kernel4_width_truncates_keys_correctly() {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let pairs = vec![(7u64, 0u64), (9, 1)];
        let index = HashIndex::build(HashRecipe::trivial(), 8, pairs);
        let probes = vec![7u64];
        let image = materialize(
            &mut mem,
            &mut alloc,
            &index,
            &probes,
            NodeLayout::kernel4(),
            1,
        );
        assert_eq!(mem.read_uint(image.input_addr(0), 4), 7);
    }

    #[test]
    fn input_column_round_trips() {
        let (mem, image, _, probes) = setup(NodeLayout::direct8());
        for (i, k) in probes.iter().enumerate() {
            assert_eq!(mem.read_u64(image.input_addr(i as u64)), *k);
        }
    }

    #[test]
    fn regions_do_not_alias() {
        let (_, image, _, _) = setup(NodeLayout::direct8());
        let bucket_end = image.bucket_base + image.bucket_count * 32;
        assert!(bucket_end <= image.node_base);
        let node_end = image.node_base + image.node_count.max(1) * 24;
        assert!(node_end <= image.input_base);
    }

    #[test]
    fn warm_improves_first_access() {
        let (mut mem, image, _, _) = setup(NodeLayout::direct8());
        warm(&mut mem, &image);
        let (_, r) = mem.load(image.header_addr(0), 8, 0);
        assert!(
            matches!(
                r.level,
                widx_sim::mem::HitLevel::L1 | widx_sim::mem::HitLevel::Llc
            ),
            "level {:?}",
            r.level
        );
    }
}
