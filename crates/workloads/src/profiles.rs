//! Per-query index profiles for the 12 DSS queries the paper simulates.
//!
//! The paper runs TPC-H queries 2, 11, 17, 19, 20, 22 and TPC-DS queries
//! 5, 37, 40, 52, 64, 82 on MonetDB over 100 GB datasets. We cannot ship
//! MonetDB or the datasets; what determines *indexing* behaviour is
//! captured per query instead:
//!
//! * **index size**, scaled to preserve cache residency against our
//!   32 KB L1 / 4 MB LLC (the paper's own TPC-DS footnote explains why
//!   its per-column indexes are small: 429 columns share the dataset);
//! * **node layout** — MonetDB stores keys *indirectly* (pointers into
//!   the base column), adding a dereference and address arithmetic
//!   (Section 6.2's explanation of the higher Comp fraction);
//! * **hash cost** — robust mixing for all, with TPC-H q20's
//!   "computationally intensive hashing" of double integers modelled by
//!   the double-round [`HashRecipe::heavy128`];
//! * **probe count** (sampled) and **match fraction**;
//! * the query-level **indexing-time fraction** from Figure 2a, used to
//!   project indexing speedup to whole-query speedup exactly as the
//!   paper does in Section 6.2.

use widx_db::hash::HashRecipe;
use widx_db::index::{HashIndex, NodeLayout};

use crate::datagen;

/// Which benchmark suite a query belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// TPC-H.
    TpcH,
    /// TPC-DS.
    TpcDs,
}

impl Suite {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Suite::TpcH => "TPC-H",
            Suite::TpcDs => "TPC-DS",
        }
    }
}

/// Hash-function class used by a query profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecipeKind {
    /// Standard robust mixer.
    Robust,
    /// Double-width mixer for computationally expensive keys (q20).
    Heavy,
}

impl RecipeKind {
    /// Instantiates the recipe.
    #[must_use]
    pub fn recipe(self) -> HashRecipe {
        match self {
            RecipeKind::Robust => HashRecipe::robust64(),
            RecipeKind::Heavy => HashRecipe::heavy128(),
        }
    }
}

/// The indexing profile of one simulated DSS query.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Query name as in the paper's figures (e.g. `qry17`).
    pub name: &'static str,
    /// Benchmark suite.
    pub suite: Suite,
    /// Index entries at reproduction scale.
    pub entries: usize,
    /// Physical layout (MonetDB-style indirect keys).
    pub layout: NodeLayout,
    /// Hash-function class.
    pub recipe: RecipeKind,
    /// Sampled probe count.
    pub probes: usize,
    /// Fraction of probes that find a match.
    pub match_fraction: f64,
    /// Fraction of total query time spent indexing (Figure 2a), used for
    /// whole-query speedup projection.
    pub index_fraction: f64,
    /// Workload seed.
    pub seed: u64,
}

impl QueryProfile {
    /// Default sampled probes per query.
    pub const DEFAULT_PROBES: usize = 12 * 1024;

    /// Builds the query's index and probe stream.
    ///
    /// Build keys are unique and shuffled; the probe stream mixes hits
    /// and misses per [`match_fraction`](QueryProfile::match_fraction).
    #[must_use]
    pub fn build(&self) -> (HashIndex, Vec<u64>) {
        let build_keys = datagen::unique_shuffled_keys(self.seed, self.entries);
        let index = HashIndex::build(
            self.recipe.recipe(),
            self.entries.max(1),
            build_keys
                .iter()
                .enumerate()
                .map(|(row, k)| (*k, row as u64)),
        );
        // Probes: hits are uniform over the key space [0, entries);
        // misses use keys >= entries which can never match.
        let raw = datagen::uniform_keys(self.seed ^ 0x9999, self.probes, self.entries as u64);
        let miss_mark = datagen::uniform_keys(self.seed ^ 0x7777, self.probes, 1_000_000);
        let threshold = (self.match_fraction * 1_000_000.0) as u64;
        let probes = raw
            .into_iter()
            .zip(miss_mark)
            .map(|(k, m)| {
                if m < threshold {
                    k
                } else {
                    k + self.entries as u64
                }
            })
            .collect();
        (index, probes)
    }

    /// Approximate bytes of the materialized index (headers + overflow
    /// nodes + key column).
    #[must_use]
    pub fn index_bytes(&self) -> usize {
        let buckets = self.entries.next_power_of_two();
        buckets * NodeLayout::HEADER_STRIDE + self.entries * self.layout.key_width
    }

    /// Overrides the probe count (for quick tests).
    #[must_use]
    pub fn with_probes(mut self, probes: usize) -> QueryProfile {
        self.probes = probes;
        self
    }

    /// The six simulated TPC-H queries (Figure 9a order).
    #[must_use]
    pub fn tpch() -> Vec<QueryProfile> {
        let q = |name, entries, recipe, match_fraction, index_fraction, seed| QueryProfile {
            name,
            suite: Suite::TpcH,
            entries,
            layout: NodeLayout::indirect8(),
            recipe,
            probes: Self::DEFAULT_PROBES,
            match_fraction,
            index_fraction,
            seed,
        };
        vec![
            // Small indexes with "no TLB misses" (Sec. 6.2): LLC-resident.
            q("qry2", 16 * 1024, RecipeKind::Robust, 0.80, 0.55, 102),
            q("qry11", 24 * 1024, RecipeKind::Robust, 0.85, 0.45, 111),
            q("qry17", 48 * 1024, RecipeKind::Robust, 0.90, 0.94, 117),
            // Memory-intensive queries with TLB-miss cycles (Sec. 6.2).
            q("qry19", 768 * 1024, RecipeKind::Robust, 0.75, 0.60, 119),
            q("qry20", 1024 * 1024, RecipeKind::Heavy, 0.80, 0.70, 120),
            q("qry22", 512 * 1024, RecipeKind::Robust, 0.70, 0.50, 122),
        ]
    }

    /// The six simulated TPC-DS queries (Figure 9b order) — small,
    /// often L1-resident indexes per the paper's 429-column footnote.
    #[must_use]
    pub fn tpcds() -> Vec<QueryProfile> {
        let q = |name, entries, match_fraction, index_fraction, seed| QueryProfile {
            name,
            suite: Suite::TpcDs,
            entries,
            layout: NodeLayout::indirect8(),
            recipe: RecipeKind::Robust,
            probes: Self::DEFAULT_PROBES,
            match_fraction,
            index_fraction,
            seed,
        };
        vec![
            q("qry5", 768, 0.85, 0.35, 205),
            // "Only a handful of unique index entries ... L1-resident
            // index (L1-D miss ratio < 1%)" — the paper's 1.5x floor.
            q("qry37", 256, 0.90, 0.29, 237),
            q("qry40", 24 * 1024, 0.80, 0.45, 240),
            q("qry52", 32 * 1024, 0.80, 0.50, 252),
            q("qry64", 512, 0.85, 0.55, 264),
            q("qry82", 640, 0.90, 0.40, 282),
        ]
    }

    /// All twelve simulated queries, TPC-H first.
    #[must_use]
    pub fn all() -> Vec<QueryProfile> {
        let mut v = Self::tpch();
        v.extend(Self::tpcds());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_queries() {
        let all = QueryProfile::all();
        assert_eq!(all.len(), 12);
        assert_eq!(all.iter().filter(|q| q.suite == Suite::TpcH).count(), 6);
        assert_eq!(all.iter().filter(|q| q.suite == Suite::TpcDs).count(), 6);
    }

    #[test]
    fn tpcds_indexes_are_smaller() {
        let h: usize = QueryProfile::tpch().iter().map(|q| q.entries).sum();
        let ds: usize = QueryProfile::tpcds().iter().map(|q| q.entries).sum();
        assert!(
            ds * 10 < h,
            "TPC-DS {ds} should be far smaller than TPC-H {h}"
        );
    }

    #[test]
    fn q37_is_l1_resident() {
        let q37 = QueryProfile::tpcds()
            .into_iter()
            .find(|q| q.name == "qry37")
            .unwrap();
        assert!(
            q37.index_bytes() <= 32 * 1024,
            "bytes {}",
            q37.index_bytes()
        );
    }

    #[test]
    fn q20_uses_heavy_hash() {
        let q20 = QueryProfile::tpch()
            .into_iter()
            .find(|q| q.name == "qry20")
            .unwrap();
        assert_eq!(q20.recipe, RecipeKind::Heavy);
        assert!(
            q20.index_bytes() > 4 * 1024 * 1024,
            "q20 must exceed the LLC"
        );
    }

    #[test]
    fn match_fraction_is_respected() {
        let q = QueryProfile::tpcds().remove(0).with_probes(4000);
        let (index, probes) = q.build();
        let hits = probes
            .iter()
            .filter(|p| index.lookup(**p).is_some())
            .count();
        let frac = hits as f64 / probes.len() as f64;
        assert!((frac - q.match_fraction).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn index_fractions_match_paper_quotes() {
        // Figure 2a commentary: q17 is 94% indexing; q37 is 29%.
        let all = QueryProfile::all();
        let q17 = all.iter().find(|q| q.name == "qry17").unwrap();
        let q37 = all.iter().find(|q| q.name == "qry37").unwrap();
        assert!((q17.index_fraction - 0.94).abs() < 1e-9);
        assert!((q37.index_fraction - 0.29).abs() < 1e-9);
    }
}
