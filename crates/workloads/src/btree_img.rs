//! Materialization of a B+-tree index into simulated memory — the
//! substrate for the paper's Section 7 extension ("Widx can easily be
//! extended to accelerate other index structures, such as balanced
//! trees").
//!
//! Node records (all fields u64, offsets in bytes, `F` = fanout):
//!
//! ```text
//! inner (stride 16·F):            leaf (stride 8 + 16·F):
//!   +0        separator count       +0        key count
//!   +8        F-1 separator keys    +8        F keys
//!   +8+8(F-1) F child addresses     +8+8F     F payloads
//! ```
//!
//! Child pointers are absolute virtual addresses, so a walker descends
//! with plain loads exactly like the hash walker chases `next` pointers.

use widx_db::index::BTreeIndex;
use widx_sim::mem::{MemorySystem, RegionAllocator, VAddr};

/// Addresses and geometry of a materialized B+-tree.
#[derive(Clone, Debug)]
pub struct BTreeImage {
    /// Tree fanout `F`.
    pub fanout: u64,
    /// Number of inner levels above the leaves (descents before a leaf).
    pub inner_levels: u64,
    /// Address of the root node (an inner node, or the lone leaf).
    pub root_addr: VAddr,
    /// Base of the probe-key input column (8-byte keys).
    pub input_base: VAddr,
    /// Probe count.
    pub input_count: u64,
    /// Base of the output region (16-byte result slots).
    pub output_base: VAddr,
    /// Output capacity in slots.
    pub output_capacity: u64,
    /// Total bytes of tree nodes.
    pub tree_bytes: u64,
    /// Base address of the leaf array.
    pub leaf_base: VAddr,
    /// Base address of each inner level (bottom-up).
    pub level_bases: Vec<VAddr>,
}

impl BTreeImage {
    /// Stride of an inner node for fanout `f`.
    #[must_use]
    pub fn inner_stride(f: u64) -> u64 {
        8 + 8 * (f - 1) + 8 * f
    }

    /// Stride of a leaf node for fanout `f`.
    #[must_use]
    pub fn leaf_stride(f: u64) -> u64 {
        8 + 16 * f
    }

    /// Byte offset of the child-pointer array inside an inner node.
    #[must_use]
    pub fn child_array_offset(f: u64) -> u64 {
        8 + 8 * (f - 1)
    }

    /// Address of probe key `i`.
    #[must_use]
    pub fn input_addr(&self, i: u64) -> VAddr {
        self.input_base + i * 8
    }

    /// Address of output slot `i`.
    #[must_use]
    pub fn output_addr(&self, i: u64) -> VAddr {
        self.output_base + i * 16
    }

    /// Address of leaf `i`.
    #[must_use]
    pub fn leaf_addr(&self, i: u64) -> VAddr {
        self.leaf_base + i * BTreeImage::leaf_stride(self.fanout)
    }

    /// Address of inner node `i` on inner level `level` (bottom-up).
    #[must_use]
    pub fn inner_addr(&self, level: usize, i: u64) -> VAddr {
        self.level_bases[level] + i * BTreeImage::inner_stride(self.fanout)
    }
}

/// Serializes `tree` plus a probe column into `mem`.
///
/// # Panics
///
/// Panics if the tree's fanout exceeds 128 (offset immediates) or if a
/// node is malformed.
pub fn materialize_btree(
    mem: &mut MemorySystem,
    alloc: &mut RegionAllocator,
    tree: &BTreeIndex,
    probes: &[u64],
    expected_matches: u64,
) -> BTreeImage {
    let export = tree.export();
    let f = export.fanout as u64;
    assert!((2..=128).contains(&f), "fanout {f} out of supported range");
    let inner_stride = BTreeImage::inner_stride(f);
    let leaf_stride = BTreeImage::leaf_stride(f);

    // Allocate per-level regions (leaves first).
    let leaf_region = alloc.alloc_pages("btree.leaves", (export.leaves.len() as u64) * leaf_stride);
    let level_bases: Vec<VAddr> = export
        .levels
        .iter()
        .enumerate()
        .map(|(d, level)| {
            alloc
                .alloc_pages(
                    &format!("btree.level{d}"),
                    (level.len() as u64) * inner_stride,
                )
                .base()
        })
        .collect();
    let input_region = alloc.alloc_pages("btree.input", (probes.len() as u64).max(1) * 8);
    let output_capacity = (expected_matches + probes.len() as u64).max(16);
    let output_region = alloc.alloc_pages("btree.output", output_capacity * 16);

    // Leaves.
    for (i, (keys, payloads)) in export.leaves.iter().enumerate() {
        let base = leaf_region.base() + (i as u64) * leaf_stride;
        mem.write_u64(base, keys.len() as u64);
        for (j, k) in keys.iter().enumerate() {
            mem.write_u64(base + 8 + (j as u64) * 8, *k);
        }
        for (j, p) in payloads.iter().enumerate() {
            mem.write_u64(base + 8 + 8 * f + (j as u64) * 8, *p);
        }
    }

    // Inner levels, bottom-up; children point at the level below (or
    // the leaves for level 0).
    for (d, level) in export.levels.iter().enumerate() {
        let child_base = |idx: u32| -> u64 {
            if d == 0 {
                (leaf_region.base() + u64::from(idx) * leaf_stride).get()
            } else {
                (level_bases[d - 1] + u64::from(idx) * inner_stride).get()
            }
        };
        for (i, (keys, children)) in level.iter().enumerate() {
            let base = level_bases[d] + (i as u64) * inner_stride;
            assert_eq!(keys.len() + 1, children.len(), "malformed inner node");
            mem.write_u64(base, keys.len() as u64);
            for (j, k) in keys.iter().enumerate() {
                mem.write_u64(base + 8 + (j as u64) * 8, *k);
            }
            for (j, c) in children.iter().enumerate() {
                mem.write_u64(
                    base + BTreeImage::child_array_offset(f) + (j as u64) * 8,
                    child_base(*c),
                );
            }
        }
    }

    // Probe input.
    for (i, key) in probes.iter().enumerate() {
        mem.write_u64(input_region.base() + (i as u64) * 8, *key);
    }

    let root_addr = match export.levels.last() {
        Some(top) => {
            assert_eq!(top.len(), 1, "top level must be the single root");
            level_bases[export.levels.len() - 1]
        }
        None => leaf_region.base(),
    };
    let tree_bytes = (export.leaves.len() as u64) * leaf_stride
        + export
            .levels
            .iter()
            .map(|l| l.len() as u64 * inner_stride)
            .sum::<u64>();

    BTreeImage {
        fanout: f,
        inner_levels: export.levels.len() as u64,
        root_addr,
        input_base: input_region.base(),
        input_count: probes.len() as u64,
        output_base: output_region.base(),
        output_capacity,
        tree_bytes,
        leaf_base: leaf_region.base(),
        level_bases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widx_sim::config::SystemConfig;

    fn setup(entries: u64, fanout: usize) -> (MemorySystem, BTreeIndex, BTreeImage) {
        let mut mem = MemorySystem::new(SystemConfig::default());
        let mut alloc = RegionAllocator::new();
        let tree = BTreeIndex::build(fanout, (0..entries).map(|k| (k * 2, k)));
        let probes: Vec<u64> = (0..50).collect();
        let image = materialize_btree(&mut mem, &mut alloc, &tree, &probes, 50);
        (mem, tree, image)
    }

    /// Software descent over the *image bytes only*.
    fn image_lookup(mem: &MemorySystem, image: &BTreeImage, key: u64) -> Option<u64> {
        let f = image.fanout;
        let mut node = image.root_addr;
        for _ in 0..image.inner_levels {
            let count = mem.read_u64(node);
            let mut slot = 0u64;
            while slot < count && mem.read_u64(node + 8 + slot * 8) <= key {
                slot += 1;
            }
            node = VAddr::new(mem.read_u64(node + BTreeImage::child_array_offset(f) + slot * 8));
        }
        let count = mem.read_u64(node);
        for j in 0..count {
            if mem.read_u64(node + 8 + j * 8) == key {
                return Some(mem.read_u64(node + 8 + 8 * f + j * 8));
            }
        }
        None
    }

    #[test]
    fn image_descent_matches_logical_tree() {
        let (mem, tree, image) = setup(500, 8);
        for key in 0..1002u64 {
            assert_eq!(
                image_lookup(&mem, &image, key),
                tree.lookup(key),
                "key {key}"
            );
        }
    }

    #[test]
    fn single_leaf_tree() {
        let (mem, tree, image) = setup(4, 8);
        assert_eq!(image.inner_levels, 0);
        for key in 0..10u64 {
            assert_eq!(image_lookup(&mem, &image, key), tree.lookup(key));
        }
    }

    #[test]
    fn strides_and_offsets() {
        assert_eq!(BTreeImage::inner_stride(8), 8 + 56 + 64);
        assert_eq!(BTreeImage::leaf_stride(8), 8 + 128);
        assert_eq!(BTreeImage::child_array_offset(8), 64);
    }

    #[test]
    fn deep_tree_has_inner_levels() {
        let (_, tree, image) = setup(4096, 4);
        assert!(image.inner_levels >= 4);
        assert_eq!(u64::from(tree.height() as u32), image.inner_levels + 1);
    }
}
